//! Vendored minimal stand-in for the `criterion` crate.
//!
//! Offers the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple wall-clock measurement loop
//! (fixed warm-up, median-of-samples report) instead of criterion's
//! statistical machinery. Good enough for relative comparisons in an
//! offline environment.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepts (and ignores) command-line configuration, for API parity.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, &mut routine);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named set of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepts (and ignores) a sample-size hint, for API parity.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Runs one parameterised benchmark within the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, &mut |b| routine(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of one parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// Parameter-only id (the group provides the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timing harness handed to each benchmark routine.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

const WARMUP_ITERS: u32 = 2;
const SAMPLE_ITERS: u32 = 7;

impl Bencher {
    /// Measures `routine`: a short warm-up, then a handful of timed runs.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        for _ in 0..WARMUP_ITERS {
            std_black_box(routine());
        }
        for _ in 0..SAMPLE_ITERS {
            let start = Instant::now();
            std_black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, routine: &mut F) {
    let mut bencher = Bencher::default();
    routine(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{label:<60} (no samples)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "{label:<60} median {:>12?}  (min {:?}, max {:?})",
        median, min, max
    );
}

/// Declares a group function running each benchmark in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default().configure_from_args();
        let mut ran = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
            });
        });
        assert!(ran >= SAMPLE_ITERS);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("case", 3), &3u32, |b, &n| {
            b.iter(|| n * 2);
        });
        group.bench_with_input(BenchmarkId::from_parameter(5), &5u32, |b, _| {
            b.iter(|| 1 + 1);
        });
        group.finish();
    }
}
