//! Vendored minimal `serde_json`: JSON text ⇄ the vendored
//! [`serde::Value`] tree ⇄ user types.
//!
//! Supports exactly what the workspace uses — [`to_string`],
//! [`to_string_pretty`], and [`from_str`] — over the full JSON grammar
//! (escapes and surrogate pairs included). Numbers parse into the
//! narrowest of `u64`/`i64`/`f64`; deserialization of floats accepts
//! integer literals, so whole floats survive the round trip.

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// JSON serialization/parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Returns an error when the value contains a non-finite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
///
/// # Errors
///
/// Returns an error when the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into `T`.
///
/// # Errors
///
/// Returns an error on malformed JSON, trailing input, or a shape
/// mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(T::from_value(&value)?)
}

fn write_value(
    value: &Value,
    out: &mut String,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error(format!("non-finite float {f} is not valid JSON")));
            }
            out.push_str(&f.to_string());
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, level + 1);
                write_value(item, out, indent, level + 1)?;
            }
            if !items.is_empty() {
                newline(out, indent, level);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, level + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1)?;
            }
            if !entries.is_empty() {
                newline(out, indent, level);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", expected as char)))
        }
    }

    fn eat_keyword(&mut self, keyword: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected `{keyword}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.error(&format!("unexpected byte `{}`", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: a \uXXXX low surrogate must follow.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                first
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.error("invalid escape character")),
                    }
                }
                _ => {
                    // Copy one UTF-8 scalar (input is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..len.min(rest.len())])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos += chunk.len();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.error("invalid number"))
        } else if text.starts_with('-') {
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::Int(i)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| self.error("invalid number")),
            }
        } else {
            match text.parse::<u64>() {
                Ok(u) => Ok(Value::UInt(u)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| self.error("invalid number")),
            }
        }
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-5i32).unwrap(), "-5");
        assert_eq!(to_string(&0.03f64).unwrap(), "0.03");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let original = "line\nquote\"back\\slash\ttab\u{1}snowman☃".to_string();
        let json = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), original);
        assert_eq!(from_str::<String>("\"\\u2603\"").unwrap(), "☃");
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![("a".to_string(), 1u32), ("b".to_string(), 2)];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<(String, u32)>>(&json).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Vec<(String, u32)>>(&pretty).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("42 junk").is_err());
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
        assert!(from_str::<String>("\"open").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}
