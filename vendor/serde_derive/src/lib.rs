//! Vendored minimal `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` without syn/quote.
//!
//! The input `TokenStream` is parsed directly (attributes are skipped,
//! field *types* are never needed — the generated code is fully
//! type-directed through the `serde::Serialize`/`serde::Deserialize`
//! traits), and the output is assembled as a string and re-parsed.
//!
//! Supported shapes — exactly what this workspace derives:
//!
//! * structs with named fields,
//! * tuple structs (newtype structs serialize transparently),
//! * externally-tagged enums with unit / newtype / tuple / struct
//!   variants, optionally `#[serde(rename_all = "snake_case")]`.
//!
//! Generics are not supported (none of the workspace's serde types are
//! generic).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Input {
    name: String,
    snake_case: bool,
    data: Data,
}

#[derive(Debug)]
enum Data {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Newtype,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl parses")
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut snake_case = false;

    // Outer attributes (doc comments, #[serde(...)], #[derive(...)], ...).
    while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            let text = g.to_string();
            if text.starts_with("[serde")
                && text.contains("rename_all")
                && text.contains("snake_case")
            {
                snake_case = true;
            }
            i += 1;
        }
    }

    i = skip_visibility(&tokens, i);

    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic types ({name})");
    }

    let data = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::TupleStruct(count_tuple_fields(g.stream()))
            }
            other => panic!("unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body for {name}: {other:?}"),
        },
        kw => panic!("cannot derive serde traits for `{kw}` items"),
    };

    Input {
        name,
        snake_case,
        data,
    }
}

fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(
            &tokens.get(i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            i += 1;
        }
    }
    i
}

fn skip_attributes(tokens: &[TokenTree], mut i: usize) -> usize {
    while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        i += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Group(_))) {
            i += 1;
        }
    }
    i
}

/// `name: Type, ...` — returns the field names; types are skipped with
/// angle-bracket depth tracking (groups are atomic token trees already).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attributes(&tokens, i);
        i = skip_visibility(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, got {other}"),
        };
        fields.push(field);
        i += 1;
        assert!(
            matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "expected `:` after field name"
        );
        i += 1;
        // Consume the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Counts the fields of a tuple-struct/tuple-variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_tokens_since_comma = true;
    for tok in &tokens {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_tokens_since_comma = false;
            }
            _ => saw_tokens_since_comma = true,
        }
    }
    if !saw_tokens_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attributes(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, got {other}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                match count_tuple_fields(g.stream()) {
                    1 => VariantKind::Newtype,
                    n => VariantKind::Tuple(n),
                }
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}

/// `CamelCase` → `camel_case` (serde's `rename_all = "snake_case"` rule).
fn snake(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

fn tag(input: &Input, variant: &str) -> String {
    if input.snake_case {
        snake(variant)
    } else {
        variant.to_string()
    }
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        Data::NamedStruct(fields) => {
            let mut push = String::new();
            for f in fields {
                push.push_str(&format!(
                    "__m.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            format!(
                "let mut __m: Vec<(String, ::serde::Value)> = Vec::new();\n{push}::serde::Value::Map(__m)"
            )
        }
        Data::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Data::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vtag = tag(input, &v.name);
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(\"{vtag}\".to_string()),\n"
                    )),
                    VariantKind::Newtype => arms.push_str(&format!(
                        "{name}::{vname}(__x) => ::serde::Value::Map(vec![(\"{vtag}\".to_string(), ::serde::Serialize::to_value(__x))]),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> =
                            (0..*n).map(|i| format!("__x{i}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Map(vec![(\"{vtag}\".to_string(), ::serde::Value::Seq(vec![{}]))]),\n",
                            binders.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binders = fields.join(", ");
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binders} }} => ::serde::Value::Map(vec![(\"{vtag}\".to_string(), ::serde::Value::Map(vec![{}]))]),\n",
                            items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n        {body}\n    }}\n}}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        Data::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(__m, \"{f}\", \"{name}\")?"))
                .collect();
            format!(
                "let __m = ::serde::expect_map(__value, \"{name}\")?;\nOk({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Data::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = ::serde::expect_seq(__value, \"{name}\", {n})?;\nOk({name}({}))",
                items.join(", ")
            )
        }
        Data::Enum(variants) => {
            let mut str_arms = String::new();
            let mut map_arms = String::new();
            for v in variants {
                let vtag = tag(input, &v.name);
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        str_arms.push_str(&format!("\"{vtag}\" => Ok({name}::{vname}),\n"));
                        map_arms.push_str(&format!(
                            "\"{vtag}\" => Ok({name}::{vname}),\n"
                        ));
                    }
                    VariantKind::Newtype => map_arms.push_str(&format!(
                        "\"{vtag}\" => Ok({name}::{vname}(::serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::Deserialize::from_value(&__items[{i}])?")
                            })
                            .collect();
                        map_arms.push_str(&format!(
                            "\"{vtag}\" => {{ let __items = ::serde::expect_seq(__inner, \"{name}::{vname}\", {n})?; Ok({name}::{vname}({})) }},\n",
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::field(__m, \"{f}\", \"{name}::{vname}\")?"
                                )
                            })
                            .collect();
                        map_arms.push_str(&format!(
                            "\"{vtag}\" => {{ let __m = ::serde::expect_map(__inner, \"{name}::{vname}\")?; Ok({name}::{vname} {{ {} }}) }},\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match __value {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n{str_arms}\
                 __other => Err(::serde::Error::unknown_variant(__other, \"{name}\")),\n}},\n\
                 ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = &__entries[0];\n\
                 match __tag.as_str() {{\n{map_arms}\
                 __other => Err(::serde::Error::unknown_variant(__other, \"{name}\")),\n}}\n}},\n\
                 __other => Err(::serde::Error::expected(\"variant string or single-entry object\", \"{name}\", __other)),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n    fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n        {body}\n    }}\n}}\n"
    )
}
