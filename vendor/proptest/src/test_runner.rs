//! Test runner plumbing: configuration, failure type, and the
//! deterministic RNG driving value generation.

use std::fmt;

/// Per-test configuration; only `cases` is honoured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed test case (assertion message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fails the case with `reason`.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }

    /// Alias of [`TestCaseError::fail`] (real proptest distinguishes
    /// rejection from failure; the vendored harness does not filter).
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// SplitMix64 generator: deterministic per case index, independent of
/// anything environmental.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The stream for one case of one property.
    pub fn for_case(case: u32) -> Self {
        // Decorrelate neighbouring cases with an odd multiplier.
        TestRng {
            state: 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(case) | 1) ^ 0x5EED,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "next_below(0)");
        // 128-bit multiply-shift (Lemire); bias is irrelevant for testing.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = TestRng::for_case(7);
        let mut b = TestRng::for_case(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::for_case(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn bounds_are_respected() {
        let mut rng = TestRng::for_case(0);
        for _ in 0..1000 {
            assert!(rng.next_below(17) < 17);
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
