//! Value-generation strategies: the vendored [`Strategy`] trait and its
//! combinators. Generation is a single pass — no shrinking trees.

use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// Generates random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, map }
    }

    /// Feeds generated values into a strategy-producing function and
    /// draws from the produced strategy.
    fn prop_flat_map<S, F>(self, flat: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, flat }
    }

    /// Builds a recursive strategy: `self` is the leaf; `recurse` builds a
    /// branch strategy from the strategy one level below. `depth` bounds
    /// the recursion; `_desired_size`/`_expected_branch_size` are accepted
    /// for API compatibility and unused (no size-driven termination is
    /// needed when depth is bounded up front).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(current).boxed();
            // 1 part leaf to 2 parts branch keeps trees interestingly deep
            // while guaranteeing leaves appear at every level.
            current = Union::weighted(vec![(1, leaf.clone()), (2, branch)]).boxed();
        }
        current
    }

    /// Type-erases the strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, clonable strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    flat: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.flat)(self.inner.generate(rng)).generate(rng)
    }
}

/// Weighted choice among same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Uniform choice.
    pub fn uniform(arms: Vec<BoxedStrategy<T>>) -> Self {
        Union::weighted(arms.into_iter().map(|a| (1, a)).collect())
    }

    /// Weighted choice; weights must not all be zero.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "Union needs positive total weight");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_below(self.total_weight);
        for (weight, arm) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return arm.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weights sum covered above")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.next_below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.next_below(span) as i64) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Types with a canonical full-range strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-range strategy for primitives.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

/// The canonical strategy for `T` (`any::<u64>()` …).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case(1);
        for _ in 0..500 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (1e6..2e6).generate(&mut rng);
            assert!((1e6..2e6).contains(&f));
            let i = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::for_case(2);
        let s = (1u32..5)
            .prop_map(|x| x * 10)
            .prop_flat_map(|x| Just(x + 1));
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!([11, 21, 31, 41].contains(&v));
        }
    }

    #[test]
    fn union_respects_weights() {
        let mut rng = TestRng::for_case(3);
        let u = Union::weighted(vec![(1, Just(0u8).boxed()), (0, Just(1u8).boxed())]);
        for _ in 0..50 {
            assert_eq!(u.generate(&mut rng), 0);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(#[allow(dead_code)] u32),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u32..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                crate::collection::vec(inner, 1..4).prop_map(Tree::Node)
            });
        let mut rng = TestRng::for_case(4);
        for _ in 0..200 {
            assert!(depth(&strat.generate(&mut rng)) <= 4);
        }
    }
}
