//! Collection strategies: random-length vectors.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length bounds for [`vec`]: `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty vec size range");
        SizeRange {
            lo: range.start,
            hi: range.end,
        }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.next_below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_bounds() {
        let strat = vec(0u64..100, 2..7);
        let mut rng = TestRng::for_case(5);
        for _ in 0..300 {
            let v = strat.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn exact_size_works() {
        let strat = vec(0u64..10, 4);
        let mut rng = TestRng::for_case(6);
        assert_eq!(strat.generate(&mut rng).len(), 4);
    }
}
