//! Vendored minimal stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the slice of proptest its property tests use: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_recursive`, range and tuple strategies, `Just`, `any`,
//! [`collection::vec`], weighted unions (`prop_oneof!`), and the
//! [`proptest!`] runner macro with `prop_assert*`.
//!
//! Differences from real proptest: cases are generated from a
//! deterministic SplitMix64 stream (no persisted failure seeds) and
//! there is **no shrinking** — a failing case reports its index and
//! message only. That trade-off keeps the harness dependency-free.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything the property tests import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Builds a [`strategy::Union`] choosing uniformly among the arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::uniform(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Fails the current test case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, "assertion failed: {:?} != {:?}", __l, __r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}: {:?} != {:?}",
            format!($($fmt)+),
            __l,
            __r
        );
    }};
}

/// Fails the current test case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "assertion failed: {:?} == {:?}", __l, __r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "{}: {:?} == {:?}",
            format!($($fmt)+),
            __l,
            __r
        );
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...)` body runs
/// for `ProptestConfig::cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    (@run ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let __strategy = ($($strategy,)+);
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&__strategy, &mut __rng);
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(__e) = __outcome {
                    panic!("proptest case {}/{} failed: {}", __case + 1, __config.cases, __e);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
