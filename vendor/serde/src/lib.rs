//! Vendored minimal stand-in for the `serde` crate.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace vendors the tiny slice of serde it actually uses: derived
//! `Serialize`/`Deserialize` for plain structs, tuple structs, and
//! externally-tagged enums (with optional `rename_all = "snake_case"`).
//!
//! The data model is a concrete [`Value`] tree instead of serde's visitor
//! architecture: `Serialize` lowers a type into a `Value`, `Deserialize`
//! lifts it back. `serde_json` (also vendored) converts between `Value`
//! and JSON text. This keeps the derive macro trivial while preserving
//! serde's observable behaviour for every shape this workspace uses.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing intermediate tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer (positives normalise to [`Value::UInt`]).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object; insertion order is preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable name of the value's shape, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

/// Serialization/deserialization error: a human-readable reason.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    pub fn custom(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }

    /// "expected X while deserializing Y, got Z".
    pub fn expected(what: &str, ctx: &str, got: &Value) -> Error {
        Error(format!("expected {what} for {ctx}, got {}", got.kind()))
    }

    /// A struct field was absent.
    pub fn missing_field(field: &str, ctx: &str) -> Error {
        Error(format!("missing field `{field}` in {ctx}"))
    }

    /// An enum tag did not match any variant.
    pub fn unknown_variant(variant: &str, ctx: &str) -> Error {
        Error(format!("unknown variant `{variant}` for {ctx}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Lowers a value into the [`Value`] tree.
pub trait Serialize {
    /// The tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Lifts a value out of the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from its tree form.
    ///
    /// # Errors
    ///
    /// Returns an error when the tree does not match `Self`'s shape.
    fn from_value(value: &Value) -> Result<Self, Error>;

    /// Called for a struct field absent from the input; `Option` overrides
    /// this to `None` (matching serde's missing-field behaviour).
    ///
    /// # Errors
    ///
    /// Returns a missing-field error by default.
    #[doc(hidden)]
    fn absent(field: &str, ctx: &str) -> Result<Self, Error> {
        Err(Error::missing_field(field, ctx))
    }
}

/// Derive support: unwraps a map, or errors.
///
/// # Errors
///
/// Returns an error when `value` is not a map.
pub fn expect_map<'a>(value: &'a Value, ctx: &str) -> Result<&'a [(String, Value)], Error> {
    match value {
        Value::Map(entries) => Ok(entries),
        other => Err(Error::expected("object", ctx, other)),
    }
}

/// Derive support: unwraps a sequence of exactly `len` elements.
///
/// # Errors
///
/// Returns an error when `value` is not an array of `len` elements.
pub fn expect_seq<'a>(value: &'a Value, ctx: &str, len: usize) -> Result<&'a [Value], Error> {
    match value {
        Value::Seq(items) if items.len() == len => Ok(items),
        Value::Seq(items) => Err(Error::custom(format!(
            "expected array of {len} elements for {ctx}, got {}",
            items.len()
        ))),
        other => Err(Error::expected("array", ctx, other)),
    }
}

/// Derive support: looks up and deserializes one struct field. Unknown
/// extra fields in `entries` are ignored, like serde's default.
///
/// # Errors
///
/// Propagates the field's deserialization error; absent fields defer to
/// [`Deserialize::absent`].
pub fn field<T: Deserialize>(
    entries: &[(String, Value)],
    name: &str,
    ctx: &str,
) -> Result<T, Error> {
    match entries.iter().find(|(key, _)| key == name) {
        Some((_, value)) => T::from_value(value),
        None => T::absent(name, ctx),
    }
}

fn as_u64(value: &Value, ctx: &str) -> Result<u64, Error> {
    match value {
        Value::UInt(u) => Ok(*u),
        Value::Int(i) if *i >= 0 => Ok(*i as u64),
        other => Err(Error::expected("unsigned integer", ctx, other)),
    }
}

fn as_i64(value: &Value, ctx: &str) -> Result<i64, Error> {
    match value {
        Value::Int(i) => Ok(*i),
        Value::UInt(u) => i64::try_from(*u)
            .map_err(|_| Error::custom(format!("integer {u} overflows i64 for {ctx}"))),
        other => Err(Error::expected("integer", ctx, other)),
    }
}

fn as_f64(value: &Value, ctx: &str) -> Result<f64, Error> {
    match value {
        Value::Float(f) => Ok(*f),
        Value::UInt(u) => Ok(*u as f64),
        Value::Int(i) => Ok(*i as f64),
        other => Err(Error::expected("number", ctx, other)),
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = as_u64(value, stringify!($t))?;
                <$t>::try_from(raw).map_err(|_| {
                    Error::custom(format!(
                        "integer {raw} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = as_i64(value, stringify!($t))?;
                <$t>::try_from(raw).map_err(|_| {
                    Error::custom(format!(
                        "integer {raw} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        as_f64(value, "f64")
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        as_f64(value, "f32").map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", "bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", "String", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn absent(_field: &str, _ctx: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", "Vec", other)),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = expect_map(value, "BTreeMap")?;
        entries
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = expect_seq(value, "tuple", LEN)?;
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&Value::UInt(3)).unwrap(), 3.0);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::absent("x", "T").unwrap(), None);
        assert!(u32::absent("x", "T").is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, "a".to_string()), (2, "b".to_string())];
        let back = Vec::<(u32, String)>::from_value(&v.to_value()).unwrap();
        assert_eq!(v, back);

        let mut m = BTreeMap::new();
        m.insert("k".to_string(), 9u64);
        assert_eq!(BTreeMap::from_value(&m.to_value()).unwrap(), m);
    }

    #[test]
    fn range_checks_reject() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
        assert!(bool::from_value(&Value::UInt(1)).is_err());
    }
}
