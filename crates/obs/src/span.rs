//! Causal span assembly: from the flat [`TraceEvent`] stream to one
//! well-formed span tree per invocation.
//!
//! The cluster records a chronological event vector; this module folds it
//! into the hierarchy an observability backend wants:
//!
//! ```text
//! Invocation (arrival -> completion)
//! ├── Function fn1 (trigger -> node complete)
//! │   ├── Provision fn1#0  (trigger -> container ready; cold or warm)
//! │   ├── Transfer  fn1#0  (flow admitted -> flow done, per input/output)
//! │   └── Exec      fn1#0  (attempt start -> attempt end, per retry)
//! └── Function fn2 ...
//! ```
//!
//! Fault paths are represented rather than dropped: a worker crash
//! force-closes the executor spans stranded on that node (marked
//! [`Span::truncated`]), an epoch bump closes everything below the root and
//! the re-execution opens fresh spans, and storage blackout retries,
//! state-sync messages, restarts and dead-letterings become
//! [`Annotation`]s on the tree.
//!
//! [`build_forest`] never panics on a truncated stream: the tracer drops
//! *newest* events when its capacity cap is hit, so the retained prefix is
//! causally closed, and anything still open when the stream ends is closed
//! at the last observed instant with `truncated` set.

use std::collections::HashMap;

use faasflow_core::TraceEvent;
use faasflow_sim::{FunctionId, InvocationId, NodeId, SimDuration, SimTime, WorkflowId};
use serde::{Deserialize, Serialize};

/// What a span measures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SpanKind {
    /// Root: client arrival to completion (or dead-lettering).
    Invocation,
    /// One function node: trigger decision to node completion.
    Function,
    /// Container acquisition for one instance: trigger to ready.
    Provision {
        /// `true` if the container cold-started (else the window is pure
        /// queue wait for a warm container).
        cold: bool,
    },
    /// One executor attempt.
    Exec {
        /// Zero-based attempt number.
        attempt: u32,
        /// Whether the attempt failed (injected failure; retried or
        /// dead-lettered afterwards).
        failed: bool,
    },
    /// One data flow, admission to completion.
    Transfer {
        /// `true` for an input read, `false` for an output write.
        read: bool,
        /// Through the remote store (`false` = worker-local memory).
        remote: bool,
        /// Bytes moved.
        bytes: u64,
    },
}

/// One node of a span tree. `parent` indexes into the owning
/// [`SpanTree::spans`] vector and always points at an earlier entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// What the span measures.
    pub kind: SpanKind,
    /// Human-readable name (the Chrome-trace event name).
    pub label: String,
    /// The node the work ran on (`None` for the cluster-scoped root).
    pub node: Option<NodeId>,
    /// The function node, where applicable.
    pub function: Option<FunctionId>,
    /// The instance index, where applicable.
    pub instance: Option<u32>,
    /// Open instant.
    pub start: SimTime,
    /// Close instant (`>= start`).
    pub end: SimTime,
    /// Parent span index (`None` only for the root).
    pub parent: Option<usize>,
    /// The span did not close naturally: it was cut short by a crash, an
    /// epoch bump, or the end of the recorded stream.
    pub truncated: bool,
}

impl Span {
    /// The span's extent.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// A point event attached to a span tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AnnotationKind {
    /// WorkerSP cross-worker state sync.
    StateSync {
        /// Sender worker.
        from: NodeId,
        /// Receiver worker.
        to: NodeId,
        /// The completed function the sync reports.
        completed: FunctionId,
    },
    /// A storage access hit a blackout window and backed off.
    StorageRetry {
        /// The function whose transfer retried.
        function: FunctionId,
        /// `true` for an input read.
        read: bool,
        /// Zero-based retry attempt.
        attempt: u32,
        /// Backoff delay until the next attempt.
        delay: SimDuration,
    },
    /// Crash recovery bumped the epoch and restarted the invocation.
    Restarted {
        /// The new epoch.
        epoch: u32,
    },
    /// The recovery budget ran out; the invocation was abandoned.
    DeadLettered,
    /// Admission control dropped the invocation off an overflowing queue.
    Shed {
        /// The worker whose admission queue overflowed.
        worker: NodeId,
    },
    /// A straggling exec was speculatively re-dispatched.
    HedgeLaunched {
        /// The function being hedged.
        function: FunctionId,
        /// The instance index.
        instance: u32,
        /// The primary's worker.
        from: NodeId,
        /// The hedge's worker.
        to: NodeId,
    },
    /// A hedge race resolved.
    HedgeResolved {
        /// The function that was hedged.
        function: FunctionId,
        /// The instance index.
        instance: u32,
        /// `true` if the speculative copy finished first.
        winner_is_hedge: bool,
    },
}

/// [`AnnotationKind`] plus its instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Annotation {
    /// What happened.
    pub kind: AnnotationKind,
    /// When.
    pub at: SimTime,
}

/// The span tree of one invocation. `spans[0]` is always the
/// [`SpanKind::Invocation`] root.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanTree {
    /// Workflow.
    pub workflow: WorkflowId,
    /// Invocation.
    pub invocation: InvocationId,
    /// Spans in creation order; parents precede children.
    pub spans: Vec<Span>,
    /// Point events, chronological.
    pub annotations: Vec<Annotation>,
    /// The invocation completed (all exit nodes done).
    pub completed: bool,
    /// The 60 s timeout fired before completion.
    pub timed_out: bool,
    /// The invocation was dead-lettered.
    pub dead_lettered: bool,
    /// The invocation was load-shed by admission control.
    pub shed: bool,
}

impl SpanTree {
    /// The invocation root span.
    pub fn root(&self) -> &Span {
        &self.spans[0]
    }

    /// End-to-end extent of the invocation.
    pub fn e2e(&self) -> SimDuration {
        self.root().duration()
    }

    /// Checks structural well-formedness:
    ///
    /// 1. the root exists, is an [`SpanKind::Invocation`] and has no parent;
    /// 2. every other span has a parent at a smaller index (parents open
    ///    before children);
    /// 3. every span closes no earlier than it opens;
    /// 4. children open within their parent's window and, unless one side
    ///    was truncated, close within it too;
    /// 5. executor attempts of the same `(function, instance)` never
    ///    overlap;
    /// 6. input reads finish before the last executor attempt of their
    ///    instance starts, and output writes start no earlier than the
    ///    first attempt.
    pub fn validate(&self) -> Result<(), String> {
        let who = |i: usize| format!("{}/{} span {i}", self.workflow, self.invocation);
        let root = self.spans.first().ok_or("empty span tree")?;
        if root.kind != SpanKind::Invocation || root.parent.is_some() {
            return Err(format!("{}: root is not an invocation span", who(0)));
        }
        for (i, s) in self.spans.iter().enumerate() {
            if s.end < s.start {
                return Err(format!("{} ({}): closes before it opens", who(i), s.label));
            }
            if i == 0 {
                continue;
            }
            let p = s
                .parent
                .ok_or_else(|| format!("{} ({}): no parent", who(i), s.label))?;
            if p >= i {
                return Err(format!("{} ({}): parent {p} not earlier", who(i), s.label));
            }
            let parent = &self.spans[p];
            if s.start < parent.start {
                return Err(format!("{} ({}): opens before its parent", who(i), s.label));
            }
            if s.start > parent.end && !parent.truncated {
                return Err(format!(
                    "{} ({}): opens after its parent closed",
                    who(i),
                    s.label
                ));
            }
            if s.end > parent.end && !s.truncated && !parent.truncated {
                return Err(format!("{} ({}): outlives its parent", who(i), s.label));
            }
        }
        // Per-(function, instance) ordering.
        let mut execs: HashMap<(FunctionId, u32), Vec<&Span>> = HashMap::new();
        for s in &self.spans {
            if let (SpanKind::Exec { .. }, Some(f), Some(i)) = (s.kind, s.function, s.instance) {
                execs.entry((f, i)).or_default().push(s);
            }
        }
        for spans in execs.values_mut() {
            spans.sort_by_key(|s| s.start);
            for pair in spans.windows(2) {
                if pair[1].start < pair[0].end {
                    return Err(format!(
                        "{}/{}: overlapping exec attempts on {}",
                        self.workflow, self.invocation, pair[0].label
                    ));
                }
            }
        }
        for s in &self.spans {
            let SpanKind::Transfer { read, .. } = s.kind else {
                continue;
            };
            let (Some(f), Some(i)) = (s.function, s.instance) else {
                continue;
            };
            let Some(attempts) = execs.get(&(f, i)) else {
                continue; // instance never executed (crash before exec)
            };
            let first = attempts.first().expect("non-empty").start;
            let last = attempts.last().expect("non-empty").start;
            if read && s.end > last {
                return Err(format!(
                    "{}/{}: read {} finished after the last exec attempt started",
                    self.workflow, self.invocation, s.label
                ));
            }
            if !read && s.start < first {
                return Err(format!(
                    "{}/{}: write {} started before the first exec attempt",
                    self.workflow, self.invocation, s.label
                ));
            }
        }
        Ok(())
    }
}

/// Every span tree of a run, plus the node-scoped fault events (crashes,
/// restarts, lease expiries) that belong to no single invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanForest {
    /// One tree per invocation, in order of first appearance.
    pub trees: Vec<SpanTree>,
    /// Node-scoped events, chronological.
    pub node_events: Vec<TraceEvent>,
}

impl SpanForest {
    /// Validates every tree; the first violation is returned.
    pub fn validate(&self) -> Result<(), String> {
        self.trees.iter().try_for_each(SpanTree::validate)
    }

    /// Total spans across all trees.
    pub fn span_count(&self) -> usize {
        self.trees.iter().map(|t| t.spans.len()).sum()
    }
}

/// Per-invocation assembly state.
struct TreeBuilder {
    tree: SpanTree,
    /// Open function spans by function id.
    open_functions: HashMap<FunctionId, usize>,
    /// Open exec spans by (function, instance).
    open_execs: HashMap<(FunctionId, u32), usize>,
    root_open: bool,
}

impl TreeBuilder {
    fn new(workflow: WorkflowId, invocation: InvocationId, at: SimTime) -> Self {
        let root = Span {
            kind: SpanKind::Invocation,
            label: format!("{workflow}/{invocation}"),
            node: None,
            function: None,
            instance: None,
            start: at,
            end: at,
            parent: None,
            truncated: false,
        };
        TreeBuilder {
            tree: SpanTree {
                workflow,
                invocation,
                spans: vec![root],
                annotations: Vec::new(),
                completed: false,
                timed_out: false,
                dead_lettered: false,
                shed: false,
            },
            open_functions: HashMap::new(),
            open_execs: HashMap::new(),
            root_open: true,
        }
    }

    fn close(&mut self, idx: usize, at: SimTime, truncated: bool) {
        let s = &mut self.tree.spans[idx];
        s.end = at.max(s.start);
        s.truncated = truncated;
    }

    /// Force-closes everything below the root (crash recovery epoch bump,
    /// dead-lettering, or end of stream).
    fn close_children(&mut self, at: SimTime) {
        let open: Vec<usize> = self
            .open_functions
            .drain()
            .map(|(_, i)| i)
            .chain(self.open_execs.drain().map(|(_, i)| i))
            .collect();
        for idx in open {
            self.close(idx, at, true);
        }
    }

    /// A worker crashed: truncate the spans stranded on it.
    fn close_node_spans(&mut self, worker: NodeId, at: SimTime) {
        let stranded = |spans: &[Span], idx: usize| spans[idx].node == Some(worker);
        let execs: Vec<usize> = self
            .open_execs
            .iter()
            .filter(|(_, &i)| stranded(&self.tree.spans, i))
            .map(|(_, &i)| i)
            .collect();
        self.open_execs
            .retain(|_, i| !stranded(&self.tree.spans, *i));
        for idx in execs {
            self.close(idx, at, true);
        }
    }

    /// The parent for per-function child spans: the open function span if
    /// there is one, else the root.
    fn function_parent(&self, function: FunctionId) -> usize {
        self.open_functions.get(&function).copied().unwrap_or(0)
    }

    fn push(&mut self, span: Span) -> usize {
        self.tree.spans.push(span);
        self.tree.spans.len() - 1
    }

    fn annotate(&mut self, kind: AnnotationKind, at: SimTime) {
        self.tree.annotations.push(Annotation { kind, at });
    }

    fn apply(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::InvocationArrived { at, .. } => {
                self.tree.spans[0].start = *at;
            }
            TraceEvent::FunctionTriggered {
                function,
                worker,
                at,
                ..
            } => {
                // A re-trigger (MasterSP crash re-dispatch) supersedes the
                // stranded span.
                if let Some(old) = self.open_functions.remove(function) {
                    self.close(old, *at, true);
                }
                let idx = self.push(Span {
                    kind: SpanKind::Function,
                    label: format!("{function}"),
                    node: Some(*worker),
                    function: Some(*function),
                    instance: None,
                    start: *at,
                    end: *at,
                    parent: Some(0),
                    truncated: false,
                });
                self.open_functions.insert(*function, idx);
            }
            TraceEvent::InstanceStarted {
                function,
                instance,
                worker,
                cold,
                at,
                ..
            } => {
                let parent = self.function_parent(*function);
                let start = self.tree.spans[parent].start;
                self.push(Span {
                    kind: SpanKind::Provision { cold: *cold },
                    label: format!(
                        "{} {function}#{instance}",
                        if *cold { "cold-start" } else { "queue-wait" }
                    ),
                    node: Some(*worker),
                    function: Some(*function),
                    instance: Some(*instance),
                    start,
                    end: (*at).max(start),
                    parent: Some(parent),
                    truncated: false,
                });
            }
            TraceEvent::ExecStarted {
                function,
                instance,
                worker,
                attempt,
                at,
                ..
            } => {
                let key = (*function, *instance);
                if let Some(old) = self.open_execs.remove(&key) {
                    self.close(old, *at, true);
                }
                let parent = self.function_parent(*function);
                let idx = self.push(Span {
                    kind: SpanKind::Exec {
                        attempt: *attempt,
                        failed: false,
                    },
                    label: format!("exec {function}#{instance}"),
                    node: Some(*worker),
                    function: Some(*function),
                    instance: Some(*instance),
                    start: *at,
                    end: *at,
                    parent: Some(parent),
                    truncated: false,
                });
                self.open_execs.insert(key, idx);
            }
            TraceEvent::ExecFinished {
                function,
                instance,
                failed,
                at,
                ..
            } => {
                if let Some(idx) = self.open_execs.remove(&(*function, *instance)) {
                    self.close(idx, *at, false);
                    if let SpanKind::Exec { failed: f, .. } = &mut self.tree.spans[idx].kind {
                        *f = *failed;
                    }
                }
            }
            TraceEvent::Transferred {
                function,
                instance,
                worker,
                bytes,
                remote,
                read,
                started,
                at,
                ..
            } => {
                let mut parent = self.function_parent(*function);
                // A flow admitted before a crash can outlive the function
                // span it logically belongs to; re-home it on the root so
                // containment holds.
                if *started < self.tree.spans[parent].start {
                    parent = 0;
                }
                self.push(Span {
                    kind: SpanKind::Transfer {
                        read: *read,
                        remote: *remote,
                        bytes: *bytes,
                    },
                    label: format!(
                        "{} {function}#{instance}",
                        if *read { "read" } else { "write" }
                    ),
                    node: Some(*worker),
                    function: Some(*function),
                    instance: Some(*instance),
                    start: (*started).max(self.tree.spans[parent].start),
                    end: *at,
                    parent: Some(parent),
                    truncated: false,
                });
            }
            TraceEvent::NodeCompleted { function, at, .. } => {
                if let Some(idx) = self.open_functions.remove(function) {
                    self.close(idx, *at, false);
                }
            }
            TraceEvent::StateSyncSent {
                from,
                to,
                completed,
                at,
                ..
            } => {
                self.annotate(
                    AnnotationKind::StateSync {
                        from: *from,
                        to: *to,
                        completed: *completed,
                    },
                    *at,
                );
            }
            TraceEvent::StorageRetry {
                function,
                read,
                attempt,
                delay,
                at,
                ..
            } => {
                self.annotate(
                    AnnotationKind::StorageRetry {
                        function: *function,
                        read: *read,
                        attempt: *attempt,
                        delay: *delay,
                    },
                    *at,
                );
            }
            TraceEvent::InvocationRestarted { epoch, at, .. } => {
                self.annotate(AnnotationKind::Restarted { epoch: *epoch }, *at);
                self.close_children(*at);
            }
            TraceEvent::DeadLettered { at, .. } => {
                self.annotate(AnnotationKind::DeadLettered, *at);
                self.close_children(*at);
                self.close(0, *at, false);
                self.tree.dead_lettered = true;
                self.root_open = false;
            }
            TraceEvent::InvocationShed { worker, at, .. } => {
                self.annotate(AnnotationKind::Shed { worker: *worker }, *at);
                self.close_children(*at);
                self.close(0, *at, false);
                self.tree.shed = true;
                self.root_open = false;
            }
            TraceEvent::HedgeLaunched {
                function,
                instance,
                from_worker,
                to_worker,
                at,
                ..
            } => {
                self.annotate(
                    AnnotationKind::HedgeLaunched {
                        function: *function,
                        instance: *instance,
                        from: *from_worker,
                        to: *to_worker,
                    },
                    *at,
                );
            }
            TraceEvent::HedgeResolved {
                function,
                instance,
                winner_is_hedge,
                at,
                ..
            } => {
                self.annotate(
                    AnnotationKind::HedgeResolved {
                        function: *function,
                        instance: *instance,
                        winner_is_hedge: *winner_is_hedge,
                    },
                    *at,
                );
            }
            TraceEvent::InvocationCompleted { at, timed_out, .. } => {
                self.close_children(*at);
                self.close(0, *at, false);
                self.tree.completed = true;
                self.tree.timed_out = *timed_out;
                self.root_open = false;
            }
            TraceEvent::WorkerCrashed { .. }
            | TraceEvent::WorkerRestarted { .. }
            | TraceEvent::LeaseExpired { .. }
            | TraceEvent::BreakerTransition { .. }
            | TraceEvent::EngineCrashed { .. }
            | TraceEvent::EngineRecovered { .. }
            | TraceEvent::PlacementRebalanced { .. }
            | TraceEvent::SloAlertFired { .. }
            | TraceEvent::SloAlertResolved { .. }
            | TraceEvent::WorkflowDegraded { .. }
            | TraceEvent::WorkflowRestored { .. }
            | TraceEvent::WorkerQuarantined { .. }
            | TraceEvent::WorkerReinstated { .. }
            | TraceEvent::ZombieFenced { .. } => {
                unreachable!("node-scoped events are handled by the forest builder")
            }
        }
    }

    fn finish(&mut self, at: SimTime) {
        self.close_children(at);
        if self.root_open {
            self.close(0, at, true);
            self.root_open = false;
        }
    }
}

/// Assembles the forest. Events must be in recorded (chronological) order,
/// exactly as `Cluster::take_trace` returns them.
pub fn build_forest(events: &[TraceEvent]) -> SpanForest {
    let mut order: Vec<(WorkflowId, InvocationId)> = Vec::new();
    let mut builders: HashMap<(WorkflowId, InvocationId), TreeBuilder> = HashMap::new();
    let mut node_events = Vec::new();
    let mut last = SimTime::ZERO;
    for event in events {
        last = last.max(event.at());
        match event.invocation() {
            None => {
                if let TraceEvent::WorkerCrashed { worker, at } = event {
                    for b in builders.values_mut() {
                        b.close_node_spans(*worker, *at);
                    }
                }
                node_events.push(event.clone());
            }
            Some(key) => {
                let builder = builders.entry(key).or_insert_with(|| {
                    order.push(key);
                    TreeBuilder::new(key.0, key.1, event.at())
                });
                builder.apply(event);
            }
        }
    }
    let mut trees = Vec::with_capacity(order.len());
    for key in order {
        let mut builder = builders.remove(&key).expect("builder exists");
        builder.finish(last);
        trees.push(builder.tree);
    }
    SpanForest { trees, node_events }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(v)
    }

    fn wf() -> WorkflowId {
        WorkflowId::new(0)
    }

    fn inv() -> InvocationId {
        InvocationId::new(0)
    }

    fn small_stream() -> Vec<TraceEvent> {
        let f = FunctionId::new(1);
        let n = NodeId::new(1);
        vec![
            TraceEvent::InvocationArrived {
                workflow: wf(),
                invocation: inv(),
                at: ms(0),
            },
            TraceEvent::FunctionTriggered {
                workflow: wf(),
                invocation: inv(),
                function: f,
                worker: n,
                at: ms(1),
            },
            TraceEvent::InstanceStarted {
                workflow: wf(),
                invocation: inv(),
                function: f,
                instance: 0,
                worker: n,
                container: faasflow_sim::ContainerId::new(0),
                cold: true,
                at: ms(5),
            },
            TraceEvent::ExecStarted {
                workflow: wf(),
                invocation: inv(),
                function: f,
                instance: 0,
                worker: n,
                attempt: 0,
                at: ms(5),
            },
            TraceEvent::ExecFinished {
                workflow: wf(),
                invocation: inv(),
                function: f,
                instance: 0,
                worker: n,
                attempt: 0,
                failed: false,
                at: ms(25),
            },
            TraceEvent::Transferred {
                workflow: wf(),
                invocation: inv(),
                function: f,
                instance: 0,
                worker: n,
                bytes: 1 << 20,
                remote: true,
                read: false,
                started: ms(25),
                at: ms(30),
            },
            TraceEvent::NodeCompleted {
                workflow: wf(),
                invocation: inv(),
                function: f,
                at: ms(30),
            },
            TraceEvent::InvocationCompleted {
                workflow: wf(),
                invocation: inv(),
                at: ms(30),
                timed_out: false,
            },
        ]
    }

    #[test]
    fn builds_a_valid_tree_from_a_clean_stream() {
        let forest = build_forest(&small_stream());
        assert_eq!(forest.trees.len(), 1);
        forest.validate().expect("well-formed");
        let tree = &forest.trees[0];
        assert!(tree.completed && !tree.timed_out && !tree.dead_lettered);
        assert_eq!(tree.e2e(), SimDuration::from_millis(30));
        // Root + function + provision + exec + transfer.
        assert_eq!(tree.spans.len(), 5);
        assert!(tree.spans.iter().all(|s| !s.truncated));
    }

    #[test]
    fn crash_truncates_stranded_exec_spans() {
        let mut events = small_stream();
        // Crash after exec starts; drop the natural ExecFinished and
        // everything after it.
        events.truncate(4);
        events.push(TraceEvent::WorkerCrashed {
            worker: NodeId::new(1),
            at: ms(10),
        });
        let forest = build_forest(&events);
        forest.validate().expect("well-formed despite the crash");
        let tree = &forest.trees[0];
        let exec = tree
            .spans
            .iter()
            .find(|s| matches!(s.kind, SpanKind::Exec { .. }))
            .expect("exec span");
        assert!(exec.truncated);
        assert_eq!(exec.end, ms(10));
        assert!(!tree.completed);
        assert_eq!(forest.node_events.len(), 1);
    }

    #[test]
    fn restart_closes_children_and_annotates() {
        let mut events = small_stream();
        events.truncate(4);
        events.push(TraceEvent::InvocationRestarted {
            workflow: wf(),
            invocation: inv(),
            epoch: 1,
            at: ms(12),
        });
        events.push(TraceEvent::InvocationCompleted {
            workflow: wf(),
            invocation: inv(),
            at: ms(40),
            timed_out: false,
        });
        let forest = build_forest(&events);
        forest.validate().expect("well-formed");
        let tree = &forest.trees[0];
        assert!(matches!(
            tree.annotations[0].kind,
            AnnotationKind::Restarted { epoch: 1 }
        ));
        // Function and exec spans truncated at the epoch bump.
        assert!(tree
            .spans
            .iter()
            .filter(|s| s.parent.is_some())
            .all(|s| s.end <= ms(12)));
        assert!(tree.completed);
    }

    #[test]
    fn stream_end_truncates_open_spans() {
        let mut events = small_stream();
        events.truncate(4); // exec still open, no further events
        let forest = build_forest(&events);
        forest.validate().expect("well-formed");
        let tree = &forest.trees[0];
        assert!(tree.spans[0].truncated);
        assert!(!tree.completed);
    }

    #[test]
    fn validate_rejects_an_orphan_child() {
        let mut forest = build_forest(&small_stream());
        forest.trees[0].spans[2].parent = None;
        assert!(forest.validate().is_err());
    }

    #[test]
    fn validate_rejects_inverted_spans() {
        let mut forest = build_forest(&small_stream());
        forest.trees[0].spans[3].end = ms(1);
        assert!(forest.validate().is_err());
    }
}
