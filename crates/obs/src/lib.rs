//! # faasflow-obs
//!
//! Observability for the FaaSFlow cluster simulation: turns the raw
//! [`TraceEvent`] stream and [`RunReport`] that `faasflow-core` produces
//! into artifacts an operator (or a paper reviewer) can actually look at.
//!
//! * [`span`] — assembles the flat event stream into one causal span tree
//!   per invocation ([`build_forest`]), with structural validation
//!   ([`SpanTree::validate`]): cold-start, queue-wait, executor-attempt
//!   and transfer child spans, fault truncation, retry/restart
//!   annotations.
//! * [`chrome`] — exports a forest (plus sampled resource series) as
//!   Chrome trace-event JSON, loadable in Perfetto ([`chrome_trace`]).
//! * [`prom`] — renders a run report as a Prometheus text-exposition
//!   snapshot ([`prometheus_snapshot`]).
//! * [`attribution`] — folds span trees into a per-workflow latency
//!   phase breakdown ([`attribute`]) that reconciles with the
//!   independently-measured report histograms, and prints it as a
//!   MasterSP-vs-WorkerSP table ([`render_attribution_table`]).
//! * [`critpath`] — extracts the *observed critical path* of each
//!   invocation ([`extract`]): the contiguous chain of span segments that
//!   actually gated completion, summing exactly to the makespan, with
//!   per-workflow phase shares ([`aggregate`]).
//! * [`whatif`] — Amdahl-style speedup bounds from the critical path
//!   ([`what_if`]): how much a free-transfer / warm-only / no-queueing
//!   cluster could shave off, per workflow.
//!
//! ```
//! use faasflow_core::{ClientConfig, Cluster, ClusterConfig};
//! use faasflow_obs::{attribute, build_forest, chrome_trace};
//! use faasflow_wdl::{FunctionProfile, Step, Workflow};
//!
//! let mut cluster = Cluster::new(ClusterConfig {
//!     trace: true,
//!     ..ClusterConfig::default()
//! })?;
//! let wf = Workflow::steps("demo", Step::task("f", FunctionProfile::with_millis(10, 0)));
//! cluster.register(&wf, ClientConfig::ClosedLoop { invocations: 2 })?;
//! cluster.run_until_idle();
//! let report = cluster.report();
//! let forest = build_forest(&cluster.take_trace());
//! forest.validate().expect("well-formed spans");
//! let json = chrome_trace(&forest, report.resources.as_ref());
//! assert!(json.contains("traceEvents"));
//! assert_eq!(attribute(&forest)[0].invocations, 2);
//! # Ok::<(), faasflow_core::ClusterError>(())
//! ```
//!
//! [`TraceEvent`]: faasflow_core::TraceEvent
//! [`RunReport`]: faasflow_core::RunReport

pub mod attribution;
pub mod chrome;
pub mod critpath;
pub mod prom;
pub mod span;
pub mod whatif;

pub use attribution::{attribute, render_attribution_table, PhaseBreakdown};
pub use chrome::{chrome_trace, parse_json, JsonDoc};
pub use critpath::{
    aggregate, critical_path, downtime_windows, extract, render_critpath_table, CritPathBreakdown,
    CritPhase, CritSegment, CriticalPath,
};
pub use prom::{prometheus_snapshot, prometheus_worker_loads};
pub use span::{build_forest, Annotation, AnnotationKind, Span, SpanForest, SpanKind, SpanTree};
pub use whatif::{
    render_whatif_table, what_if, what_if_all, WhatIfBound, WhatIfScenario, WorkflowWhatIf,
};
