//! Latency attribution: where did each millisecond of end-to-end latency
//! go?
//!
//! Folds a [`SpanForest`] into per-workflow phase totals — execution,
//! cold-start, warm queue-wait, data transfer (local vs remote), storage
//! retry backoff — and derives the *control* residue: the part of the
//! end-to-end window covered by no child span at all. Under MasterSP that
//! residue is dominated by the central engine's queueing and messaging
//! (the paper's §2.3 scheduling overhead); under WorkerSP it collapses to
//! local engine costs, which is the paper's core claim rendered as a
//! table.
//!
//! Phase sums are computed from exact nanosecond span extents and
//! reconcile with the independently-accumulated `RunReport` histograms
//! (`e2e.sum`, `transfer_total.sum`) to within floating-point rounding —
//! `repro trace` asserts exactly that.

use std::collections::BTreeMap;

use faasflow_sim::{SimTime, WorkflowId};
use serde::{Deserialize, Serialize};

use crate::span::{AnnotationKind, SpanForest, SpanKind, SpanTree};

/// Per-workflow phase totals, in milliseconds summed over invocations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// The workflow.
    pub workflow: WorkflowId,
    /// Invocations folded in.
    pub invocations: u64,
    /// End-to-end (root span) total.
    pub e2e_ms: f64,
    /// Executor attempt total.
    pub exec_ms: f64,
    /// Cold-start provisioning total.
    pub cold_start_ms: f64,
    /// Warm-container queue-wait total.
    pub queue_wait_ms: f64,
    /// Data transfers through worker-local memory.
    pub transfer_local_ms: f64,
    /// Data transfers through the remote store.
    pub transfer_remote_ms: f64,
    /// Storage blackout backoff (sum of retry delays).
    pub store_retry_ms: f64,
    /// End-to-end time covered by *no* child span: engine queueing,
    /// messaging, and scheduling decisions.
    pub control_ms: f64,
}

impl PhaseBreakdown {
    fn new(workflow: WorkflowId) -> Self {
        PhaseBreakdown {
            workflow,
            invocations: 0,
            e2e_ms: 0.0,
            exec_ms: 0.0,
            cold_start_ms: 0.0,
            queue_wait_ms: 0.0,
            transfer_local_ms: 0.0,
            transfer_remote_ms: 0.0,
            store_retry_ms: 0.0,
            control_ms: 0.0,
        }
    }

    /// Total transfer time, both paths.
    pub fn transfer_ms(&self) -> f64 {
        self.transfer_local_ms + self.transfer_remote_ms
    }
}

/// Milliseconds of the root window covered by no child span.
fn control_residue_ms(tree: &SpanTree) -> f64 {
    let root = tree.root();
    let mut intervals: Vec<(SimTime, SimTime)> = tree
        .spans
        .iter()
        .skip(1)
        .map(|s| (s.start.max(root.start), s.end.min(root.end)))
        .filter(|(a, b)| b > a)
        .collect();
    intervals.sort_unstable();
    let mut covered = 0u64;
    let mut cursor = root.start;
    for (start, end) in intervals {
        let start = start.max(cursor);
        if end > start {
            covered += (end - start).as_nanos();
            cursor = end;
        }
    }
    let residue = tree.e2e().as_nanos().saturating_sub(covered);
    residue as f64 / 1e6
}

/// Folds the forest into one [`PhaseBreakdown`] per workflow, in workflow
/// id order. Every tree contributes, completed or not.
pub fn attribute(forest: &SpanForest) -> Vec<PhaseBreakdown> {
    let mut by_wf: BTreeMap<WorkflowId, PhaseBreakdown> = BTreeMap::new();
    for tree in &forest.trees {
        let row = by_wf
            .entry(tree.workflow)
            .or_insert_with(|| PhaseBreakdown::new(tree.workflow));
        row.invocations += 1;
        row.e2e_ms += tree.e2e().as_millis_f64();
        for span in &tree.spans {
            let ms = span.duration().as_millis_f64();
            match span.kind {
                SpanKind::Invocation | SpanKind::Function => {}
                SpanKind::Exec { .. } => row.exec_ms += ms,
                SpanKind::Provision { cold: true } => row.cold_start_ms += ms,
                SpanKind::Provision { cold: false } => row.queue_wait_ms += ms,
                SpanKind::Transfer { remote: true, .. } => row.transfer_remote_ms += ms,
                SpanKind::Transfer { remote: false, .. } => row.transfer_local_ms += ms,
            }
        }
        for a in &tree.annotations {
            if let AnnotationKind::StorageRetry { delay, .. } = a.kind {
                row.store_retry_ms += delay.as_millis_f64();
            }
        }
        row.control_ms += control_residue_ms(tree);
    }
    by_wf.into_values().collect()
}

/// Renders side-by-side attribution sections (e.g. MasterSP vs WorkerSP)
/// as a fixed-width table of mean milliseconds per invocation. `names`
/// resolves workflow ids to display names.
pub fn render_attribution_table(
    sections: &[(String, Vec<PhaseBreakdown>)],
    mut names: impl FnMut(WorkflowId) -> String,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:<10} {:>5} {:>9} {:>8} {:>7} {:>7} {:>8} {:>7} {:>9}",
        "mode", "workflow", "inv", "e2e", "exec", "cold", "queue", "xfer", "retry", "control"
    );
    let _ = writeln!(out, "{}", "-".repeat(88));
    for (label, rows) in sections {
        for row in rows {
            let n = row.invocations.max(1) as f64;
            let _ = writeln!(
                out,
                "{:<10} {:<10} {:>5} {:>9.1} {:>8.1} {:>7.1} {:>7.1} {:>8.1} {:>7.1} {:>9.1}",
                label,
                names(row.workflow),
                row.invocations,
                row.e2e_ms / n,
                row.exec_ms / n,
                row.cold_start_ms / n,
                row.queue_wait_ms / n,
                row.transfer_ms() / n,
                row.store_retry_ms / n,
                row.control_ms / n,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::build_forest;
    use faasflow_core::TraceEvent;
    use faasflow_sim::{ContainerId, FunctionId, InvocationId, NodeId, SimDuration};

    fn ms(v: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(v)
    }

    #[test]
    fn phases_sum_and_control_is_the_uncovered_residue() {
        let wf = WorkflowId::new(0);
        let inv = InvocationId::new(0);
        let f = FunctionId::new(1);
        let n = NodeId::new(1);
        // Arrival 0, trigger 10, instance ready (cold) 20, exec 20..50,
        // remote write 50..60, node done 60, completed 70.
        let forest = build_forest(&[
            TraceEvent::InvocationArrived {
                workflow: wf,
                invocation: inv,
                at: ms(0),
            },
            TraceEvent::FunctionTriggered {
                workflow: wf,
                invocation: inv,
                function: f,
                worker: n,
                at: ms(10),
            },
            TraceEvent::InstanceStarted {
                workflow: wf,
                invocation: inv,
                function: f,
                instance: 0,
                worker: n,
                container: ContainerId::new(0),
                cold: true,
                at: ms(20),
            },
            TraceEvent::ExecStarted {
                workflow: wf,
                invocation: inv,
                function: f,
                instance: 0,
                worker: n,
                attempt: 0,
                at: ms(20),
            },
            TraceEvent::ExecFinished {
                workflow: wf,
                invocation: inv,
                function: f,
                instance: 0,
                worker: n,
                attempt: 0,
                failed: false,
                at: ms(50),
            },
            TraceEvent::Transferred {
                workflow: wf,
                invocation: inv,
                function: f,
                instance: 0,
                worker: n,
                bytes: 1024,
                remote: true,
                read: false,
                started: ms(50),
                at: ms(60),
            },
            TraceEvent::NodeCompleted {
                workflow: wf,
                invocation: inv,
                function: f,
                at: ms(60),
            },
            TraceEvent::InvocationCompleted {
                workflow: wf,
                invocation: inv,
                at: ms(70),
                timed_out: false,
            },
        ]);
        let rows = attribute(&forest);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.invocations, 1);
        assert!((r.e2e_ms - 70.0).abs() < 1e-9);
        assert!((r.exec_ms - 30.0).abs() < 1e-9);
        assert!((r.cold_start_ms - 10.0).abs() < 1e-9);
        assert!((r.transfer_remote_ms - 10.0).abs() < 1e-9);
        assert_eq!(r.transfer_local_ms, 0.0);
        // Function span covers 10..60; children cover 10..60 too; the
        // uncovered residue is 0..10 (pre-trigger) + 60..70 (completion).
        assert!((r.control_ms - 20.0).abs() < 1e-9);
    }

    #[test]
    fn table_renders_one_row_per_workflow_per_section() {
        let row = PhaseBreakdown {
            workflow: WorkflowId::new(0),
            invocations: 2,
            e2e_ms: 200.0,
            exec_ms: 100.0,
            cold_start_ms: 20.0,
            queue_wait_ms: 5.0,
            transfer_local_ms: 10.0,
            transfer_remote_ms: 30.0,
            store_retry_ms: 0.0,
            control_ms: 35.0,
        };
        let text = render_attribution_table(
            &[
                ("MasterSP".to_string(), vec![row]),
                ("WorkerSP".to_string(), vec![row]),
            ],
            |_| "WC".to_string(),
        );
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains("MasterSP"));
        assert!(text.contains("WorkerSP"));
        // Mean e2e per invocation: 200/2.
        assert!(text.contains("100.0"));
    }
}
