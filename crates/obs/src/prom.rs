//! Prometheus text-exposition snapshot.
//!
//! Renders a [`RunReport`] (and, when sampling was on, the *last* sample
//! of each resource series) in the Prometheus text format — the shape a
//! scrape of a real FaaSFlow cluster would return. The output is
//! deterministic: workflows come from a sorted map and nodes in id order,
//! so same-seed runs produce byte-identical snapshots.

use std::fmt::Write as _;

use faasflow_core::{EngineLoad, RunReport, WorkerLoad};
use faasflow_sim::NodeId;

fn header(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Renders the snapshot.
pub fn prometheus_snapshot(report: &RunReport) -> String {
    let mut out = String::new();

    // --- Per-workflow counters and latency summaries --------------------
    header(
        &mut out,
        "faasflow_invocations_total",
        "Invocations by terminal state.",
        "counter",
    );
    for (name, wf) in &report.workflows {
        for (state, value) in [
            ("sent", wf.sent),
            ("completed", wf.completed),
            ("timeout", wf.timeouts),
            ("dead_lettered", wf.dead_lettered),
            ("shed", wf.shed),
        ] {
            let _ = writeln!(
                out,
                "faasflow_invocations_total{{workflow=\"{name}\",state=\"{state}\"}} {value}"
            );
        }
    }
    for (metric, help, pick) in [
        (
            "faasflow_e2e_latency_ms",
            "End-to-end invocation latency.",
            0usize,
        ),
        (
            "faasflow_sched_overhead_ms",
            "Scheduling overhead (e2e minus critical-path execution).",
            1,
        ),
        (
            "faasflow_transfer_latency_ms",
            "Per-invocation total data-movement latency.",
            2,
        ),
    ] {
        header(&mut out, metric, help, "summary");
        for (name, wf) in &report.workflows {
            let s = match pick {
                0 => &wf.e2e,
                1 => &wf.sched_overhead,
                _ => &wf.transfer_total,
            };
            let _ = writeln!(out, "{metric}_sum{{workflow=\"{name}\"}} {}", s.sum);
            let _ = writeln!(out, "{metric}_count{{workflow=\"{name}\"}} {}", s.count);
            let _ = writeln!(
                out,
                "{metric}{{workflow=\"{name}\",quantile=\"0.5\"}} {}",
                s.median
            );
            let _ = writeln!(
                out,
                "{metric}{{workflow=\"{name}\",quantile=\"0.99\"}} {}",
                s.p99
            );
        }
    }
    header(
        &mut out,
        "faasflow_store_bytes_total",
        "Bytes moved, by store path.",
        "counter",
    );
    for (name, wf) in &report.workflows {
        let _ = writeln!(
            out,
            "faasflow_store_bytes_total{{workflow=\"{name}\",path=\"remote\"}} {}",
            wf.remote_bytes
        );
        let _ = writeln!(
            out,
            "faasflow_store_bytes_total{{workflow=\"{name}\",path=\"local\"}} {}",
            wf.local_bytes
        );
    }

    // --- Cluster-wide gauges and counters --------------------------------
    for (name, help, value) in [
        (
            "faasflow_sim_time_seconds",
            "Simulated time at report generation.",
            report.sim_time_secs,
        ),
        (
            "faasflow_master_busy_fraction",
            "Master engine CPU busy fraction.",
            report.master_busy_fraction,
        ),
    ] {
        header(&mut out, name, help, "gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, help, value) in [
        (
            "faasflow_cold_starts_total",
            "Container cold starts.",
            report.cold_starts,
        ),
        (
            "faasflow_warm_starts_total",
            "Container warm starts.",
            report.warm_starts,
        ),
        (
            "faasflow_worker_syncs_total",
            "WorkerSP cross-worker state syncs.",
            report.worker_syncs,
        ),
        (
            "faasflow_worker_local_updates_total",
            "WorkerSP in-process state updates.",
            report.worker_local_updates,
        ),
        (
            "faasflow_master_tasks_assigned_total",
            "MasterSP task assignments.",
            report.master_tasks_assigned,
        ),
        (
            "faasflow_master_state_returns_total",
            "MasterSP state returns.",
            report.master_state_returns,
        ),
        (
            "faasflow_storage_node_bytes_total",
            "Bytes through the storage-node NIC.",
            report.storage_node_bytes,
        ),
        (
            "faasflow_faastore_local_bytes_total",
            "Bytes served from worker-local memory.",
            report.faastore_local_bytes,
        ),
        (
            "faasflow_exec_retries_total",
            "Executor attempts retried after injected failure.",
            report.exec_retries,
        ),
        (
            "faasflow_trace_events_dropped_total",
            "Trace events rejected by the capacity cap.",
            report.trace_dropped,
        ),
    ] {
        header(&mut out, name, help, "counter");
        let _ = writeln!(out, "{name} {value}");
    }
    header(
        &mut out,
        "faasflow_faults_total",
        "Fault-injection and recovery actions.",
        "counter",
    );
    let f = &report.faults;
    for (kind, value) in [
        ("worker_crashes", f.worker_crashes),
        ("worker_restarts", f.worker_restarts),
        ("lease_expiries", f.lease_expiries),
        ("crash_redispatches", f.crash_redispatches),
        ("flows_killed", f.flows_killed),
        ("storage_backoff_waits", f.storage_backoff_waits),
        ("message_retransmits", f.message_retransmits),
        ("dead_letters", f.dead_letters),
    ] {
        let _ = writeln!(out, "faasflow_faults_total{{kind=\"{kind}\"}} {value}");
    }
    header(
        &mut out,
        "faasflow_dead_letters_total",
        "Dead-lettered invocations by attributed reason.",
        "counter",
    );
    for (reason, value) in [
        ("retries_exhausted", f.dead_letter_retries_exhausted),
        ("engine_crash_orphan", f.dead_letter_crash_orphan),
        ("journal_unrecoverable", f.dead_letter_journal_unrecoverable),
        ("quarantine_orphan", f.dead_letter_quarantine_orphan),
    ] {
        let _ = writeln!(
            out,
            "faasflow_dead_letters_total{{reason=\"{reason}\"}} {value}"
        );
    }
    header(
        &mut out,
        "faasflow_recovery_total",
        "Engine crash injection and journaled recovery actions.",
        "counter",
    );
    let r = &report.recovery;
    for (kind, value) in [
        ("engine_crashes", r.engine_crashes),
        ("master_engine_crashes", r.master_engine_crashes),
        ("worker_engine_crashes", r.worker_engine_crashes),
        ("engine_recoveries", r.engine_recoveries),
        ("journal_appends", r.journal_appends),
        ("journal_lost_appends", r.journal_lost_appends),
        ("journal_replays", r.journal_replays),
        ("journal_replayed_records", r.journal_replayed_records),
        ("replay_backoffs", r.replay_backoffs),
        ("messages_lost", r.messages_lost),
        ("duplicate_suppressions", r.duplicate_suppressions),
    ] {
        let _ = writeln!(out, "faasflow_recovery_total{{kind=\"{kind}\"}} {value}");
    }
    header(
        &mut out,
        "faasflow_engine_downtime_seconds",
        "Cumulative scheduling-engine outage time.",
        "gauge",
    );
    let _ = writeln!(
        out,
        "faasflow_engine_downtime_seconds {}",
        r.engine_downtime_secs
    );
    header(
        &mut out,
        "faasflow_overload_total",
        "Overload-protection actions (admission control, breaker, hedges, backpressure).",
        "counter",
    );
    let o = &report.overload;
    for (kind, value) in [
        ("admitted", o.admitted),
        ("shed", o.shed),
        ("shed_newest", o.shed_newest),
        ("shed_oldest", o.shed_oldest),
        ("shed_deadline", o.shed_deadline),
        ("breaker_opens", o.breaker_opens),
        ("breaker_half_opens", o.breaker_half_opens),
        ("breaker_closes", o.breaker_closes),
        ("breaker_fast_fails", o.breaker_fast_fails),
        ("breaker_local_serves", o.breaker_local_serves),
        ("hedges_launched", o.hedges_launched),
        ("hedge_wins", o.hedge_wins),
        ("hedge_losses", o.hedge_losses),
        ("backpressure_deferrals", o.backpressure_deferrals),
        ("master_requeues", o.master_requeues),
    ] {
        let _ = writeln!(out, "faasflow_overload_total{{kind=\"{kind}\"}} {value}");
    }

    // --- Placement layer --------------------------------------------------
    // Only rendered when the layer acted, mirroring the report's own
    // omit-when-zero behaviour (legacy snapshots stay byte-identical).
    if !report.placement.is_zero() {
        header(
            &mut out,
            "faasflow_placement_total",
            "Load- and locality-aware placement actions.",
            "counter",
        );
        let p = &report.placement;
        for (kind, value) in [
            ("load_aware_partitions", p.load_aware_partitions),
            ("capacity_fallbacks", p.capacity_fallbacks),
            ("skew_rebalances", p.skew_rebalances),
            ("recovery_rebalances", p.recovery_rebalances),
            ("rebalanced_workflows", p.rebalanced_workflows),
        ] {
            let _ = writeln!(out, "faasflow_placement_total{{kind=\"{kind}\"}} {value}");
        }
    }

    // --- SLO burn-rate monitor --------------------------------------------
    // Only rendered when an SloConfig was set, mirroring the report's own
    // omit-when-zero behaviour (pre-SLO snapshots stay byte-identical).
    if !report.slo.is_zero() {
        header(
            &mut out,
            "faasflow_slo_total",
            "SLO evaluations, violations and alert transitions.",
            "counter",
        );
        let slo = &report.slo;
        for (kind, value) in [
            ("objectives", u64::from(slo.objectives)),
            ("evaluations", slo.evaluations),
            ("violations", slo.violations),
            ("alerts_fired", slo.alerts_fired),
            ("alerts_resolved", slo.alerts_resolved),
        ] {
            let _ = writeln!(out, "faasflow_slo_total{{kind=\"{kind}\"}} {value}");
        }
        header(
            &mut out,
            "faasflow_slo_worst_burn_rate",
            "Highest burn rate observed per sliding window.",
            "gauge",
        );
        let _ = writeln!(
            out,
            "faasflow_slo_worst_burn_rate{{window=\"fast\"}} {}",
            slo.worst_fast_burn
        );
        let _ = writeln!(
            out,
            "faasflow_slo_worst_burn_rate{{window=\"slow\"}} {}",
            slo.worst_slow_burn
        );
        if !slo.per_objective.is_empty() {
            header(
                &mut out,
                "faasflow_slo_burn_rate",
                "Final burn rate per objective and sliding window.",
                "gauge",
            );
            for o in &slo.per_objective {
                let wf = &o.workflow;
                let _ = writeln!(
                    out,
                    "faasflow_slo_burn_rate{{workflow=\"{wf}\",window=\"fast\"}} {}",
                    o.fast_burn
                );
                let _ = writeln!(
                    out,
                    "faasflow_slo_burn_rate{{workflow=\"{wf}\",window=\"slow\"}} {}",
                    o.slow_burn
                );
            }
            header(
                &mut out,
                "faasflow_slo_alert_active",
                "Whether the objective's alert was firing at report time.",
                "gauge",
            );
            for o in &slo.per_objective {
                let _ = writeln!(
                    out,
                    "faasflow_slo_alert_active{{workflow=\"{}\"}} {}",
                    o.workflow,
                    u8::from(o.alert)
                );
            }
        }
    }

    // --- SLO-driven degradation -------------------------------------------
    // Only rendered when a DegradeConfig was set, mirroring the report's
    // own omit-when-zero behaviour.
    if !report.degrade.is_zero() {
        header(
            &mut out,
            "faasflow_degrade_total",
            "Degradation state-machine actions.",
            "counter",
        );
        let d = &report.degrade;
        for (kind, value) in [
            ("workflows_tracked", u64::from(d.workflows_tracked)),
            ("throttles", d.throttles),
            ("escalations", d.escalations),
            ("tightenings", d.tightenings),
            ("recoveries", d.recoveries),
            ("relapses", d.relapses),
            ("restores", d.restores),
            ("sheds", d.sheds),
            ("probes", d.probes),
            ("probe_failures", d.probe_failures),
            ("hedges_suppressed", d.hedges_suppressed),
            ("demoted_sheds", d.demoted_sheds),
        ] {
            let _ = writeln!(out, "faasflow_degrade_total{{kind=\"{kind}\"}} {value}");
        }
        if !d.workflows.is_empty() {
            header(
                &mut out,
                "faasflow_degrade_state",
                "Final degradation level per tracked workflow \
                 (0 normal, 1 recovering, 2 throttled, 3 shedding).",
                "gauge",
            );
            for w in &d.workflows {
                let _ = writeln!(
                    out,
                    "faasflow_degrade_state{{workflow=\"{}\"}} {}",
                    w.workflow,
                    w.level.as_level()
                );
            }
            header(
                &mut out,
                "faasflow_degrade_sheds_total",
                "Arrivals refused at the degradation gate per workflow.",
                "counter",
            );
            for w in &d.workflows {
                let _ = writeln!(
                    out,
                    "faasflow_degrade_sheds_total{{workflow=\"{}\"}} {}",
                    w.workflow, w.sheds
                );
            }
        }
    }

    // --- Gray-failure detection -------------------------------------------
    // Mirrors `HealthReport`'s own omit-when-zero behaviour.
    if !report.health.is_zero() {
        header(
            &mut out,
            "faasflow_health_total",
            "Gray-failure detector actions and injection effects.",
            "counter",
        );
        let h = &report.health;
        for (kind, value) in [
            ("evaluations", h.evaluations),
            ("probations", h.probations),
            ("quarantines", h.quarantines),
            ("relapses", h.relapses),
            ("reinstatements", h.reinstatements),
            ("zombies_fenced", h.zombie_fenced),
            ("quarantine_orphans", h.quarantine_orphans),
            ("stalled_flows", h.stalled_flows),
            ("stuck_deferrals", h.stuck_deferrals),
        ] {
            let _ = writeln!(out, "faasflow_health_total{{kind=\"{kind}\"}} {value}");
        }
        if !h.workers.is_empty() {
            header(
                &mut out,
                "faasflow_worker_health",
                "Final health level per worker \
                 (0 healthy, 1 probation, 2 reinstating, 3 quarantined).",
                "gauge",
            );
            for w in &h.workers {
                let _ = writeln!(
                    out,
                    "faasflow_worker_health{{worker=\"{}\"}} {}",
                    w.worker,
                    w.level.as_level()
                );
            }
            header(
                &mut out,
                "faasflow_worker_health_detail",
                "Per-worker detector window statistics.",
                "gauge",
            );
            for w in &h.workers {
                for (gauge, value) in [
                    ("median_exec_us", w.median_exec_us as f64),
                    ("failure_rate", w.failure_rate),
                    ("quarantines", w.quarantines as f64),
                ] {
                    let _ = writeln!(
                        out,
                        "faasflow_worker_health_detail{{worker=\"{}\",gauge=\"{gauge}\"}} {value}",
                        w.worker
                    );
                }
            }
        }
    }

    // --- Last resource sample per node -----------------------------------
    if let Some(res) = &report.resources {
        header(
            &mut out,
            "faasflow_node_resource",
            "Last sampled per-node gauges.",
            "gauge",
        );
        for series in &res.nodes {
            let Some(last) = series.samples.last() else {
                continue;
            };
            let node = series.node;
            for (gauge, value) in [
                ("containers", last.containers as f64),
                ("containers_busy", last.busy as f64),
                ("queued_admissions", last.queued_admissions as f64),
                ("memstore_used_bytes", last.memstore_used_bytes as f64),
                ("memstore_budget_bytes", last.memstore_budget_bytes as f64),
                ("nic_tx_bytes_per_sec", last.nic_tx_bytes_per_sec),
                ("nic_rx_bytes_per_sec", last.nic_rx_bytes_per_sec),
            ] {
                let _ = writeln!(
                    out,
                    "faasflow_node_resource{{node=\"{node}\",gauge=\"{gauge}\"}} {value}"
                );
            }
        }
        header(
            &mut out,
            "faasflow_resource_samples_dropped_total",
            "Samples evicted from full ring buffers.",
            "counter",
        );
        let _ = writeln!(
            out,
            "faasflow_resource_samples_dropped_total {}",
            res.dropped_samples
        );
        if let Some(last) = res.cluster.last() {
            header(
                &mut out,
                "faasflow_cluster_load",
                "Last sampled cluster-wide depths.",
                "gauge",
            );
            let _ = writeln!(
                out,
                "faasflow_cluster_load{{gauge=\"pending_events\"}} {}",
                last.pending_events
            );
            let _ = writeln!(
                out,
                "faasflow_cluster_load{{gauge=\"inflight_invocations\"}} {}",
                last.inflight_invocations
            );
        }
    }
    out
}

/// Renders the live per-worker load gauges — the placement layer's input
/// signal, scraped via [`faasflow_core::Cluster::worker_load_snapshot`].
pub fn prometheus_worker_loads(loads: &[(NodeId, WorkerLoad, EngineLoad)]) -> String {
    let mut out = String::new();
    header(
        &mut out,
        "faasflow_worker_load",
        "Live per-worker load as seen by the placement layer.",
        "gauge",
    );
    for (node, load, engine) in loads {
        for (gauge, value) in [
            ("queued", u64::from(load.queued)),
            ("running", u64::from(load.running)),
            ("mem_used_bytes", load.mem_used_bytes),
            ("recent_p99_ms", u64::from(load.recent_p99_ms)),
            ("engine_live_invocations", engine.live_invocations as u64),
            ("engine_local_groups", engine.local_groups as u64),
        ] {
            let _ = writeln!(
                out,
                "faasflow_worker_load{{node=\"{node}\",gauge=\"{gauge}\"}} {value}"
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasflow_core::{ClientConfig, Cluster, ClusterConfig};
    use faasflow_sim::SimDuration;
    use faasflow_wdl::{FunctionProfile, Step, Workflow};

    fn snapshot_of_a_small_run() -> String {
        let mut cluster = Cluster::new(ClusterConfig {
            sample_every: Some(SimDuration::from_millis(20)),
            ..ClusterConfig::default()
        })
        .expect("valid config");
        cluster
            .register(
                &Workflow::steps(
                    "p",
                    Step::task("a", FunctionProfile::with_millis(30, 1 << 20)),
                ),
                ClientConfig::ClosedLoop { invocations: 3 },
            )
            .expect("registers");
        cluster.run_until_idle();
        prometheus_snapshot(&cluster.report())
    }

    #[test]
    fn exposition_is_structurally_sound() {
        let text = snapshot_of_a_small_run();
        assert!(text.contains("faasflow_invocations_total{workflow=\"p\",state=\"completed\"} 3"));
        assert!(text.contains("# TYPE faasflow_e2e_latency_ms summary"));
        assert!(text.contains("faasflow_node_resource{node=\"node"));
        // Every non-comment line is `name{labels} value` or `name value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (metric, value) = line.rsplit_once(' ').expect("metric and value");
            assert!(!metric.is_empty());
            assert!(value.parse::<f64>().is_ok(), "unparsable value: {line}");
        }
    }

    #[test]
    fn snapshot_is_deterministic() {
        assert_eq!(snapshot_of_a_small_run(), snapshot_of_a_small_run());
    }
}
