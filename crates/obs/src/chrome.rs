//! Chrome trace-event (Perfetto-loadable) exporter.
//!
//! Emits the JSON object format of the Trace Event specification:
//! `{"traceEvents": [...], "displayTimeUnit": "ms"}`. Spans become `B`/`E`
//! duration pairs, annotations and node-scoped fault events become `i`
//! instants, and the sampled resource series become `C` counter tracks.
//! Load the file at `ui.perfetto.dev` or `chrome://tracing`.
//!
//! Track model: process 0 is the cluster (invocation roots and
//! cluster-scoped annotations); process `n + 1` is node `n` of the
//! simulated cluster (node 0 = master/storage, others = workers). Within a
//! process, spans are packed onto threads by a greedy interval-lane
//! allocator so every `B`/`E` pair on one thread is properly nested —
//! overlapping spans (a parent and its children, or concurrent instances)
//! land on separate lanes.
//!
//! Timestamps are microseconds of simulated time, so the export is
//! bit-deterministic for a given seed and diffable as a golden file.

use faasflow_core::{ResourceSeriesReport, TraceEvent};
use faasflow_sim::SimTime;
use serde::{Deserialize, Error, Serialize, Value};

use crate::span::{AnnotationKind, Span, SpanForest, SpanKind};

/// A parsed JSON document. The vendored serde has no blanket
/// `Serialize for Value`, so exporters build [`Value`] trees and wrap them
/// in this newtype for printing; `Deserialize` makes it double as a
/// grammar-level JSON validator via [`parse_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct JsonDoc(pub Value);

impl Serialize for JsonDoc {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

impl Deserialize for JsonDoc {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(JsonDoc(value.clone()))
    }
}

/// Parses arbitrary JSON text into a [`Value`] tree (full grammar).
///
/// # Errors
///
/// Returns the parse error on malformed input.
pub fn parse_json(text: &str) -> Result<Value, serde_json::Error> {
    serde_json::from_str::<JsonDoc>(text).map(|doc| doc.0)
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Map(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn s(text: impl Into<String>) -> Value {
    Value::Str(text.into())
}

/// Microseconds of sim time — the unit the trace viewer expects.
fn us(at: SimTime) -> Value {
    Value::Float(at.as_nanos() as f64 / 1000.0)
}

/// The process a span renders under.
fn span_pid(span: &Span) -> u64 {
    span.node.map_or(0, |n| n.index() as u64 + 1)
}

fn span_args(span: &Span, critical: bool) -> Value {
    let mut fields: Vec<(&str, Value)> = Vec::new();
    match span.kind {
        SpanKind::Invocation | SpanKind::Function => {}
        SpanKind::Provision { cold } => fields.push(("cold", Value::Bool(cold))),
        SpanKind::Exec { attempt, failed } => {
            fields.push(("attempt", Value::UInt(u64::from(attempt))));
            fields.push(("failed", Value::Bool(failed)));
        }
        SpanKind::Transfer {
            read,
            remote,
            bytes,
        } => {
            fields.push(("read", Value::Bool(read)));
            fields.push(("remote", Value::Bool(remote)));
            fields.push(("bytes", Value::UInt(bytes)));
        }
    }
    if span.truncated {
        fields.push(("truncated", Value::Bool(true)));
    }
    if critical {
        fields.push(("critical_path", Value::Bool(true)));
    }
    obj(fields)
}

/// Greedy interval-lane allocation: each span gets the lowest-numbered
/// lane whose previous occupant has already closed. Returns `(lane,
/// span)` pairs and keeps the by-`(start, end desc)` order, so within one
/// lane spans are sequential and `B`/`E` pairs trivially nest.
fn allocate_lanes(mut spans: Vec<(&Span, String)>) -> Vec<(usize, &Span, String)> {
    spans.sort_by(|(a, _), (b, _)| {
        a.start
            .cmp(&b.start)
            .then(b.end.cmp(&a.end))
            .then(a.label.cmp(&b.label))
    });
    let mut lane_free_at: Vec<SimTime> = Vec::new();
    let mut out = Vec::with_capacity(spans.len());
    for (span, name) in spans {
        let lane = match lane_free_at.iter().position(|&free| free <= span.start) {
            Some(l) => l,
            None => {
                lane_free_at.push(SimTime::ZERO);
                lane_free_at.len() - 1
            }
        };
        lane_free_at[lane] = span.end;
        out.push((lane, span, name));
    }
    out
}

/// Renders the forest (and, when sampling was on, the resource series) as
/// Chrome trace-event JSON.
pub fn chrome_trace(forest: &SpanForest, resources: Option<&ResourceSeriesReport>) -> String {
    let mut events: Vec<Value> = Vec::new();

    // Spans on an invocation's observed critical path are highlighted
    // (distinct color name + a `critical_path` arg) so the bottleneck
    // chain is visually traceable through the lanes.
    let critical_spans: std::collections::HashSet<*const Span> = crate::critpath::extract(forest)
        .iter()
        .zip(&forest.trees)
        .flat_map(|(path, tree)| {
            path.segments
                .iter()
                .filter_map(|seg| seg.span)
                .map(|idx| &tree.spans[idx] as *const Span)
        })
        .collect();

    // --- Track metadata -------------------------------------------------
    let mut pids: Vec<u64> = forest
        .trees
        .iter()
        .flat_map(|t| t.spans.iter().map(span_pid))
        .chain(std::iter::once(0))
        .collect();
    if let Some(res) = resources {
        pids.extend(res.nodes.iter().map(|n| n.node.index() as u64 + 1));
    }
    pids.sort_unstable();
    pids.dedup();
    for pid in &pids {
        let name = match pid {
            0 => "cluster".to_string(),
            1 => "node0 (master/storage)".to_string(),
            n => format!("node{} (worker)", n - 1),
        };
        events.push(obj(vec![
            ("name", s("process_name")),
            ("ph", s("M")),
            ("pid", Value::UInt(*pid)),
            ("tid", Value::UInt(0)),
            ("args", obj(vec![("name", s(name))])),
        ]));
    }

    // --- Spans as B/E pairs --------------------------------------------
    for pid in &pids {
        let spans: Vec<(&Span, String)> = forest
            .trees
            .iter()
            .flat_map(|tree| {
                tree.spans
                    .iter()
                    .filter(move |span| span_pid(span) == *pid)
                    .map(move |span| {
                        let name = if span.parent.is_none() {
                            span.label.clone()
                        } else {
                            format!("{}/{} {}", tree.workflow, tree.invocation, span.label)
                        };
                        (span, name)
                    })
            })
            .collect();
        for (lane, span, name) in allocate_lanes(spans) {
            let tid = Value::UInt(lane as u64);
            let critical = critical_spans.contains(&(span as *const Span));
            let mut begin = vec![
                ("name", s(name)),
                ("cat", s(category(span))),
                ("ph", s("B")),
                ("ts", us(span.start)),
                ("pid", Value::UInt(*pid)),
                ("tid", tid.clone()),
                ("args", span_args(span, critical)),
            ];
            if critical {
                // Legacy Chrome color name: renders the gating slices in a
                // uniform alarm red in both Perfetto and chrome://tracing.
                begin.push(("cname", s("terrible")));
            }
            events.push(obj(begin));
            events.push(obj(vec![
                ("ph", s("E")),
                ("ts", us(span.end)),
                ("pid", Value::UInt(*pid)),
                ("tid", tid),
            ]));
        }
    }

    // --- Annotations and node-scoped fault events as instants ----------
    for tree in &forest.trees {
        for a in &tree.annotations {
            let (name, pid) = match &a.kind {
                AnnotationKind::StateSync {
                    from,
                    to,
                    completed,
                } => (
                    format!("sync {completed}: {from} -> {to}"),
                    from.index() as u64 + 1,
                ),
                AnnotationKind::StorageRetry {
                    function,
                    read,
                    attempt,
                    ..
                } => (
                    format!(
                        "storage retry {function} {} attempt {attempt}",
                        if *read { "read" } else { "write" }
                    ),
                    0,
                ),
                AnnotationKind::Restarted { epoch } => {
                    (format!("{} restart epoch {epoch}", tree.invocation), 0)
                }
                AnnotationKind::DeadLettered => (format!("{} dead-lettered", tree.invocation), 0),
                AnnotationKind::Shed { worker } => (
                    format!("{} shed (queue full)", tree.invocation),
                    worker.index() as u64 + 1,
                ),
                AnnotationKind::HedgeLaunched {
                    function,
                    instance,
                    from,
                    to,
                } => (
                    format!("hedge {function}#{instance}: {from} -> {to}"),
                    to.index() as u64 + 1,
                ),
                AnnotationKind::HedgeResolved {
                    function,
                    instance,
                    winner_is_hedge,
                } => (
                    format!(
                        "hedge {function}#{instance} {} won",
                        if *winner_is_hedge { "hedge" } else { "primary" }
                    ),
                    0,
                ),
            };
            events.push(obj(vec![
                ("name", s(name)),
                ("cat", s("annotation")),
                ("ph", s("i")),
                ("s", s("p")),
                ("ts", us(a.at)),
                ("pid", Value::UInt(pid)),
                ("tid", Value::UInt(0)),
            ]));
        }
    }
    for event in &forest.node_events {
        // The storage-node breaker renders twice: an instant per transition
        // and a counter track of its state level (0 = closed, 1 = open,
        // 2 = half-open), both on the master/storage process.
        if let TraceEvent::BreakerTransition { from, to, at } = event {
            events.push(obj(vec![
                ("name", s(format!("breaker {from:?} -> {to:?}"))),
                ("cat", s("overload")),
                ("ph", s("i")),
                ("s", s("p")),
                ("ts", us(*at)),
                ("pid", Value::UInt(1)),
                ("tid", Value::UInt(0)),
            ]));
            events.push(obj(vec![
                ("name", s("breaker state")),
                ("ph", s("C")),
                ("ts", us(*at)),
                ("pid", Value::UInt(1)),
                ("tid", Value::UInt(0)),
                (
                    "args",
                    obj(vec![("level", Value::UInt(u64::from(to.as_level())))]),
                ),
            ]));
            continue;
        }
        // Engine outages render as a duration span on the owning process
        // (crash opens it, recovery closes it) plus an instant per edge so
        // the replay size is visible at the recovery point.
        if let TraceEvent::EngineCrashed { worker, at } = event {
            let pid = worker.map(|n| n.index() as u64 + 1).unwrap_or(1);
            events.push(obj(vec![
                ("name", s("engine down")),
                ("cat", s("fault")),
                ("ph", s("B")),
                ("ts", us(*at)),
                ("pid", Value::UInt(pid)),
                ("tid", Value::UInt(0)),
            ]));
            events.push(obj(vec![
                ("name", s("engine crashed")),
                ("cat", s("fault")),
                ("ph", s("i")),
                ("s", s("p")),
                ("ts", us(*at)),
                ("pid", Value::UInt(pid)),
                ("tid", Value::UInt(0)),
            ]));
            continue;
        }
        if let TraceEvent::EngineRecovered {
            worker,
            replayed,
            at,
        } = event
        {
            let pid = worker.map(|n| n.index() as u64 + 1).unwrap_or(1);
            events.push(obj(vec![
                ("name", s("engine down")),
                ("cat", s("fault")),
                ("ph", s("E")),
                ("ts", us(*at)),
                ("pid", Value::UInt(pid)),
                ("tid", Value::UInt(0)),
            ]));
            events.push(obj(vec![
                (
                    "name",
                    s(format!("engine recovered ({replayed} records replayed)")),
                ),
                ("cat", s("fault")),
                ("ph", s("i")),
                ("s", s("p")),
                ("ts", us(*at)),
                ("pid", Value::UInt(pid)),
                ("tid", Value::UInt(0)),
            ]));
            continue;
        }
        // SLO alert transitions render on the cluster process: an instant
        // per edge plus a burn-rate counter track that steps to the firing
        // burn rates and back to zero on resolve.
        if let TraceEvent::SloAlertFired {
            workflow,
            fast_burn,
            slow_burn,
            at,
        } = event
        {
            events.push(obj(vec![
                ("name", s(format!("SLO alert fired: {workflow}"))),
                ("cat", s("slo")),
                ("ph", s("i")),
                ("s", s("g")),
                ("ts", us(*at)),
                ("pid", Value::UInt(0)),
                ("tid", Value::UInt(0)),
                (
                    "args",
                    obj(vec![
                        ("fast_burn", Value::Float(*fast_burn)),
                        ("slow_burn", Value::Float(*slow_burn)),
                    ]),
                ),
            ]));
            events.push(obj(vec![
                ("name", s(format!("slo burn rate {workflow}"))),
                ("ph", s("C")),
                ("ts", us(*at)),
                ("pid", Value::UInt(0)),
                ("tid", Value::UInt(0)),
                (
                    "args",
                    obj(vec![
                        ("fast", Value::Float(*fast_burn)),
                        ("slow", Value::Float(*slow_burn)),
                    ]),
                ),
            ]));
            continue;
        }
        if let TraceEvent::SloAlertResolved { workflow, at } = event {
            events.push(obj(vec![
                ("name", s(format!("SLO alert resolved: {workflow}"))),
                ("cat", s("slo")),
                ("ph", s("i")),
                ("s", s("g")),
                ("ts", us(*at)),
                ("pid", Value::UInt(0)),
                ("tid", Value::UInt(0)),
            ]));
            events.push(obj(vec![
                ("name", s(format!("slo burn rate {workflow}"))),
                ("ph", s("C")),
                ("ts", us(*at)),
                ("pid", Value::UInt(0)),
                ("tid", Value::UInt(0)),
                (
                    "args",
                    obj(vec![
                        ("fast", Value::Float(0.0)),
                        ("slow", Value::Float(0.0)),
                    ]),
                ),
            ]));
            continue;
        }
        // Degradation transitions render like the SLO alerts they answer:
        // an instant per transition plus a severity counter track
        // (0 normal, 1 recovering, 2 throttled, 3 shedding).
        if let TraceEvent::WorkflowDegraded {
            workflow,
            level,
            cap,
            at,
        } = event
        {
            events.push(obj(vec![
                (
                    "name",
                    s(format!(
                        "workflow degraded: {workflow} -> {}",
                        level.label()
                    )),
                ),
                ("cat", s("degrade")),
                ("ph", s("i")),
                ("s", s("g")),
                ("ts", us(*at)),
                ("pid", Value::UInt(0)),
                ("tid", Value::UInt(0)),
                ("args", obj(vec![("cap", Value::UInt(u64::from(*cap)))])),
            ]));
            events.push(obj(vec![
                ("name", s(format!("degrade state {workflow}"))),
                ("ph", s("C")),
                ("ts", us(*at)),
                ("pid", Value::UInt(0)),
                ("tid", Value::UInt(0)),
                (
                    "args",
                    obj(vec![("level", Value::UInt(u64::from(level.as_level())))]),
                ),
            ]));
            continue;
        }
        if let TraceEvent::WorkflowRestored { workflow, at } = event {
            events.push(obj(vec![
                ("name", s(format!("workflow restored: {workflow}"))),
                ("cat", s("degrade")),
                ("ph", s("i")),
                ("s", s("g")),
                ("ts", us(*at)),
                ("pid", Value::UInt(0)),
                ("tid", Value::UInt(0)),
            ]));
            events.push(obj(vec![
                ("name", s(format!("degrade state {workflow}"))),
                ("ph", s("C")),
                ("ts", us(*at)),
                ("pid", Value::UInt(0)),
                ("tid", Value::UInt(0)),
                ("args", obj(vec![("level", Value::UInt(0))])),
            ]));
            continue;
        }
        // Health detector transitions: an instant on the worker's process
        // row plus a per-worker state counter track (0 healthy, 3
        // quarantined — the half-open Reinstating phase has no trace event
        // of its own, so the counter steps straight back to 0 on
        // reinstatement).
        if let TraceEvent::WorkerQuarantined {
            worker,
            score,
            relapse,
            at,
        } = event
        {
            let pid = Value::UInt(worker.index() as u64 + 1);
            events.push(obj(vec![
                (
                    "name",
                    s(if *relapse {
                        "worker quarantined (relapse)"
                    } else {
                        "worker quarantined"
                    }),
                ),
                ("cat", s("health")),
                ("ph", s("i")),
                ("s", s("p")),
                ("ts", us(*at)),
                ("pid", pid.clone()),
                ("tid", Value::UInt(0)),
                ("args", obj(vec![("score", Value::Float(*score))])),
            ]));
            events.push(obj(vec![
                ("name", s("health state")),
                ("ph", s("C")),
                ("ts", us(*at)),
                ("pid", pid),
                ("tid", Value::UInt(0)),
                ("args", obj(vec![("level", Value::UInt(3))])),
            ]));
            continue;
        }
        if let TraceEvent::WorkerReinstated { worker, at } = event {
            let pid = Value::UInt(worker.index() as u64 + 1);
            events.push(obj(vec![
                ("name", s("worker reinstated")),
                ("cat", s("health")),
                ("ph", s("i")),
                ("s", s("p")),
                ("ts", us(*at)),
                ("pid", pid.clone()),
                ("tid", Value::UInt(0)),
            ]));
            events.push(obj(vec![
                ("name", s("health state")),
                ("ph", s("C")),
                ("ts", us(*at)),
                ("pid", pid),
                ("tid", Value::UInt(0)),
                ("args", obj(vec![("level", Value::UInt(0))])),
            ]));
            continue;
        }
        if let TraceEvent::ZombieFenced {
            worker,
            workflow,
            invocation,
            at,
        } = event
        {
            events.push(obj(vec![
                ("name", s(format!("zombie fenced: {workflow}/{invocation}"))),
                ("cat", s("health")),
                ("ph", s("i")),
                ("s", s("p")),
                ("ts", us(*at)),
                ("pid", Value::UInt(worker.index() as u64 + 1)),
                ("tid", Value::UInt(0)),
            ]));
            continue;
        }
        let (name, node) = match event {
            TraceEvent::WorkerCrashed { worker, .. } => ("worker crashed", worker),
            TraceEvent::WorkerRestarted { worker, .. } => ("worker restarted", worker),
            TraceEvent::LeaseExpired { worker, .. } => ("lease expired", worker),
            _ => continue,
        };
        events.push(obj(vec![
            ("name", s(name)),
            ("cat", s("fault")),
            ("ph", s("i")),
            ("s", s("p")),
            ("ts", us(event.at())),
            ("pid", Value::UInt(node.index() as u64 + 1)),
            ("tid", Value::UInt(0)),
        ]));
    }

    // --- Resource series as counter tracks -----------------------------
    if let Some(res) = resources {
        for series in &res.nodes {
            let pid = Value::UInt(series.node.index() as u64 + 1);
            for sample in &series.samples {
                let ts = Value::Float(sample.at_secs * 1e6);
                let mut counter = |name: &str, args: Vec<(&str, Value)>| {
                    events.push(obj(vec![
                        ("name", s(name)),
                        ("ph", s("C")),
                        ("ts", ts.clone()),
                        ("pid", pid.clone()),
                        ("tid", Value::UInt(0)),
                        ("args", obj(args)),
                    ]));
                };
                counter(
                    "containers",
                    vec![
                        ("busy", Value::UInt(sample.busy)),
                        (
                            "warm idle",
                            Value::UInt(sample.containers.saturating_sub(sample.busy)),
                        ),
                    ],
                );
                counter(
                    "queued admissions",
                    vec![("queued", Value::UInt(sample.queued_admissions))],
                );
                counter(
                    "memstore bytes",
                    vec![
                        ("used", Value::UInt(sample.memstore_used_bytes)),
                        ("budget", Value::UInt(sample.memstore_budget_bytes)),
                    ],
                );
                counter(
                    "nic bytes/s",
                    vec![
                        ("tx", Value::Float(sample.nic_tx_bytes_per_sec)),
                        ("rx", Value::Float(sample.nic_rx_bytes_per_sec)),
                    ],
                );
            }
        }
        for sample in &res.cluster {
            let ts = Value::Float(sample.at_secs * 1e6);
            events.push(obj(vec![
                ("name", s("cluster load")),
                ("ph", s("C")),
                ("ts", ts),
                ("pid", Value::UInt(0)),
                ("tid", Value::UInt(0)),
                (
                    "args",
                    obj(vec![
                        ("pending events", Value::UInt(sample.pending_events)),
                        (
                            "inflight invocations",
                            Value::UInt(sample.inflight_invocations),
                        ),
                    ]),
                ),
            ]));
        }
    }

    let doc = obj(vec![
        ("traceEvents", Value::Seq(events)),
        ("displayTimeUnit", s("ms")),
    ]);
    serde_json::to_string(&JsonDoc(doc)).expect("trace values are finite")
}

fn category(span: &Span) -> &'static str {
    match span.kind {
        SpanKind::Invocation => "invocation",
        SpanKind::Function => "function",
        SpanKind::Provision { .. } => "provision",
        SpanKind::Exec { .. } => "exec",
        SpanKind::Transfer { .. } => "transfer",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::build_forest;
    use faasflow_sim::{ContainerId, FunctionId, InvocationId, NodeId, SimDuration, WorkflowId};

    fn ms(v: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(v)
    }

    fn tiny_forest() -> SpanForest {
        let wf = WorkflowId::new(0);
        let inv = InvocationId::new(0);
        let f = FunctionId::new(1);
        let n = NodeId::new(1);
        build_forest(&[
            TraceEvent::InvocationArrived {
                workflow: wf,
                invocation: inv,
                at: ms(0),
            },
            TraceEvent::FunctionTriggered {
                workflow: wf,
                invocation: inv,
                function: f,
                worker: n,
                at: ms(1),
            },
            TraceEvent::InstanceStarted {
                workflow: wf,
                invocation: inv,
                function: f,
                instance: 0,
                worker: n,
                container: ContainerId::new(0),
                cold: false,
                at: ms(2),
            },
            TraceEvent::ExecStarted {
                workflow: wf,
                invocation: inv,
                function: f,
                instance: 0,
                worker: n,
                attempt: 0,
                at: ms(2),
            },
            TraceEvent::ExecFinished {
                workflow: wf,
                invocation: inv,
                function: f,
                instance: 0,
                worker: n,
                attempt: 0,
                failed: false,
                at: ms(9),
            },
            TraceEvent::NodeCompleted {
                workflow: wf,
                invocation: inv,
                function: f,
                at: ms(9),
            },
            TraceEvent::InvocationCompleted {
                workflow: wf,
                invocation: inv,
                at: ms(9),
                timed_out: false,
            },
        ])
    }

    #[test]
    fn export_round_trips_through_the_json_parser() {
        let text = chrome_trace(&tiny_forest(), None);
        let value = parse_json(&text).expect("valid JSON");
        let Value::Map(fields) = value else {
            panic!("top level must be an object")
        };
        let (_, Value::Seq(trace_events)) = &fields[0] else {
            panic!("traceEvents must be an array")
        };
        assert!(!trace_events.is_empty());
    }

    #[test]
    fn begin_and_end_events_balance_per_thread() {
        let text = chrome_trace(&tiny_forest(), None);
        let begins = text.matches("\"ph\":\"B\"").count();
        let ends = text.matches("\"ph\":\"E\"").count();
        assert_eq!(begins, ends);
        assert!(begins >= 4, "root, function, provision, exec spans");
    }

    #[test]
    fn lanes_never_overlap() {
        let forest = tiny_forest();
        let spans: Vec<(&Span, String)> = forest.trees[0]
            .spans
            .iter()
            .map(|sp| (sp, sp.label.clone()))
            .collect();
        let mut by_lane: std::collections::HashMap<usize, Vec<&Span>> = Default::default();
        for (lane, span, _) in allocate_lanes(spans) {
            by_lane.entry(lane).or_default().push(span);
        }
        for spans in by_lane.values() {
            for pair in spans.windows(2) {
                assert!(pair[1].start >= pair[0].end, "lane occupants overlap");
            }
        }
    }

    #[test]
    fn parse_json_rejects_garbage() {
        assert!(parse_json("{\"unterminated\": ").is_err());
        assert!(parse_json("[1, 2] trailing").is_err());
    }
}
