//! What-if latency modeling: Amdahl-style speedup bounds from the
//! observed critical path.
//!
//! If a fraction `p` of the critical path is spent in some overhead phase,
//! then eliminating that phase entirely — free transfers, warm-only
//! starts, zero queueing — can shrink the makespan to at most `1 - p` of
//! itself: a speedup bound of `1 / (1 - p)`. The bounds are *upper*
//! bounds on what any optimization of that phase can buy (removing
//! transfer time can expose a different path as critical, never a longer
//! one), which makes them the right yardstick for the paper's locality
//! argument: "X% of the critical path is transfer, so locality can buy at
//! most Y×".
//!
//! The floor of all scenarios is [`WorkflowWhatIf::exec_only_ms`]: only
//! successful execution left on the chain. With deterministic execution
//! times it dominates the DAG's static `critical_path_exec()` (see
//! [`crate::critpath`] for why), so `observed >= exec-only >= static`
//! quantifies scheduling inflation end to end.

use faasflow_sim::WorkflowId;
use serde::{Deserialize, Serialize};

use crate::critpath::CritPathBreakdown;

/// A phase-elimination scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WhatIfScenario {
    /// All data movement (remote and local) is free.
    FreeTransfers,
    /// Every cold start is served warm (cold-start time removed; the warm
    /// queue-wait that remains is untouched).
    WarmStartsOnly,
    /// No waiting for warm containers.
    NoQueueing,
    /// Only successful execution remains: every overhead phase removed at
    /// once — the floor of the other scenarios.
    ExecOnly,
}

impl WhatIfScenario {
    /// All scenarios, in rendering order.
    pub const ALL: [WhatIfScenario; 4] = [
        WhatIfScenario::FreeTransfers,
        WhatIfScenario::WarmStartsOnly,
        WhatIfScenario::NoQueueing,
        WhatIfScenario::ExecOnly,
    ];

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            WhatIfScenario::FreeTransfers => "free-xfer",
            WhatIfScenario::WarmStartsOnly => "warm-only",
            WhatIfScenario::NoQueueing => "no-queue",
            WhatIfScenario::ExecOnly => "exec-only",
        }
    }

    /// The critical-path milliseconds this scenario removes.
    fn removed_ms(self, row: &CritPathBreakdown) -> f64 {
        match self {
            WhatIfScenario::FreeTransfers => row.transfer_ms(),
            WhatIfScenario::WarmStartsOnly => row.cold_start_ms,
            WhatIfScenario::NoQueueing => row.queue_wait_ms,
            WhatIfScenario::ExecOnly => row.total_ms - row.exec_ms,
        }
    }
}

/// One scenario's bound for one workflow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WhatIfBound {
    /// The scenario.
    pub scenario: WhatIfScenario,
    /// Lower bound on the makespan with the phase removed, ms (summed
    /// over the breakdown's invocations, like [`CritPathBreakdown`]).
    pub bound_ms: f64,
    /// Upper bound on the speedup the elimination can buy
    /// (`total / bound`; infinite when nothing but the phase remains).
    pub speedup: f64,
}

/// What-if bounds for one workflow, derived from its critical-path
/// breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowWhatIf {
    /// Workflow.
    pub workflow: WorkflowId,
    /// Invocations folded in.
    pub invocations: u64,
    /// Observed critical-path total, ms.
    pub observed_ms: f64,
    /// One bound per [`WhatIfScenario::ALL`] entry, in that order.
    pub bounds: Vec<WhatIfBound>,
    /// Successful execution left on the chain, ms — the floor (equal to
    /// the exec-only scenario's `bound_ms`).
    pub exec_only_ms: f64,
}

impl WorkflowWhatIf {
    /// The bound for one scenario.
    pub fn bound(&self, scenario: WhatIfScenario) -> &WhatIfBound {
        self.bounds
            .iter()
            .find(|b| b.scenario == scenario)
            .expect("all scenarios are computed")
    }
}

/// Computes every scenario's bound for one workflow.
pub fn what_if(row: &CritPathBreakdown) -> WorkflowWhatIf {
    let bounds = WhatIfScenario::ALL
        .iter()
        .map(|&scenario| {
            let removed = scenario.removed_ms(row).min(row.total_ms);
            let bound_ms = row.total_ms - removed;
            let speedup = if row.total_ms == 0.0 {
                1.0
            } else if bound_ms == 0.0 {
                f64::INFINITY
            } else {
                row.total_ms / bound_ms
            };
            WhatIfBound {
                scenario,
                bound_ms,
                speedup,
            }
        })
        .collect::<Vec<_>>();
    let exec_only_ms = bounds
        .iter()
        .find(|b| b.scenario == WhatIfScenario::ExecOnly)
        .expect("exec-only is always computed")
        .bound_ms;
    WorkflowWhatIf {
        workflow: row.workflow,
        invocations: row.invocations,
        observed_ms: row.total_ms,
        bounds,
        exec_only_ms,
    }
}

/// Computes bounds for every workflow in a breakdown set.
pub fn what_if_all(rows: &[CritPathBreakdown]) -> Vec<WorkflowWhatIf> {
    rows.iter().map(what_if).collect()
}

/// Renders what-if speedup bounds as a table: per workflow the observed
/// mean chain, each scenario's bound (mean ms and max speedup), and the
/// static lower bound when the caller can supply one.
pub fn render_whatif_table(
    sections: &[(String, Vec<WorkflowWhatIf>)],
    mut names: impl FnMut(WorkflowId) -> String,
    mut static_exec_ms: impl FnMut(WorkflowId) -> Option<f64>,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:<10} {:>9} {:>15} {:>15} {:>15} {:>15} {:>9}",
        "mode", "workflow", "observed", "free-xfer", "warm-only", "no-queue", "exec-only", "static"
    );
    let _ = writeln!(out, "{}", "-".repeat(104));
    for (label, rows) in sections {
        for row in rows {
            let n = row.invocations.max(1) as f64;
            let cell = |b: &WhatIfBound| {
                if b.speedup.is_infinite() {
                    format!("{:.1} (inf)", b.bound_ms / n)
                } else {
                    format!("{:.1} ({:.2}x)", b.bound_ms / n, b.speedup)
                }
            };
            let static_cell = match static_exec_ms(row.workflow) {
                Some(ms) => format!("{ms:.1}"),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "{:<10} {:<10} {:>9.1} {:>15} {:>15} {:>15} {:>15} {:>9}",
                label,
                names(row.workflow),
                row.observed_ms / n,
                cell(row.bound(WhatIfScenario::FreeTransfers)),
                cell(row.bound(WhatIfScenario::WarmStartsOnly)),
                cell(row.bound(WhatIfScenario::NoQueueing)),
                cell(row.bound(WhatIfScenario::ExecOnly)),
                static_cell,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> CritPathBreakdown {
        CritPathBreakdown {
            workflow: WorkflowId::new(0),
            invocations: 2,
            total_ms: 200.0,
            exec_ms: 100.0,
            retry_ms: 10.0,
            cold_start_ms: 30.0,
            transfer_remote_ms: 25.0,
            transfer_local_ms: 5.0,
            queue_wait_ms: 20.0,
            engine_down_ms: 0.0,
            control_ms: 10.0,
        }
    }

    #[test]
    fn amdahl_bounds_are_consistent() {
        let w = what_if(&row());
        assert_eq!(w.observed_ms, 200.0);
        let free = w.bound(WhatIfScenario::FreeTransfers);
        assert!((free.bound_ms - 170.0).abs() < 1e-9);
        assert!((free.speedup - 200.0 / 170.0).abs() < 1e-9);
        let warm = w.bound(WhatIfScenario::WarmStartsOnly);
        assert!((warm.bound_ms - 170.0).abs() < 1e-9);
        let queue = w.bound(WhatIfScenario::NoQueueing);
        assert!((queue.bound_ms - 180.0).abs() < 1e-9);
        let exec = w.bound(WhatIfScenario::ExecOnly);
        assert!((exec.bound_ms - 100.0).abs() < 1e-9);
        assert!((exec.speedup - 2.0).abs() < 1e-9);
        assert_eq!(w.exec_only_ms, exec.bound_ms);
        // Every scenario's bound floors at exec-only.
        for b in &w.bounds {
            assert!(b.bound_ms >= w.exec_only_ms - 1e-9);
            assert!(b.speedup >= 1.0);
        }
    }

    #[test]
    fn zero_chain_degenerates_gracefully() {
        let mut r = row();
        r.total_ms = 0.0;
        r.exec_ms = 0.0;
        r.retry_ms = 0.0;
        r.cold_start_ms = 0.0;
        r.transfer_remote_ms = 0.0;
        r.transfer_local_ms = 0.0;
        r.queue_wait_ms = 0.0;
        r.control_ms = 0.0;
        let w = what_if(&r);
        for b in &w.bounds {
            assert_eq!(b.bound_ms, 0.0);
            assert_eq!(b.speedup, 1.0);
        }
    }

    #[test]
    fn all_overhead_chain_gives_infinite_headroom() {
        let mut r = row();
        r.exec_ms = 0.0;
        r.transfer_remote_ms = 125.0; // keep phases summing to total
        let w = what_if(&r);
        assert!(w.bound(WhatIfScenario::ExecOnly).speedup.is_infinite());
    }

    #[test]
    fn table_renders_every_scenario() {
        let w = what_if_all(std::slice::from_ref(&row()));
        let table = render_whatif_table(
            &[("wsp".to_string(), w)],
            |wf| format!("{wf}"),
            |_| Some(50.0),
        );
        assert!(table.contains("free-xfer"));
        assert!(table.contains("exec-only"));
        assert!(table.contains("50.0"));
    }
}
