//! Observed critical-path extraction: which work actually gated completion.
//!
//! The attribution module ([`crate::attribution`]) answers "how much time
//! was spent in each phase, summed over everything that happened"; this
//! module answers the sharper question "which phase was the invocation
//! *waiting on* at each instant" — the critical path through the span
//! tree. Two transfers overlapping each other cost twice in attribution
//! but only once here, because only one instant of wall-clock passed.
//!
//! The extraction is a time partition of the root span's window. Every
//! instant is classified by the highest-priority work span covering it:
//!
//! 1. [`CritPhase::Exec`] — a successful executor attempt was running;
//! 2. [`CritPhase::Retry`] — only failed attempts were running (work that
//!    had to be redone);
//! 3. [`CritPhase::ColdStart`] — a container was cold-starting;
//! 4. [`CritPhase::TransferRemote`] / [`CritPhase::TransferLocal`] — data
//!    was moving through the remote store / worker-local memory;
//! 5. [`CritPhase::QueueWait`] — an instance was waiting for a warm
//!    container;
//! 6. instants covered by no work span are [`CritPhase::EngineDown`] when
//!    they fall inside an engine-outage window (derived from the
//!    `EngineCrashed`/`EngineRecovered` node events), else
//!    [`CritPhase::Control`] — engine processing, message latency,
//!    client gaps.
//!
//! Exec sitting at the top of the priority order gives the partition a
//! useful property: along any DAG path the successful attempts are
//! pairwise disjoint in time (dependencies order them), and every instant
//! one of them covers is classified Exec — so the chain's Exec total is at
//! least the realized execution sum of *every* DAG path, including the
//! static critical path. With deterministic execution times the observed
//! Exec total therefore bounds `dag.critical_path_exec()` from above,
//! which is exactly the comparison `repro critpath` prints.
//!
//! By construction the extracted segments are contiguous, causally
//! ordered, and sum to the root makespan *exactly* (nanosecond integers,
//! no float residue) — [`CriticalPath::validate`] checks all three and is
//! exercised on every chaos-sweep seed.

use std::collections::BTreeMap;

use faasflow_core::TraceEvent;
use faasflow_sim::{InvocationId, SimDuration, SimTime, WorkflowId};
use serde::{Deserialize, Serialize};

use crate::span::{SpanForest, SpanKind, SpanTree};

/// What the invocation was waiting on during one critical-path segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CritPhase {
    /// A successful executor attempt.
    Exec,
    /// A failed executor attempt (redone work).
    Retry,
    /// Container cold start.
    ColdStart,
    /// Data through the remote store.
    TransferRemote,
    /// Data through worker-local memory (FaaStore).
    TransferLocal,
    /// Waiting for a warm container.
    QueueWait,
    /// No work span covered the instant and an engine was down.
    EngineDown,
    /// No work span covered the instant: engine processing, message
    /// latency, scheduling gaps.
    Control,
}

impl CritPhase {
    /// All phases, in priority order (highest first).
    pub const ALL: [CritPhase; 8] = [
        CritPhase::Exec,
        CritPhase::Retry,
        CritPhase::ColdStart,
        CritPhase::TransferRemote,
        CritPhase::TransferLocal,
        CritPhase::QueueWait,
        CritPhase::EngineDown,
        CritPhase::Control,
    ];

    /// Overlap-resolution priority: when several work spans cover the same
    /// instant, the highest-priority one claims it.
    fn priority(self) -> u8 {
        match self {
            CritPhase::Exec => 7,
            CritPhase::Retry => 6,
            CritPhase::ColdStart => 5,
            CritPhase::TransferRemote => 4,
            CritPhase::TransferLocal => 3,
            CritPhase::QueueWait => 2,
            CritPhase::EngineDown => 1,
            CritPhase::Control => 0,
        }
    }

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            CritPhase::Exec => "exec",
            CritPhase::Retry => "retry",
            CritPhase::ColdStart => "cold",
            CritPhase::TransferRemote => "xfer-rem",
            CritPhase::TransferLocal => "xfer-loc",
            CritPhase::QueueWait => "queue",
            CritPhase::EngineDown => "down",
            CritPhase::Control => "control",
        }
    }
}

/// One maximal run of the critical path spent in a single phase on a
/// single span.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CritSegment {
    /// What gated completion here.
    pub phase: CritPhase,
    /// Segment open instant.
    pub start: SimTime,
    /// Segment close instant (`> start`).
    pub end: SimTime,
    /// Index into the tree's span vector of the gating work span
    /// (`None` for [`CritPhase::EngineDown`]/[`CritPhase::Control`]).
    pub span: Option<usize>,
}

impl CritSegment {
    /// Segment extent.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// The observed critical path of one invocation: a contiguous chain of
/// segments covering the root span's window exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CriticalPath {
    /// Workflow.
    pub workflow: WorkflowId,
    /// Invocation.
    pub invocation: InvocationId,
    /// Segments in chronological order; empty only for a zero-length root.
    pub segments: Vec<CritSegment>,
}

impl CriticalPath {
    /// Total chain duration (equals the invocation makespan).
    pub fn total(&self) -> SimDuration {
        self.segments
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.duration())
    }

    /// Chain time spent in one phase.
    pub fn phase_total(&self, phase: CritPhase) -> SimDuration {
        self.segments
            .iter()
            .filter(|s| s.phase == phase)
            .fold(SimDuration::ZERO, |acc, s| acc + s.duration())
    }

    /// Checks the chain against its source tree: segments are non-empty
    /// intervals, contiguous (each starts where the previous ended, the
    /// first at the root open, the last at the root close), causally
    /// ordered, each work segment lies inside the span it charges, and the
    /// total equals the root makespan exactly.
    pub fn validate(&self, tree: &SpanTree) -> Result<(), String> {
        let who = format!("{}/{}", self.workflow, self.invocation);
        let root = tree.root();
        if self.workflow != tree.workflow || self.invocation != tree.invocation {
            return Err(format!("{who}: chain does not belong to this tree"));
        }
        if root.duration() == SimDuration::ZERO {
            return if self.segments.is_empty() {
                Ok(())
            } else {
                Err(format!("{who}: zero-length root but non-empty chain"))
            };
        }
        if self.segments.is_empty() {
            return Err(format!("{who}: non-zero makespan but empty chain"));
        }
        let mut cursor = root.start;
        for (i, seg) in self.segments.iter().enumerate() {
            if seg.start != cursor {
                return Err(format!(
                    "{who}: segment {i} starts at {} but the chain is at {}",
                    seg.start, cursor
                ));
            }
            if seg.end <= seg.start {
                return Err(format!("{who}: segment {i} is empty or reversed"));
            }
            match seg.span {
                Some(idx) => {
                    let span = tree
                        .spans
                        .get(idx)
                        .ok_or_else(|| format!("{who}: segment {i} charges missing span {idx}"))?;
                    if seg.start < span.start || seg.end > span.end {
                        return Err(format!(
                            "{who}: segment {i} leaks outside span {idx} ({})",
                            span.label
                        ));
                    }
                }
                None => {
                    if !matches!(seg.phase, CritPhase::EngineDown | CritPhase::Control) {
                        return Err(format!(
                            "{who}: segment {i} has work phase {:?} but no span",
                            seg.phase
                        ));
                    }
                }
            }
            cursor = seg.end;
        }
        if cursor != root.end {
            return Err(format!(
                "{who}: chain ends at {} but the root closes at {}",
                cursor, root.end
            ));
        }
        // Contiguity from root.start to root.end implies the exact-sum
        // property, but state it directly — it is the headline invariant.
        if self.total() != root.duration() {
            return Err(format!(
                "{who}: chain duration {} != makespan {}",
                self.total(),
                root.duration()
            ));
        }
        Ok(())
    }
}

/// Maps a work span to the phase it would claim, `None` for spans that are
/// pure containers (root, per-function groupers).
fn work_phase(kind: SpanKind) -> Option<CritPhase> {
    match kind {
        SpanKind::Invocation | SpanKind::Function => None,
        SpanKind::Provision { cold } => Some(if cold {
            CritPhase::ColdStart
        } else {
            CritPhase::QueueWait
        }),
        SpanKind::Exec { failed, .. } => Some(if failed {
            CritPhase::Retry
        } else {
            CritPhase::Exec
        }),
        SpanKind::Transfer { remote, .. } => Some(if remote {
            CritPhase::TransferRemote
        } else {
            CritPhase::TransferLocal
        }),
    }
}

/// Extracts the observed critical path of one invocation. `downtime` is
/// the set of engine-outage windows (from [`downtime_windows`]); gaps in
/// work coverage that fall entirely inside one are charged to
/// [`CritPhase::EngineDown`] instead of [`CritPhase::Control`].
pub fn critical_path(tree: &SpanTree, downtime: &[(SimTime, SimTime)]) -> CriticalPath {
    let root = tree.root();
    let (rs, re) = (root.start, root.end);
    let mut path = CriticalPath {
        workflow: tree.workflow,
        invocation: tree.invocation,
        segments: Vec::new(),
    };
    if rs == re {
        return path;
    }

    // Work intervals clipped to the root window.
    struct Work {
        start: SimTime,
        end: SimTime,
        phase: CritPhase,
        span: usize,
    }
    let mut work: Vec<Work> = Vec::new();
    for (idx, span) in tree.spans.iter().enumerate() {
        let Some(phase) = work_phase(span.kind) else {
            continue;
        };
        let start = span.start.max(rs);
        let end = span.end.min(re);
        if start < end {
            work.push(Work {
                start,
                end,
                phase,
                span: idx,
            });
        }
    }

    // Elementary intervals: between two consecutive boundaries the set of
    // covering work spans (and downtime windows) is constant.
    let mut bounds: Vec<SimTime> = Vec::with_capacity(2 * work.len() + 2);
    bounds.push(rs);
    bounds.push(re);
    for w in &work {
        bounds.push(w.start);
        bounds.push(w.end);
    }
    for &(ds, de) in downtime {
        if ds > rs && ds < re {
            bounds.push(ds);
        }
        if de > rs && de < re {
            bounds.push(de);
        }
    }
    bounds.sort_unstable();
    bounds.dedup();

    for pair in bounds.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        // Highest priority wins; ties go to the latest-starting span (the
        // most recent dependency), then the lowest index (deterministic).
        let best = work
            .iter()
            .filter(|w| w.start <= a && w.end >= b)
            .max_by(|x, y| {
                (x.phase.priority(), x.start, std::cmp::Reverse(x.span)).cmp(&(
                    y.phase.priority(),
                    y.start,
                    std::cmp::Reverse(y.span),
                ))
            });
        let (phase, span) = match best {
            Some(w) => (w.phase, Some(w.span)),
            None => {
                let down = downtime.iter().any(|&(ds, de)| ds <= a && de >= b);
                (
                    if down {
                        CritPhase::EngineDown
                    } else {
                        CritPhase::Control
                    },
                    None,
                )
            }
        };
        match path.segments.last_mut() {
            Some(last) if last.phase == phase && last.span == span && last.end == a => {
                last.end = b;
            }
            _ => path.segments.push(CritSegment {
                phase,
                start: a,
                end: b,
                span,
            }),
        }
    }
    path
}

/// Engine-outage windows derived from the forest's node-scoped events:
/// each `EngineCrashed` opens a window for its engine, the matching
/// `EngineRecovered` closes it, and a window still open at the end of the
/// stream extends to `horizon`.
pub fn downtime_windows(node_events: &[TraceEvent], horizon: SimTime) -> Vec<(SimTime, SimTime)> {
    let mut open: BTreeMap<Option<u32>, SimTime> = BTreeMap::new();
    let mut windows = Vec::new();
    for event in node_events {
        match event {
            TraceEvent::EngineCrashed { worker, at } => {
                open.entry(worker.map(|w| w.index() as u32)).or_insert(*at);
            }
            TraceEvent::EngineRecovered { worker, at, .. } => {
                if let Some(since) = open.remove(&worker.map(|w| w.index() as u32)) {
                    windows.push((since, *at));
                }
            }
            _ => {}
        }
    }
    for (_, since) in open {
        if horizon > since {
            windows.push((since, horizon));
        }
    }
    windows.sort_unstable();
    windows
}

/// Extracts the critical path of every invocation in the forest, sharing
/// one cluster-wide set of engine-downtime windows.
pub fn extract(forest: &SpanForest) -> Vec<CriticalPath> {
    let horizon = forest
        .trees
        .iter()
        .map(|t| t.root().end)
        .max()
        .unwrap_or(SimTime::ZERO);
    let downtime = downtime_windows(&forest.node_events, horizon);
    forest
        .trees
        .iter()
        .map(|tree| critical_path(tree, &downtime))
        .collect()
}

/// Per-workflow critical-path phase totals, summed over invocations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CritPathBreakdown {
    /// Workflow.
    pub workflow: WorkflowId,
    /// Invocations folded in.
    pub invocations: u64,
    /// Total critical-path (= makespan) time, ms.
    pub total_ms: f64,
    /// Successful execution on the chain, ms.
    pub exec_ms: f64,
    /// Failed attempts on the chain, ms.
    pub retry_ms: f64,
    /// Cold starts on the chain, ms.
    pub cold_start_ms: f64,
    /// Remote-store transfers on the chain, ms.
    pub transfer_remote_ms: f64,
    /// Local-memory transfers on the chain, ms.
    pub transfer_local_ms: f64,
    /// Warm-container queueing on the chain, ms.
    pub queue_wait_ms: f64,
    /// Engine-outage gaps on the chain, ms.
    pub engine_down_ms: f64,
    /// Uncovered control gaps on the chain, ms.
    pub control_ms: f64,
}

impl CritPathBreakdown {
    fn new(workflow: WorkflowId) -> Self {
        CritPathBreakdown {
            workflow,
            invocations: 0,
            total_ms: 0.0,
            exec_ms: 0.0,
            retry_ms: 0.0,
            cold_start_ms: 0.0,
            transfer_remote_ms: 0.0,
            transfer_local_ms: 0.0,
            queue_wait_ms: 0.0,
            engine_down_ms: 0.0,
            control_ms: 0.0,
        }
    }

    /// Chain milliseconds in one phase.
    pub fn phase_ms(&self, phase: CritPhase) -> f64 {
        match phase {
            CritPhase::Exec => self.exec_ms,
            CritPhase::Retry => self.retry_ms,
            CritPhase::ColdStart => self.cold_start_ms,
            CritPhase::TransferRemote => self.transfer_remote_ms,
            CritPhase::TransferLocal => self.transfer_local_ms,
            CritPhase::QueueWait => self.queue_wait_ms,
            CritPhase::EngineDown => self.engine_down_ms,
            CritPhase::Control => self.control_ms,
        }
    }

    /// Fraction of the chain spent in one phase (0 when the chain is
    /// empty). Over all phases the shares sum to 1.
    pub fn share(&self, phase: CritPhase) -> f64 {
        if self.total_ms == 0.0 {
            0.0
        } else {
            self.phase_ms(phase) / self.total_ms
        }
    }

    /// Both transfer phases combined, ms.
    pub fn transfer_ms(&self) -> f64 {
        self.transfer_remote_ms + self.transfer_local_ms
    }
}

/// Folds extracted chains into one [`CritPathBreakdown`] per workflow,
/// ordered by workflow id.
pub fn aggregate(paths: &[CriticalPath]) -> Vec<CritPathBreakdown> {
    let mut by_wf: BTreeMap<WorkflowId, CritPathBreakdown> = BTreeMap::new();
    for path in paths {
        let row = by_wf
            .entry(path.workflow)
            .or_insert_with(|| CritPathBreakdown::new(path.workflow));
        row.invocations += 1;
        row.total_ms += path.total().as_millis_f64();
        row.exec_ms += path.phase_total(CritPhase::Exec).as_millis_f64();
        row.retry_ms += path.phase_total(CritPhase::Retry).as_millis_f64();
        row.cold_start_ms += path.phase_total(CritPhase::ColdStart).as_millis_f64();
        row.transfer_remote_ms += path.phase_total(CritPhase::TransferRemote).as_millis_f64();
        row.transfer_local_ms += path.phase_total(CritPhase::TransferLocal).as_millis_f64();
        row.queue_wait_ms += path.phase_total(CritPhase::QueueWait).as_millis_f64();
        row.engine_down_ms += path.phase_total(CritPhase::EngineDown).as_millis_f64();
        row.control_ms += path.phase_total(CritPhase::Control).as_millis_f64();
    }
    by_wf.into_values().collect()
}

/// Renders per-workflow critical-path shares as a MasterSP-vs-WorkerSP
/// table: mean chain length plus the share of each phase.
pub fn render_critpath_table(
    sections: &[(String, Vec<CritPathBreakdown>)],
    mut names: impl FnMut(WorkflowId) -> String,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:<10} {:>5} {:>9} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "mode",
        "workflow",
        "inv",
        "cp-ms",
        "exec%",
        "retry%",
        "cold%",
        "xfer%",
        "queue%",
        "down%",
        "ctrl%"
    );
    let _ = writeln!(out, "{}", "-".repeat(85));
    for (label, rows) in sections {
        for row in rows {
            let n = row.invocations.max(1) as f64;
            let pct = |ms: f64| {
                if row.total_ms == 0.0 {
                    0.0
                } else {
                    100.0 * ms / row.total_ms
                }
            };
            let _ = writeln!(
                out,
                "{:<10} {:<10} {:>5} {:>9.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1}",
                label,
                names(row.workflow),
                row.invocations,
                row.total_ms / n,
                pct(row.exec_ms),
                pct(row.retry_ms),
                pct(row.cold_start_ms),
                pct(row.transfer_ms()),
                pct(row.queue_wait_ms),
                pct(row.engine_down_ms),
                pct(row.control_ms),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{build_forest, Span};
    use faasflow_sim::NodeId;

    fn ms(v: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(v)
    }

    fn span(kind: SpanKind, start: u64, end: u64, parent: Option<usize>) -> Span {
        Span {
            kind,
            label: format!("{kind:?}"),
            node: Some(NodeId::new(1)),
            function: None,
            instance: None,
            start: ms(start),
            end: ms(end),
            parent,
            truncated: false,
        }
    }

    fn tree(spans: Vec<Span>) -> SpanTree {
        SpanTree {
            workflow: WorkflowId::new(0),
            invocation: InvocationId::new(0),
            spans,
            annotations: Vec::new(),
            completed: true,
            timed_out: false,
            dead_lettered: false,
            shed: false,
        }
    }

    #[test]
    fn sequential_chain_partitions_exactly() {
        let t = tree(vec![
            span(SpanKind::Invocation, 0, 100, None),
            span(SpanKind::Provision { cold: true }, 0, 20, Some(0)),
            span(
                SpanKind::Exec {
                    attempt: 0,
                    failed: false,
                },
                20,
                90,
                Some(0),
            ),
        ]);
        let p = critical_path(&t, &[]);
        p.validate(&t).unwrap();
        assert_eq!(p.segments.len(), 3);
        assert_eq!(p.segments[0].phase, CritPhase::ColdStart);
        assert_eq!(p.segments[1].phase, CritPhase::Exec);
        assert_eq!(p.segments[2].phase, CritPhase::Control);
        assert_eq!(p.total(), SimDuration::from_millis(100));
        assert_eq!(p.phase_total(CritPhase::Exec), SimDuration::from_millis(70));
    }

    #[test]
    fn exec_outranks_overlapping_transfer() {
        let t = tree(vec![
            span(SpanKind::Invocation, 0, 60, None),
            span(
                SpanKind::Transfer {
                    read: true,
                    remote: true,
                    bytes: 1,
                },
                0,
                60,
                Some(0),
            ),
            span(
                SpanKind::Exec {
                    attempt: 0,
                    failed: false,
                },
                10,
                50,
                Some(0),
            ),
        ]);
        let p = critical_path(&t, &[]);
        p.validate(&t).unwrap();
        let phases: Vec<CritPhase> = p.segments.iter().map(|s| s.phase).collect();
        assert_eq!(
            phases,
            vec![
                CritPhase::TransferRemote,
                CritPhase::Exec,
                CritPhase::TransferRemote
            ]
        );
        assert_eq!(p.phase_total(CritPhase::Exec), SimDuration::from_millis(40));
    }

    #[test]
    fn equal_priority_ties_go_to_latest_start() {
        let t = tree(vec![
            span(SpanKind::Invocation, 0, 50, None),
            span(
                SpanKind::Exec {
                    attempt: 0,
                    failed: false,
                },
                0,
                50,
                Some(0),
            ),
            span(
                SpanKind::Exec {
                    attempt: 0,
                    failed: false,
                },
                20,
                40,
                Some(0),
            ),
        ]);
        let p = critical_path(&t, &[]);
        p.validate(&t).unwrap();
        // Latest-starting exec claims [20, 40): three segments, all Exec,
        // charged to span 1 / span 2 / span 1.
        assert_eq!(
            p.segments.iter().map(|s| s.span).collect::<Vec<_>>(),
            vec![Some(1), Some(2), Some(1)]
        );
        assert!(p.segments.iter().all(|s| s.phase == CritPhase::Exec));
    }

    #[test]
    fn uncovered_gap_inside_outage_is_engine_down() {
        let t = tree(vec![
            span(SpanKind::Invocation, 0, 100, None),
            span(
                SpanKind::Exec {
                    attempt: 0,
                    failed: false,
                },
                0,
                30,
                Some(0),
            ),
            span(
                SpanKind::Exec {
                    attempt: 0,
                    failed: false,
                },
                80,
                100,
                Some(0),
            ),
        ]);
        let p = critical_path(&t, &[(ms(40), ms(70))]);
        p.validate(&t).unwrap();
        let phases: Vec<CritPhase> = p.segments.iter().map(|s| s.phase).collect();
        assert_eq!(
            phases,
            vec![
                CritPhase::Exec,
                CritPhase::Control,
                CritPhase::EngineDown,
                CritPhase::Control,
                CritPhase::Exec
            ]
        );
        assert_eq!(
            p.phase_total(CritPhase::EngineDown),
            SimDuration::from_millis(30)
        );
    }

    #[test]
    fn zero_length_root_yields_empty_chain() {
        let t = tree(vec![span(SpanKind::Invocation, 5, 5, None)]);
        let p = critical_path(&t, &[]);
        assert!(p.segments.is_empty());
        p.validate(&t).unwrap();
    }

    #[test]
    fn unclosed_crash_extends_to_horizon() {
        let events = vec![TraceEvent::EngineCrashed {
            worker: None,
            at: ms(10),
        }];
        let windows = downtime_windows(&events, ms(50));
        assert_eq!(windows, vec![(ms(10), ms(50))]);
        // Crash and recovery pair up per engine.
        let events = vec![
            TraceEvent::EngineCrashed {
                worker: Some(NodeId::new(1)),
                at: ms(5),
            },
            TraceEvent::EngineCrashed {
                worker: None,
                at: ms(8),
            },
            TraceEvent::EngineRecovered {
                worker: Some(NodeId::new(1)),
                at: ms(20),
                replayed: 0,
            },
            TraceEvent::EngineRecovered {
                worker: None,
                at: ms(30),
                replayed: 2,
            },
        ];
        let windows = downtime_windows(&events, ms(50));
        assert_eq!(windows, vec![(ms(5), ms(20)), (ms(8), ms(30))]);
    }

    #[test]
    fn aggregate_shares_sum_to_one() {
        let t = tree(vec![
            span(SpanKind::Invocation, 0, 100, None),
            span(SpanKind::Provision { cold: false }, 0, 10, Some(0)),
            span(
                SpanKind::Exec {
                    attempt: 0,
                    failed: true,
                },
                10,
                30,
                Some(0),
            ),
            span(
                SpanKind::Exec {
                    attempt: 1,
                    failed: false,
                },
                30,
                90,
                Some(0),
            ),
            span(
                SpanKind::Transfer {
                    read: false,
                    remote: false,
                    bytes: 1,
                },
                90,
                95,
                Some(0),
            ),
        ]);
        let p = critical_path(&t, &[]);
        p.validate(&t).unwrap();
        let rows = aggregate(std::slice::from_ref(&p));
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.invocations, 1);
        let share_sum: f64 = CritPhase::ALL.iter().map(|&ph| row.share(ph)).sum();
        assert!((share_sum - 1.0).abs() < 1e-9, "{share_sum}");
        assert!(row.queue_wait_ms > 0.0);
        assert!(row.retry_ms > 0.0);
        assert!(row.control_ms > 0.0);
    }

    /// End-to-end: a real (deterministic) cluster run — every chain
    /// validates against its tree and the observed Exec total dominates
    /// the static `critical_path_exec()` bound.
    #[test]
    fn real_run_chains_validate_and_bound_static_exec() {
        use faasflow_core::{ClientConfig, Cluster, ClusterConfig};
        use faasflow_wdl::{FunctionProfile, Step, Workflow};

        let mut cluster = Cluster::new(ClusterConfig {
            trace: true,
            ..ClusterConfig::default()
        })
        .unwrap();
        // Zero execution variation: with deterministic exec times the
        // observed Exec total must dominate the static bound exactly.
        let det =
            |mean: u64, bytes: u64| FunctionProfile::with_millis(mean, bytes).exec_variation(0.0);
        let wf = Workflow::steps(
            "crit",
            Step::sequence(vec![
                Step::task("a", det(40, 2 << 20)),
                Step::parallel(vec![
                    Step::task("b", det(30, 1 << 20)),
                    Step::task("c", det(55, 1 << 20)),
                ]),
                Step::task("d", det(20, 0)),
            ]),
        );
        let id = cluster
            .register(&wf, ClientConfig::ClosedLoop { invocations: 4 })
            .unwrap();
        cluster.run_until_idle();
        let static_exec = cluster.critical_exec(id).unwrap();
        let forest = build_forest(cluster.trace());
        forest.validate().unwrap();
        let paths = extract(&forest);
        assert_eq!(paths.len(), 4);
        for (tree, path) in forest.trees.iter().zip(&paths) {
            path.validate(tree).unwrap();
            assert!(
                path.phase_total(CritPhase::Exec) >= static_exec,
                "observed exec {} < static bound {}",
                path.phase_total(CritPhase::Exec),
                static_exec
            );
        }
    }
}
