//! Span-tree well-formedness under adversarial schedules: chaos fault
//! injection, open-loop overload, and exec-failure retries all must
//! produce structurally valid forests — every started span closes, parents
//! open before children, per-instance attempts never overlap.

use faasflow_core::{
    ClientConfig, Cluster, ClusterConfig, FaultPlan, NetFault, NodeCrash, ScheduleMode,
    StorageFault, StorageFaultKind,
};
use faasflow_obs::{build_forest, SpanForest};
use faasflow_sim::SimDuration;
use faasflow_workloads::Benchmark;

fn chaos_plan() -> FaultPlan {
    FaultPlan {
        node_crashes: vec![NodeCrash {
            worker: 0,
            at: SimDuration::from_secs(3),
            restart_after: Some(SimDuration::from_secs(4)),
        }],
        storage_faults: vec![StorageFault {
            at: SimDuration::from_secs(5),
            duration: SimDuration::from_secs(6),
            kind: StorageFaultKind::Brownout { slowdown: 6.0 },
        }],
        net_faults: vec![NetFault {
            worker: 1,
            at: SimDuration::from_secs(2),
            duration: SimDuration::from_secs(6),
            loss: 0.3,
            latency_factor: 2.0,
            bandwidth_factor: 0.5,
        }],
        ..FaultPlan::default()
    }
}

fn forest_of(config: ClusterConfig, client: ClientConfig) -> SpanForest {
    let mut cluster = Cluster::new(config).expect("valid config");
    cluster
        .register(&Benchmark::WordCount.workflow(), client)
        .expect("registers");
    cluster.run_until_idle();
    build_forest(&cluster.take_trace())
}

#[test]
fn chaos_runs_build_valid_forests_in_both_modes() {
    for mode in [ScheduleMode::WorkerSp, ScheduleMode::MasterSp] {
        let forest = forest_of(
            ClusterConfig {
                mode,
                faastore: mode == ScheduleMode::WorkerSp,
                trace: true,
                fault: chaos_plan(),
                ..ClusterConfig::default()
            },
            ClientConfig::ClosedLoop { invocations: 30 },
        );
        assert!(!forest.trees.is_empty());
        forest
            .validate()
            .unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        // The plan injects one crash; the node-scoped record must surface it.
        assert!(
            forest
                .node_events
                .iter()
                .any(|e| matches!(e, faasflow_core::TraceEvent::WorkerCrashed { .. })),
            "{mode:?}: crash missing from node-scoped events"
        );
    }
}

#[test]
fn open_loop_overload_builds_a_valid_forest() {
    let forest = forest_of(
        ClusterConfig {
            mode: ScheduleMode::WorkerSp,
            faastore: true,
            trace: true,
            ..ClusterConfig::default()
        },
        ClientConfig::OpenLoop {
            per_minute: 240.0,
            invocations: 40,
        },
    );
    assert_eq!(forest.trees.len(), 40);
    forest.validate().expect("open-loop forest well-formed");
    // Overload means queueing, which must show as concurrent invocations:
    // at least two roots overlap in time.
    let overlapping = forest
        .trees
        .windows(2)
        .any(|pair| pair[1].root().start < pair[0].root().end);
    assert!(overlapping, "open loop at 4/s should overlap invocations");
}

#[test]
fn exec_retries_produce_non_overlapping_attempts() {
    let forest = forest_of(
        ClusterConfig {
            mode: ScheduleMode::WorkerSp,
            faastore: true,
            trace: true,
            exec_failure_rate: 0.2,
            max_exec_retries: 3,
            ..ClusterConfig::default()
        },
        ClientConfig::ClosedLoop { invocations: 25 },
    );
    forest.validate().expect("retry forest well-formed");
    let failed_attempts: usize = forest
        .trees
        .iter()
        .flat_map(|t| &t.spans)
        .filter(|s| matches!(s.kind, faasflow_obs::SpanKind::Exec { failed: true, .. }))
        .count();
    assert!(
        failed_attempts > 0,
        "20% failure rate over 25 invocations must fail at least once"
    );
}

#[test]
fn every_completed_tree_has_closed_untruncated_spans() {
    let forest = forest_of(
        ClusterConfig {
            mode: ScheduleMode::WorkerSp,
            faastore: true,
            trace: true,
            ..ClusterConfig::default()
        },
        ClientConfig::ClosedLoop { invocations: 10 },
    );
    forest.validate().expect("well-formed");
    for tree in &forest.trees {
        assert!(tree.completed, "closed-loop fault-free run completes all");
        for span in &tree.spans {
            assert!(!span.truncated, "no truncation without faults");
            assert!(span.end >= span.start);
        }
    }
}
