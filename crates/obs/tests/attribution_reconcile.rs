//! The span-derived phase breakdown must reconcile with the
//! independently-accumulated RunReport histograms: per workflow,
//! span-tree end-to-end sums match `e2e.sum` and transfer span sums match
//! `transfer_total.sum` (both built from the same nanosecond instants, so
//! only float summation order differs).

use faasflow_core::{ClientConfig, Cluster, ClusterConfig, ScheduleMode};
use faasflow_obs::attribution::attribute;
use faasflow_obs::build_forest;
use faasflow_workloads::Benchmark;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1.0)
}

#[test]
fn breakdown_reconciles_with_report_histograms() {
    for (mode, faastore) in [
        (ScheduleMode::WorkerSp, true),
        (ScheduleMode::MasterSp, false),
    ] {
        let mut cluster = Cluster::new(ClusterConfig {
            mode,
            faastore,
            trace: true,
            ..ClusterConfig::default()
        })
        .expect("valid config");
        for bench in [Benchmark::WordCount, Benchmark::Genome] {
            cluster
                .register(
                    &bench.workflow(),
                    ClientConfig::ClosedLoop { invocations: 8 },
                )
                .expect("registers");
        }
        cluster.run_until_idle();
        let report = cluster.report();
        assert_eq!(report.trace_dropped, 0, "no drops in this small run");
        let forest = build_forest(&cluster.take_trace());
        forest.validate().expect("well-formed");
        let rows = attribute(&forest);
        assert_eq!(rows.len(), 2);
        for row in rows {
            let name = cluster.workflow_name(row.workflow).expect("registered");
            let wf = report.workflow(name);
            assert_eq!(wf.timeouts, 0, "{mode:?}/{name}: clean run expected");
            assert_eq!(row.invocations, wf.completed);
            assert!(
                close(row.e2e_ms, wf.e2e.sum),
                "{mode:?}/{name}: span e2e {} vs report {}",
                row.e2e_ms,
                wf.e2e.sum
            );
            assert!(
                close(row.transfer_ms(), wf.transfer_total.sum),
                "{mode:?}/{name}: span transfer {} vs report {}",
                row.transfer_ms(),
                wf.transfer_total.sum
            );
            // Sanity on the residue: control time is non-negative and,
            // with exec on the critical path, strictly below e2e.
            assert!(row.control_ms >= 0.0);
            assert!(row.control_ms < row.e2e_ms);
        }
    }
}
