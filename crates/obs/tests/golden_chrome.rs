//! Golden Chrome-trace export: a small deterministic run must serialize
//! byte-identically run over run. Regenerate with
//! `GOLDEN_REGEN=1 cargo test -p faasflow-obs --test golden_chrome`.

use faasflow_core::{ClientConfig, Cluster, ClusterConfig};
use faasflow_obs::{build_forest, chrome_trace, parse_json};
use faasflow_sim::SimDuration;
use faasflow_wdl::{FunctionProfile, Step, Workflow};
use serde::Value;

fn small_trace() -> String {
    let mut cluster = Cluster::new(ClusterConfig {
        trace: true,
        sample_every: Some(SimDuration::from_millis(50)),
        ..ClusterConfig::default()
    })
    .expect("valid config");
    let wf = Workflow::steps(
        "golden",
        Step::sequence(vec![
            Step::task("extract", FunctionProfile::with_millis(40, 4 << 20)),
            Step::foreach("map", FunctionProfile::with_millis(30, 2 << 20), 2),
            Step::task("load", FunctionProfile::with_millis(20, 0)),
        ]),
    );
    cluster
        .register(&wf, ClientConfig::ClosedLoop { invocations: 2 })
        .expect("registers");
    cluster.run_until_idle();
    let report = cluster.report();
    let forest = build_forest(&cluster.take_trace());
    forest.validate().expect("well-formed");
    chrome_trace(&forest, report.resources.as_ref())
}

#[test]
fn chrome_export_matches_the_committed_golden() {
    let rendered = small_trace();
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/chrome_small.json");
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("has parent")).expect("mkdir golden");
        std::fs::write(&path, rendered + "\n").expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden chrome_small.json ({e}); run with GOLDEN_REGEN=1")
    });
    assert_eq!(
        rendered + "\n",
        golden,
        "Chrome trace export diverged from the committed golden"
    );
}

#[test]
fn chrome_export_is_wellformed_trace_json() {
    let text = small_trace();
    let value = parse_json(&text).expect("export parses as JSON");
    let Value::Map(fields) = value else {
        panic!("top level must be an object")
    };
    let events = fields
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .expect("traceEvents present");
    let Value::Seq(events) = events else {
        panic!("traceEvents must be an array")
    };
    assert!(!events.is_empty());
    // Every event is an object with a phase; B/E pairs balance.
    let mut begins = 0u32;
    let mut ends = 0u32;
    for ev in events {
        let Value::Map(fields) = ev else {
            panic!("trace event must be an object")
        };
        let phase = fields
            .iter()
            .find(|(k, _)| k == "ph")
            .and_then(|(_, v)| match v {
                Value::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .expect("event has a phase");
        match phase {
            "B" => begins += 1,
            "E" => ends += 1,
            "M" | "i" | "C" => {}
            other => panic!("unexpected phase {other}"),
        }
    }
    assert_eq!(begins, ends, "unbalanced B/E pairs");
    assert!(begins > 0);
}
