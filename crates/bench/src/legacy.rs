//! Pre-overhaul hot-path implementations, preserved in miniature.
//!
//! The `repro perf` scenario measures its baselines *live* against these
//! replicas instead of comparing to numbers recorded on some other
//! machine (or the same machine under different load): both sides of
//! every before/after row in `BENCH_kernel.json` run back to back in the
//! same process. The code is lifted from the tree before the hot-path
//! overhaul — a `BinaryHeap` with tombstone-set lazy cancellation for the
//! event queue, and a full progressive-filling recompute on every flow
//! mutation for the network — trimmed to the operations the benchmarks
//! exercise.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};

use faasflow_net::NicSpec;
use faasflow_sim::{NodeId, SimDuration, SimTime};

// ====================================================================
// Event queue: BinaryHeap + live/cancelled HashSets, lazy deletion
// ====================================================================

/// Cancellation token of the legacy queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LegacyEventId(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

// BinaryHeap is a max-heap; reverse the ordering to pop the earliest.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

/// The pre-overhaul event queue: two hash-set touches per event, cancelled
/// entries discarded only when they surface at the heap root.
pub struct LegacyEventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    live: HashSet<u64>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for LegacyEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> LegacyEventQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        LegacyEventQueue {
            heap: BinaryHeap::new(),
            live: HashSet::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Schedules `event` at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) -> LegacyEventId {
        assert!(time >= self.now, "cannot schedule into the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.insert(seq);
        self.heap.push(Entry { time, seq, event });
        LegacyEventId(seq)
    }

    /// Tombstones a pending event.
    pub fn cancel(&mut self, id: LegacyEventId) -> bool {
        if self.live.remove(&id.0) {
            self.cancelled.insert(id.0);
            true
        } else {
            false
        }
    }

    /// Pops the earliest live event, discarding tombstones on the way.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.live.remove(&entry.seq);
            self.now = entry.time;
            return Some((entry.time, entry.event));
        }
        None
    }
}

// ====================================================================
// Flow network: global progressive filling on every mutation
// ====================================================================

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Resource {
    Up(usize),
    Down(usize),
    Loop(usize),
}

fn resource_key(r: Resource) -> (u8, usize) {
    match r {
        Resource::Up(i) => (0, i),
        Resource::Down(i) => (1, i),
        Resource::Loop(i) => (2, i),
    }
}

/// One transfer in the legacy network.
pub struct LegacyFlow<T> {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Total size in bytes.
    pub bytes: u64,
    /// Caller's payload.
    pub tag: T,
    remaining: f64,
    rate: f64,
}

/// The pre-overhaul network: hash-map flow table, and a from-scratch
/// max-min fair recompute (hash-keyed resource maps, id re-sort) after
/// every single arrival, departure, and completion batch.
pub struct LegacyFlowNet<T> {
    nics: Vec<NicSpec>,
    flows: HashMap<u64, LegacyFlow<T>>,
    next_id: u64,
    updated: SimTime,
}

impl<T> LegacyFlowNet<T> {
    /// A network over `nics`.
    pub fn new(nics: Vec<NicSpec>) -> Self {
        LegacyFlowNet {
            nics,
            flows: HashMap::new(),
            next_id: 0,
            updated: SimTime::ZERO,
        }
    }

    /// Active flow count.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Starts a transfer; rates recompute globally before returning.
    pub fn start_flow(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        tag: T,
        now: SimTime,
    ) -> u64 {
        self.advance(now);
        let id = self.next_id;
        self.next_id += 1;
        self.flows.insert(
            id,
            LegacyFlow {
                src,
                dst,
                bytes,
                tag,
                remaining: bytes as f64,
                rate: 0.0,
            },
        );
        self.recompute_rates();
        id
    }

    /// Cancels an active flow; rates recompute globally.
    pub fn cancel_flow(&mut self, id: u64, now: SimTime) -> Option<T> {
        self.advance(now);
        let flow = self.flows.remove(&id)?;
        self.recompute_rates();
        Some(flow.tag)
    }

    /// Earliest completion instant among active flows.
    pub fn next_completion(&self) -> Option<SimTime> {
        self.flows
            .values()
            .filter(|f| f.rate > 0.0 || f.remaining <= 0.0)
            .map(|f| {
                if f.remaining <= 0.0 {
                    self.updated
                } else {
                    let secs = f.remaining / f.rate;
                    let nanos = (secs * 1e9).ceil() as u64 + 1;
                    self.updated + SimDuration::from_nanos(nanos)
                }
            })
            .min()
    }

    /// Advances to `now` and removes completed flows, id-sorted.
    pub fn take_completed(&mut self, now: SimTime) -> Vec<(u64, LegacyFlow<T>)> {
        self.advance(now);
        const EPS: f64 = 1e-6;
        let mut done: Vec<u64> = self
            .flows
            .iter()
            .filter(|(_, f)| f.remaining <= EPS)
            .map(|(&id, _)| id)
            .collect();
        done.sort_unstable();
        let mut out = Vec::with_capacity(done.len());
        for id in done {
            let flow = self.flows.remove(&id).expect("flow id collected above");
            out.push((id, flow));
        }
        if !out.is_empty() {
            self.recompute_rates();
        }
        out
    }

    fn advance(&mut self, now: SimTime) {
        assert!(now >= self.updated, "time moved backwards");
        let dt = (now - self.updated).as_secs_f64();
        if dt > 0.0 {
            for flow in self.flows.values_mut() {
                flow.remaining = (flow.remaining - flow.rate * dt).max(0.0);
            }
        }
        self.updated = now;
    }

    /// Progressive filling over *all* flows and resources, from scratch.
    fn recompute_rates(&mut self) {
        if self.flows.is_empty() {
            return;
        }
        let mut ids: Vec<u64> = self.flows.keys().copied().collect();
        ids.sort_unstable();

        let mut cap: HashMap<Resource, f64> = HashMap::new();
        let mut members: HashMap<Resource, Vec<usize>> = HashMap::new();
        let mut flow_resources: Vec<[Resource; 2]> = Vec::with_capacity(ids.len());
        for (idx, id) in ids.iter().enumerate() {
            let f = &self.flows[id];
            let (r1, r2) = if f.src == f.dst {
                let r = Resource::Loop(f.src.index());
                (r, r)
            } else {
                (Resource::Up(f.src.index()), Resource::Down(f.dst.index()))
            };
            for r in [r1, r2] {
                let capacity = match r {
                    Resource::Up(i) => self.nics[i].uplink,
                    Resource::Down(i) => self.nics[i].downlink,
                    Resource::Loop(i) => self.nics[i].loopback,
                };
                cap.entry(r).or_insert(capacity);
                let m = members.entry(r).or_default();
                if m.last() != Some(&idx) {
                    m.push(idx);
                }
            }
            flow_resources.push([r1, r2]);
        }

        let n = ids.len();
        let mut rate = vec![0.0_f64; n];
        let mut fixed = vec![false; n];
        let mut unfixed_count: HashMap<Resource, usize> =
            members.iter().map(|(&r, v)| (r, v.len())).collect();
        let mut remaining_cap = cap.clone();
        let mut fixed_total = 0usize;

        while fixed_total < n {
            let mut best: Option<(f64, Resource)> = None;
            for (&r, &count) in &unfixed_count {
                if count == 0 {
                    continue;
                }
                let share = remaining_cap[&r].max(0.0) / count as f64;
                let better = match best {
                    None => true,
                    Some((s, br)) => {
                        share < s - 1e-12
                            || (share <= s + 1e-12 && resource_key(r) < resource_key(br))
                    }
                };
                if better {
                    best = Some((share, r));
                }
            }
            let Some((share, bottleneck)) = best else {
                break;
            };
            let flows_on: Vec<usize> = members[&bottleneck]
                .iter()
                .copied()
                .filter(|&i| !fixed[i])
                .collect();
            for i in flows_on {
                rate[i] = share;
                fixed[i] = true;
                fixed_total += 1;
                for r in flow_resources[i] {
                    *remaining_cap.get_mut(&r).expect("resource registered") -= share;
                    *unfixed_count.get_mut(&r).expect("resource registered") -= 1;
                    if flow_resources[i][0] == flow_resources[i][1] {
                        break;
                    }
                }
            }
        }

        for (idx, id) in ids.iter().enumerate() {
            self.flows.get_mut(id).expect("listed above").rate = rate[idx].max(0.0);
        }
    }
}
