//! # faasflow-bench
//!
//! The benchmark harness of the FaaSFlow reproduction. The `repro` binary
//! regenerates every table and figure of the paper's evaluation (§5); this
//! library holds the shared experiment plumbing:
//!
//! * [`run_one`] — build a cluster, register one workflow, warm it up,
//!   measure, and return the steady-state report.
//! * [`run_colocated`] — all eight benchmarks co-running in one cluster
//!   (§5.5).
//! * [`parallel_map`] — fan independent simulation cells (bandwidth ×
//!   rate grids) across OS threads; each cell is its own deterministic
//!   simulation, so parallelism cannot perturb results.
//! * formatting helpers for the paper-style tables the binary prints.

use faasflow_core::{ClientConfig, Cluster, ClusterConfig, RunReport, WorkflowReport};
use faasflow_wdl::Workflow;
use faasflow_workloads::Benchmark;

pub mod legacy;

/// How one experiment cell drives its workflow.
#[derive(Debug, Clone, Copy)]
pub struct Drive {
    /// Warm-up invocations excluded from the statistics (closed loop).
    pub warmup: u32,
    /// Measured invocations.
    pub measure: u32,
    /// `Some(rate)` switches the measured phase to an open loop at
    /// `rate` invocations/minute (the §5.4 methodology); `None` stays
    /// closed-loop.
    pub open_loop_per_min: Option<f64>,
}

impl Drive {
    /// Closed-loop: `warmup` unmeasured + `measure` measured invocations.
    pub fn closed(warmup: u32, measure: u32) -> Self {
        Drive {
            warmup,
            measure,
            open_loop_per_min: None,
        }
    }

    /// Open-loop at `per_min` invocations/minute after a closed warm-up.
    pub fn open(warmup: u32, measure: u32, per_min: f64) -> Self {
        Drive {
            warmup,
            measure,
            open_loop_per_min: Some(per_min),
        }
    }
}

/// Runs one workflow through one cluster configuration and returns its
/// steady-state report (warm-up excluded) plus the whole-cluster report.
///
/// # Panics
///
/// Panics if the configuration or workflow is invalid — experiment cells
/// are fixed inputs, so failing loudly is correct.
pub fn run_one(
    config: ClusterConfig,
    workflow: &Workflow,
    drive: Drive,
) -> (WorkflowReport, RunReport) {
    let mut cluster = Cluster::new(config).expect("valid experiment configuration");
    let id = cluster
        .register(
            workflow,
            ClientConfig::ClosedLoop {
                invocations: drive.warmup.max(1),
            },
        )
        .expect("valid workflow");
    cluster.run_until_idle();
    cluster.reset_metrics();
    match drive.open_loop_per_min {
        None => cluster.extend_client(id, drive.measure),
        Some(per_min) => cluster.switch_to_open_loop(id, per_min, drive.measure),
    }
    cluster.run_until_idle();
    let report = cluster.report();
    let wf_report = report.workflow(&workflow.name).clone();
    (wf_report, report)
}

/// Runs all eight benchmarks co-located in one cluster (§5.5), each with
/// its own closed-loop client, and returns the full report.
pub fn run_colocated(config: ClusterConfig, warmup: u32, measure: u32) -> RunReport {
    let (report, _) = run_colocated_with_distribution(config, warmup, measure);
    report
}

/// Like [`run_colocated`], also returning each benchmark's placement
/// distribution (Figure 15).
pub fn run_colocated_with_distribution(
    config: ClusterConfig,
    warmup: u32,
    measure: u32,
) -> (
    RunReport,
    Vec<(Benchmark, Vec<faasflow_core::DistributionRow>)>,
) {
    let mut cluster = Cluster::new(config).expect("valid experiment configuration");
    let mut ids = Vec::new();
    for b in Benchmark::ALL {
        let id = cluster
            .register(
                &b.workflow(),
                ClientConfig::ClosedLoop {
                    invocations: warmup.max(1),
                },
            )
            .expect("benchmarks are valid");
        ids.push((b, id));
    }
    cluster.run_until_idle();
    cluster.reset_metrics();
    for &(_, id) in &ids {
        cluster.extend_client(id, measure);
    }
    cluster.run_until_idle();
    let dist = ids
        .iter()
        .map(|&(b, id)| (b, cluster.distribution(id)))
        .collect();
    (cluster.report(), dist)
}

/// Maps `f` over `items` on up to `threads` OS threads, preserving order.
/// Each item is an independent simulation cell, so results are identical
/// to a sequential run regardless of thread count.
///
/// Work distribution is a lock-free atomic cursor: each worker
/// fetch-adds the next index to claim a cell, so there is no mutex to
/// contend on (or poison) between cells, and every result lands in its
/// input slot directly.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};

    assert!(threads > 0, "at least one thread required");
    let n = items.len();
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    // Each cell sits in its own slot; a worker claims the next index from
    // the cursor, then takes the cell. The per-slot lock is touched by
    // exactly one thread (the claimant), so it never contends — the only
    // shared write is the fetch-add.
    let input: Vec<std::sync::Mutex<Option<T>>> = items
        .into_iter()
        .map(|item| std::sync::Mutex::new(Some(item)))
        .collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let (input, cursor, f) = (&input, &cursor, &f);
        let handles: Vec<_> = (0..threads.min(n.max(1)))
            .map(|_| {
                scope.spawn(move || {
                    let mut results = Vec::new();
                    loop {
                        // Relaxed suffices: each index is claimed exactly
                        // once and the slot lock orders the item handoff.
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        if idx >= n {
                            break;
                        }
                        let item = input[idx]
                            .lock()
                            .expect("input slot poisoned")
                            .take()
                            .expect("each index claimed once");
                        results.push((idx, f(item)));
                    }
                    results
                })
            })
            .collect();
        for handle in handles {
            for (idx, r) in handle.join().expect("worker thread panicked") {
                slots[idx] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every cell computed"))
        .collect()
}

/// Formats a byte count as mebibytes with one decimal.
pub fn mb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / 1048576.0)
}

/// Formats milliseconds as seconds with two decimals.
pub fn secs(ms: f64) -> String {
    format!("{:.2}", ms / 1000.0)
}

/// Prints a separator line sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect(), 8, |x: i32| x * x);
        let expect: Vec<i32> = (0..100).map(|x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn parallel_map_single_thread_matches() {
        let a = parallel_map(vec![1, 2, 3], 1, |x: i32| x + 1);
        let b = parallel_map(vec![1, 2, 3], 3, |x: i32| x + 1);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_map_thread_count_is_unobservable() {
        // A cell whose value depends on its input alone; any cross-thread
        // interference or index mix-up changes the output.
        let cell = |x: u64| x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
        let items: Vec<u64> = (0..257).collect();
        let one = parallel_map(items.clone(), 1, cell);
        let four = parallel_map(items.clone(), 4, cell);
        let eight = parallel_map(items, 8, cell);
        assert_eq!(one, four);
        assert_eq!(one, eight);
    }

    #[test]
    fn parallel_map_more_threads_than_items() {
        let out = parallel_map(vec![7, 11], 8, |x: i32| x * 2);
        assert_eq!(out, vec![14, 22]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(mb(1048576), "1.0");
        assert_eq!(secs(2500.0), "2.50");
    }
}
