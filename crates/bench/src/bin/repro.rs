//! `repro` — regenerates every table and figure of the FaaSFlow paper's
//! evaluation (§5) on the simulated cluster.
//!
//! ```text
//! repro <experiment> [--quick] [--trace-out DIR]
//!
//! experiments:
//!   fig4        MasterSP scheduling overhead per benchmark        (§2.3)
//!   fig5        data movement: monolithic vs FaaS                 (§2.4)
//!   fig11       scheduling overhead: HyperFlow-serverless vs FaaSFlow (§5.2)
//!   table4      data-movement latencies and reduction             (§5.3)
//!   fig12       p99 vs rate for Gen & Vid at 25–100 MB/s          (§5.4)
//!   fig13       p99 at 50 MB/s, 6 inv/min, all benchmarks         (§5.4)
//!   fig14       co-location interference, solo vs co-run          (§5.5)
//!   fig15       grouping & scheduling distribution                (§5.5)
//!   fig16       graph-scheduler scalability, 10–200 nodes         (§5.6)
//!   components  engine overhead & cluster scaling                 (§5.7)
//!   ablations   design-choice ablations (DESIGN.md)
//!   chaos       fault-domain recovery, WorkerSP vs MasterSP       (§6)
//!   failover    engine crash + journaled recovery: MasterSP outage
//!               vs WorkerSP single-partition degradation
//!   overload    graceful degradation under an offered-load sweep:
//!               admission control, backpressure, hedged retries
//!   degrade     closed-loop SLO-driven degradation: burn-rate alerts
//!               throttle the offending workflow, sparing the innocent one
//!   placement   load- & locality-aware placement vs the legacy
//!               worker-0 tie-break: group skew, p99, remote bytes
//!   grayfail    gray failures: slow/stuck/flaky workers and an asymmetric
//!               link partition; MAD health detector off vs on, worker
//!               quarantine, false suspicion and zombie fencing
//!   perf        hot-path microbenchmarks -> BENCH_kernel.json
//!   trace       causal spans, resource series, phase attribution
//!               -> trace_*.json (Perfetto) + metrics_*.prom
//!   critpath    observed critical path per invocation: phase shares,
//!               what-if speedup bounds, MasterSP vs WorkerSP bottlenecks
//!   all         everything above in order (perf, trace, critpath excluded)
//! ```
//!
//! `--trace-out DIR` redirects the `trace` artifacts (default: cwd).
//!
//! Absolute values are not expected to match the authors' hardware; the
//! *shape* — who wins, by what factor, where crossovers fall — is the
//! reproduction target. Paper values are printed alongside for comparison.

use std::time::Instant;

use faasflow_bench::{mb, parallel_map, rule, run_colocated_with_distribution, run_one, Drive};
use faasflow_core::{
    ClientConfig, Cluster, ClusterConfig, EngineCrash, EngineTarget, FaultPlan, JournalConfig,
    NetFault, NodeCrash, ScheduleMode, StorageFault, StorageFaultKind,
};
use faasflow_scheduler::{
    ContentionSet, GraphScheduler, PartitionConfig, PlacementConfig, PlacementStrategy,
    RuntimeMetrics, WorkerInfo, WorkerLoad,
};
use faasflow_sim::SimDuration;
use faasflow_sim::{NodeId, SimRng};
use faasflow_wdl::{DagParser, FunctionProfile, Step, Workflow};
use faasflow_workloads::{scientific, without_data, Benchmark};

/// (benchmark, MasterSP overhead ms) from Figure 4 — the paper reports the
/// averages 712 ms (scientific) and 181.3 ms (real-world).
const PAPER_FIG4_AVG: (f64, f64) = (712.0, 181.3);
/// Figure 11 FaaSFlow averages: 141.9 ms scientific, 51.4 ms real-world.
const PAPER_FIG11_AVG: (f64, f64) = (141.9, 51.4);
/// Table 4 rows: (HyperFlow-serverless s, FaaSFlow-FaaStore s, reduction %).
const PAPER_TABLE4: [(&str, f64, f64, &str); 8] = [
    ("Cyc", 204.2, 10.28, "95%"),
    ("Epi", 2.23, 0.69, "69%"),
    ("Gen", 29.26, 22.17, "24%"),
    ("Soy", 10.06, 9.53, "5.2%"),
    ("Vid", 4.02, 1.03, "74%"),
    ("IR", 0.20, 0.13, "35%"),
    ("FP", 1.29, 0.49, "62%"),
    ("WC", 1.46, 0.21, "70%"),
];

fn master_config() -> ClusterConfig {
    ClusterConfig {
        mode: ScheduleMode::MasterSp,
        faastore: false,
        ..ClusterConfig::default()
    }
}

fn faasflow_config() -> ClusterConfig {
    ClusterConfig {
        mode: ScheduleMode::WorkerSp,
        faastore: true,
        ..ClusterConfig::default()
    }
}

/// WorkerSP without the hybrid store (plain FaaSFlow).
fn faasflow_nostore_config() -> ClusterConfig {
    ClusterConfig {
        mode: ScheduleMode::WorkerSp,
        faastore: false,
        ..ClusterConfig::default()
    }
}

struct Scale {
    /// Closed-loop measured invocations (paper: 1000).
    closed: u32,
    /// Open-loop measured invocations per cell (paper: 1000).
    open: u32,
    /// Co-location measured invocations per benchmark.
    colo: u32,
    /// Threads for independent cells.
    threads: usize,
}

impl Scale {
    fn new(quick: bool) -> Self {
        if quick {
            Scale {
                closed: 40,
                open: 40,
                colo: 10,
                threads: 8,
            }
        } else {
            Scale {
                closed: 200,
                open: 150,
                colo: 25,
                threads: 8,
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut trace_out: Option<String> = None;
    let mut positional: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if let Some(dir) = arg.strip_prefix("--trace-out=") {
            trace_out = Some(dir.to_string());
        } else if arg == "--trace-out" {
            if i + 1 < args.len() {
                trace_out = Some(args[i + 1].clone());
                i += 1;
            }
        } else if !arg.starts_with("--") {
            positional.push(arg);
        }
        i += 1;
    }
    let exp = positional.first().copied().unwrap_or("all");
    let scale = Scale::new(quick);
    let started = Instant::now();
    match exp {
        "fig4" => fig4(&scale),
        "fig5" => fig5(&scale),
        "fig11" => fig11(&scale),
        "table4" => table4(&scale),
        "fig12" => fig12(&scale),
        "fig13" => fig13(&scale),
        "fig14" => fig14(&scale),
        "fig15" => fig15(&scale),
        "fig16" => fig16(),
        "components" => components(&scale),
        "ablations" => ablations(&scale),
        "chaos" => chaos(&scale),
        "failover" => failover(&scale),
        "overload" => overload(&scale),
        "degrade" => degrade(&scale),
        "placement" => placement(&scale),
        "grayfail" => grayfail(&scale),
        "perf" => perf(quick),
        "trace" => trace_scenario(&scale, trace_out.as_deref().unwrap_or(".")),
        "critpath" => critpath_scenario(&scale),
        "all" => {
            fig4(&scale);
            fig5(&scale);
            fig11(&scale);
            table4(&scale);
            fig12(&scale);
            fig13(&scale);
            fig14(&scale);
            fig15(&scale);
            fig16();
            components(&scale);
            ablations(&scale);
            chaos(&scale);
            failover(&scale);
            overload(&scale);
            degrade(&scale);
            placement(&scale);
            grayfail(&scale);
        }
        other => {
            eprintln!("unknown experiment `{other}`; see the module docs for the list");
            std::process::exit(2);
        }
    }
    eprintln!("[repro] done in {:.1}s", started.elapsed().as_secs_f64());
}

// ====================================================================
// Figure 4 — MasterSP scheduling overhead (§2.3)
// ====================================================================

fn fig4(scale: &Scale) {
    println!("\n=== Figure 4: scheduling overhead of HyperFlow-serverless (MasterSP) ===");
    println!("(input data packed in images: zero-byte edges; closed loop)");
    println!("{:<6} {:>16} {:>14}", "bench", "overhead (ms)", "e2e (ms)");
    rule(40);
    let rows = parallel_map(Benchmark::ALL.to_vec(), scale.threads, |b| {
        let wf = without_data(&b.workflow());
        let (r, _) = run_one(master_config(), &wf, Drive::closed(3, scale.closed));
        (b, r)
    });
    let mut sci = Vec::new();
    let mut real = Vec::new();
    for (b, r) in rows {
        println!(
            "{:<6} {:>16.1} {:>14.1}",
            b.short_name(),
            r.sched_overhead.mean,
            r.e2e.mean
        );
        if Benchmark::SCIENTIFIC.contains(&b) {
            sci.push(r.sched_overhead.mean);
        } else {
            real.push(r.sched_overhead.mean);
        }
    }
    rule(40);
    println!(
        "scientific avg: {:.1} ms (paper: {} ms)   real-world avg: {:.1} ms (paper: {} ms)",
        avg(&sci),
        PAPER_FIG4_AVG.0,
        avg(&real),
        PAPER_FIG4_AVG.1
    );
}

// ====================================================================
// Figure 5 — data movement, monolithic vs FaaS (§2.4)
// ====================================================================

fn fig5(scale: &Scale) {
    println!("\n=== Figure 5: data movement per invocation, monolithic vs FaaS ===");
    println!(
        "{:<6} {:>16} {:>14} {:>8} {:>16}",
        "bench", "monolithic (MB)", "FaaS (MB)", "ratio", "wire traffic(MB)"
    );
    rule(66);
    let measure = scale.closed.min(30);
    let rows = parallel_map(Benchmark::ALL.to_vec(), scale.threads, move |b| {
        let (r, _) = run_one(master_config(), &b.workflow(), Drive::closed(2, measure));
        (b, r)
    });
    let parser = DagParser::default();
    for (b, r) in rows {
        let mono = b.monolithic_bytes() as f64 / 1048576.0;
        // The paper counts the data functions must fetch (the data-shipping
        // volume); wire traffic additionally includes the store writes.
        let dag = parser.parse(&b.workflow()).expect("benchmark parses");
        let faas = dag.total_data_bytes() as f64 / 1048576.0;
        let wire = r.bytes_moved.mean / 1048576.0;
        println!(
            "{:<6} {:>16.2} {:>14.2} {:>7.1}x {:>16.2}",
            b.short_name(),
            mono,
            faas,
            faas / mono,
            wire
        );
    }
    rule(66);
    println!("paper anchors: Vid 4.23 -> 96.82 MB (22.9x), Cyc 23.95 -> 1182.3 MB (39.5x)");
}

// ====================================================================
// Figure 11 — scheduling overhead, both systems (§5.2)
// ====================================================================

fn fig11(scale: &Scale) {
    println!("\n=== Figure 11: scheduling overhead, HyperFlow-serverless vs FaaSFlow ===");
    println!(
        "{:<6} {:>14} {:>12} {:>11}",
        "bench", "MasterSP (ms)", "FaaSFlow", "reduction"
    );
    rule(48);
    let cells: Vec<(Benchmark, bool)> = Benchmark::ALL
        .iter()
        .flat_map(|&b| [(b, false), (b, true)])
        .collect();
    let n = scale.closed;
    let rows = parallel_map(cells, scale.threads, move |(b, worker_sp)| {
        let wf = without_data(&b.workflow());
        let config = if worker_sp {
            faasflow_config()
        } else {
            master_config()
        };
        let (r, _) = run_one(config, &wf, Drive::closed(3, n));
        r.sched_overhead.mean
    });
    let mut sci = (Vec::new(), Vec::new());
    let mut real = (Vec::new(), Vec::new());
    for (i, &b) in Benchmark::ALL.iter().enumerate() {
        let master = rows[2 * i];
        let fflow = rows[2 * i + 1];
        println!(
            "{:<6} {:>14.1} {:>12.1} {:>10.1}%",
            b.short_name(),
            master,
            fflow,
            100.0 * (1.0 - fflow / master)
        );
        if Benchmark::SCIENTIFIC.contains(&b) {
            sci.0.push(master);
            sci.1.push(fflow);
        } else {
            real.0.push(master);
            real.1.push(fflow);
        }
    }
    rule(48);
    println!(
        "scientific: {:.1} -> {:.1} ms (paper: 712 -> {});  real-world: {:.1} -> {:.1} ms (paper: 181.3 -> {})",
        avg(&sci.0),
        avg(&sci.1),
        PAPER_FIG11_AVG.0,
        avg(&real.0),
        avg(&real.1),
        PAPER_FIG11_AVG.1
    );
    let overall_red = 100.0 * (1.0 - (avg(&sci.1) + avg(&real.1)) / (avg(&sci.0) + avg(&real.0)));
    println!("overall average reduction: {overall_red:.1}% (paper: 74.6%)");
}

// ====================================================================
// Table 4 — data-movement latencies (§5.3)
// ====================================================================

fn table4(scale: &Scale) {
    println!("\n=== Table 4: overall data-movement latency of all edges ===");
    println!(
        "{:<6} {:>13} {:>13} {:>9} | {:>9} {:>9} {:>7}",
        "bench", "HyperFlow(s)", "FaaSFlow(s)", "reduced", "paper-HF", "paper-FF", "paper-r"
    );
    rule(76);
    let measure = scale.closed.min(30);
    let cells: Vec<(Benchmark, bool)> = Benchmark::ALL
        .iter()
        .flat_map(|&b| [(b, false), (b, true)])
        .collect();
    let rows = parallel_map(cells, scale.threads, move |(b, worker_sp)| {
        let config = if worker_sp {
            faasflow_config()
        } else {
            master_config()
        };
        let (r, _) = run_one(config, &b.workflow(), Drive::closed(2, measure));
        r.transfer_total.mean / 1000.0
    });
    for (i, &b) in Benchmark::ALL.iter().enumerate() {
        let hf = rows[2 * i];
        let ff = rows[2 * i + 1];
        let paper = PAPER_TABLE4[i];
        println!(
            "{:<6} {:>13.2} {:>13.2} {:>8.1}% | {:>9.2} {:>9.2} {:>7}",
            b.short_name(),
            hf,
            ff,
            100.0 * (1.0 - ff / hf),
            paper.1,
            paper.2,
            paper.3
        );
    }
}

// ====================================================================
// Figure 12 — p99 vs throughput under bandwidth sweeps (§5.4)
// ====================================================================

fn fig12(scale: &Scale) {
    println!("\n=== Figure 12: p99 latency under different rates and storage bandwidth ===");
    println!("(open loop; 60 s timeout recorded as 60000 ms; '-' = no completions)");
    let bandwidths = [25e6, 50e6, 75e6, 100e6];
    let rates = [2.0, 4.0, 6.0, 8.0, 10.0];
    for bench in [Benchmark::Genome, Benchmark::VideoFfmpeg] {
        for worker_sp in [false, true] {
            let system = if worker_sp {
                "FaaSFlow-FaaStore"
            } else {
                "HyperFlow-serverless"
            };
            println!("\n--- {} / {} ---", bench.short_name(), system);
            print!("{:<10}", "bw \\ rate");
            for r in rates {
                print!("{r:>9.0}/min");
            }
            println!();
            rule(10 + rates.len() * 12);
            let cells: Vec<(f64, f64)> = bandwidths
                .iter()
                .flat_map(|&bw| rates.iter().map(move |&r| (bw, r)))
                .collect();
            let n = scale.open;
            let rows = parallel_map(cells, scale.threads, move |(bw, rate)| {
                let mut config = if worker_sp {
                    faasflow_config()
                } else {
                    master_config()
                };
                config.storage_bandwidth = bw;
                let (r, _) = run_one(config, &bench.workflow(), Drive::open(2, n, rate));
                r.e2e.p99
            });
            for (bi, &bw) in bandwidths.iter().enumerate() {
                print!("{:<10}", format!("{:.0}MB/s", bw / 1e6));
                for ri in 0..rates.len() {
                    let p99 = rows[bi * rates.len() + ri];
                    if p99 > 0.0 {
                        print!("{:>11.0}ms", p99);
                    } else {
                        print!("{:>13}", "-");
                    }
                }
                println!();
            }
        }
    }
    println!("\npaper shape: HyperFlow-serverless p99 blows up at low bandwidth/high rate;");
    println!("FaaSFlow-FaaStore at 25-50 MB/s tracks HyperFlow-serverless at 75-100 MB/s");
    println!("(1.5x-4x bandwidth-utilisation multiplier).");
}

// ====================================================================
// Figure 13 — p99 at 50 MB/s, 6 invocations/minute (§5.4)
// ====================================================================

fn fig13(scale: &Scale) {
    println!("\n=== Figure 13: p99 e2e latency at 50 MB/s, 6 invocations/min ===");
    println!(
        "{:<6} {:>18} {:>20} {:>10}",
        "bench", "HyperFlow p99(ms)", "FaaSFlow-FaaStore", "timeouts"
    );
    rule(60);
    let cells: Vec<(Benchmark, bool)> = Benchmark::ALL
        .iter()
        .flat_map(|&b| [(b, false), (b, true)])
        .collect();
    let n = scale.open;
    let rows = parallel_map(cells, scale.threads, move |(b, worker_sp)| {
        let config = if worker_sp {
            faasflow_config()
        } else {
            master_config()
        };
        let (r, _) = run_one(config, &b.workflow(), Drive::open(2, n, 6.0));
        (r.e2e.p99, r.timeouts)
    });
    for (i, &b) in Benchmark::ALL.iter().enumerate() {
        let (hf, hf_to) = rows[2 * i];
        let (ff, ff_to) = rows[2 * i + 1];
        println!(
            "{:<6} {:>18.0} {:>20.0} {:>6}/{:<4}",
            b.short_name(),
            hf,
            ff,
            hf_to,
            ff_to
        );
    }
    rule(60);
    println!("paper shape: Cyc/Gen hit the 60 s timeout under HyperFlow-serverless;");
    println!("FaaSFlow-FaaStore reduces p99 by 23.3% avg (75.2% for Cyc & Gen).");
}

// ====================================================================
// Figure 14 — co-location interference (§5.5)
// ====================================================================

fn fig14(scale: &Scale) {
    println!("\n=== Figure 14: co-location interference (solo vs 8 benchmarks co-running) ===");
    let solo_n = scale.colo;
    // Solo runs (both systems), in parallel.
    let cells: Vec<(Benchmark, bool)> = Benchmark::ALL
        .iter()
        .flat_map(|&b| [(b, false), (b, true)])
        .collect();
    let solo = parallel_map(cells, scale.threads, move |(b, worker_sp)| {
        let config = if worker_sp {
            faasflow_config()
        } else {
            master_config()
        };
        let (r, _) = run_one(config, &b.workflow(), Drive::closed(2, solo_n));
        r.e2e.mean
    });
    // Co-located runs.
    let (hf_co, _) = run_colocated_with_distribution(master_config(), 2, scale.colo);
    let (ff_co, _) = run_colocated_with_distribution(faasflow_config(), 2, scale.colo);
    println!(
        "{:<6} {:>24} {:>28}",
        "bench", "HyperFlow solo->co (ms)", "FaaSFlow-FaaStore solo->co"
    );
    rule(64);
    for (i, &b) in Benchmark::ALL.iter().enumerate() {
        let hf_solo = solo[2 * i];
        let ff_solo = solo[2 * i + 1];
        let hf = hf_co.workflow(b.short_name()).e2e.mean;
        let ff = ff_co.workflow(b.short_name()).e2e.mean;
        println!(
            "{:<6} {:>9.0} -> {:>6.0} ({:>+5.1}%) {:>9.0} -> {:>6.0} ({:>+5.1}%)",
            b.short_name(),
            hf_solo,
            hf,
            100.0 * (hf / hf_solo - 1.0),
            ff_solo,
            ff,
            100.0 * (ff / ff_solo - 1.0),
        );
    }
    rule(64);
    println!("paper: Cyc/Gen/Vid/WC degrade 50.3/48.5/84.4/66.2% under HyperFlow-serverless;");
    println!("FaaSFlow-FaaStore alleviates the degradation.");
}

// ====================================================================
// Figure 15 — grouping & scheduling distribution (§5.5)
// ====================================================================

fn fig15(scale: &Scale) {
    println!("\n=== Figure 15: scheduling result and distribution (co-located run) ===");
    let (_, dist) = run_colocated_with_distribution(faasflow_config(), 2, scale.colo.min(5));
    println!(
        "{:<6} {:>8} {:>8}   placement (worker: functions)",
        "bench", "workers", "groups"
    );
    rule(70);
    for (b, rows) in dist {
        let total_groups: usize = rows.iter().map(|r| r.groups).sum();
        let spread: Vec<String> = rows
            .iter()
            .map(|r| format!("w{}:{}", r.worker.index(), r.functions))
            .collect();
        println!(
            "{:<6} {:>8} {:>8}   {}",
            b.short_name(),
            rows.len(),
            total_groups,
            spread.join(" ")
        );
    }
    rule(70);
    println!("paper shape: 50-node scientific workflows distribute across all 7 workers;");
    println!("~10-function applications group onto one worker.");
}

// ====================================================================
// Figure 16 — graph scheduler scalability (§5.6)
// ====================================================================

fn fig16() {
    println!("\n=== Figure 16: Graph Scheduler cost vs workflow size (Genome) ===");
    println!(
        "{:<8} {:>14} {:>16} {:>14}",
        "nodes", "time (ms)", "per-run memory", "groups"
    );
    rule(58);
    let parser = DagParser::default();
    let scheduler = GraphScheduler::default();
    // Capacity sized so even the 200-node instance is placeable.
    let workers: Vec<WorkerInfo> = (0..7)
        .map(|i| WorkerInfo::new(NodeId::new(i + 1), 40))
        .collect();
    let mut base: Option<f64> = None;
    for nodes in [10usize, 25, 50, 100, 200] {
        let wf = scientific::genome(nodes);
        let dag = parser.parse(&wf).expect("genome parses");
        let metrics = RuntimeMetrics::initial(&dag);
        let reps = 20;
        let mut rng = SimRng::seed_from(7);
        let start = Instant::now();
        let mut assignment = None;
        for _ in 0..reps {
            assignment = Some(
                scheduler
                    .partition(
                        &dag,
                        &workers,
                        &metrics,
                        &ContentionSet::default(),
                        u64::MAX,
                        &mut rng,
                    )
                    .expect("partition succeeds"),
            );
        }
        let ms = start.elapsed().as_secs_f64() * 1000.0 / reps as f64;
        let a = assignment.expect("ran at least once");
        println!(
            "{:<8} {:>14.3} {:>13} KB {:>14}",
            nodes,
            ms,
            (a.approx_memory_bytes() + dag_footprint(&dag)) / 1024,
            a.groups.len()
        );
        if nodes == 10 {
            base = Some(ms / 100.0); // per n^2 unit
        }
        let _ = base;
    }
    rule(58);
    println!("paper shape: time grows ~O(n^2) with node count; memory stays modest");
    println!("(the paper reports 24.43 MB including all component overhead).");
}

fn dag_footprint(dag: &faasflow_wdl::WorkflowDag) -> usize {
    dag.node_count() * std::mem::size_of::<faasflow_wdl::DagNode>()
        + std::mem::size_of_val(dag.edges())
        + std::mem::size_of_val(dag.data_edges())
}

// ====================================================================
// §5.7 — component overhead
// ====================================================================

fn components(scale: &Scale) {
    println!("\n=== Section 5.7: FaaSFlow component overhead ===");
    println!("cluster scaling: Word Count closed-loop on growing clusters");
    println!(
        "{:<9} {:>12} {:>16} {:>16} {:>14}",
        "workers", "e2e (ms)", "master busy %", "live states", "cold starts"
    );
    rule(72);
    let n = scale.closed.min(60);
    let rows = parallel_map(vec![1u32, 7, 25, 50, 100], scale.threads, move |workers| {
        let config = ClusterConfig {
            workers,
            ..faasflow_config()
        };
        let (r, full) = run_one(
            config,
            &Benchmark::WordCount.workflow(),
            Drive::closed(2, n),
        );
        (workers, r, full)
    });
    for (workers, r, full) in rows {
        println!(
            "{:<9} {:>12.1} {:>15.2}% {:>16} {:>14}",
            workers,
            r.e2e.mean,
            full.master_busy_fraction * 100.0,
            full.live_invocation_states,
            full.cold_starts
        );
    }
    rule(72);
    println!("paper: per-worker engine costs ~0.12 core / 47 MB; usage scales linearly");
    println!("with node count and per-invocation state is recycled (live states -> 0).");

    // Per-worker utilisation on the default 7-worker cluster, plus the
    // §4.3.2 MicroVM reclamation variant (no cgroup hot-unplug).
    println!("\nper-worker utilisation (Genome, closed loop) by reclamation mode:");
    println!(
        "{:<14} {:>14} {:>13} {:>14} {:>13}",
        "mode", "cpu mean", "cpu peak", "mem mean", "mem peak"
    );
    rule(72);
    for (label, mode) in [
        ("cgroup-limit", faasflow_core::ReclamationMode::CgroupLimit),
        ("microvm-pool", faasflow_core::ReclamationMode::MicroVm),
    ] {
        let config = ClusterConfig {
            reclamation: mode,
            ..faasflow_config()
        };
        let mut cluster = faasflow_core::Cluster::new(config).expect("valid configuration");
        cluster
            .register(
                &Benchmark::Genome.workflow(),
                faasflow_core::ClientConfig::ClosedLoop { invocations: 30 },
            )
            .expect("registers");
        cluster.run_until_idle();
        let util = cluster.utilization();
        let n = util.len() as f64;
        let cpu_mean: f64 = util.iter().map(|u| u.cpu_mean_cores).sum::<f64>() / n;
        let cpu_peak = util.iter().map(|u| u.cpu_peak_cores).fold(0.0, f64::max);
        let mem_mean: f64 = util.iter().map(|u| u.mem_mean_bytes).sum::<f64>() / n;
        let mem_peak = util.iter().map(|u| u.mem_peak_bytes).fold(0.0, f64::max);
        println!(
            "{:<14} {:>8.2} cores {:>7.0} cores {:>11.1} MB {:>10.1} MB",
            label,
            cpu_mean,
            cpu_peak,
            mem_mean / 1048576.0,
            mem_peak / 1048576.0
        );
    }
    println!("(MicroVM sandboxes keep provisioned memory resident: same quota, higher RSS)");
}

// ====================================================================
// Ablations (DESIGN.md)
// ====================================================================

fn ablations(scale: &Scale) {
    println!("\n=== Ablation A1: FaaStore on/off under WorkerSP (transfer latency, s) ===");
    let measure = scale.colo;
    let cells: Vec<(Benchmark, bool)> = Benchmark::ALL
        .iter()
        .flat_map(|&b| [(b, false), (b, true)])
        .collect();
    let rows = parallel_map(cells, scale.threads, move |(b, store)| {
        let config = if store {
            faasflow_config()
        } else {
            faasflow_nostore_config()
        };
        let (r, _) = run_one(config, &b.workflow(), Drive::closed(2, measure));
        r.transfer_total.mean / 1000.0
    });
    println!(
        "{:<6} {:>16} {:>16} {:>10}",
        "bench", "WorkerSP-only", "with FaaStore", "saved"
    );
    rule(54);
    for (i, &b) in Benchmark::ALL.iter().enumerate() {
        let off = rows[2 * i];
        let on = rows[2 * i + 1];
        println!(
            "{:<6} {:>16.2} {:>16.2} {:>9.1}%",
            b.short_name(),
            off,
            on,
            100.0 * (1.0 - on / off)
        );
    }

    println!("\n=== Ablation A2: bin-packing strategy (co-located e2e, ms) ===");
    let mk = |placement| {
        let config = ClusterConfig {
            placement,
            ..faasflow_config()
        };
        run_colocated_with_distribution(config, 2, scale.colo.min(10)).0
    };
    let worst = mk(PlacementStrategy::WorstFit);
    let best = mk(PlacementStrategy::BestFit);
    println!("{:<6} {:>14} {:>14}", "bench", "worst-fit", "best-fit");
    rule(40);
    for b in Benchmark::ALL {
        println!(
            "{:<6} {:>14.0} {:>14.0}",
            b.short_name(),
            worst.workflow(b.short_name()).e2e.mean,
            best.workflow(b.short_name()).e2e.mean
        );
    }
    println!("(worst-fit spreads load; best-fit packs and concentrates contention)");

    println!("\n=== Ablation A3: reclamation reserve μ sweep (Vid locality) ===");
    println!(
        "{:<10} {:>14} {:>14}",
        "μ (MB)", "local bytes %", "transfer (s)"
    );
    rule(42);
    let rows = parallel_map(vec![0u64, 16, 32, 48, 64], scale.threads, move |mu_mb| {
        let config = ClusterConfig {
            mu: mu_mb << 20,
            ..faasflow_config()
        };
        let (r, _) = run_one(
            config,
            &Benchmark::VideoFfmpeg.workflow(),
            Drive::closed(2, measure),
        );
        let local = 100.0 * r.local_bytes as f64 / (r.local_bytes + r.remote_bytes).max(1) as f64;
        (mu_mb, local, r.transfer_total.mean / 1000.0)
    });
    for (mu_mb, local, transfer) in rows {
        println!("{:<10} {:>13.1}% {:>14.2}", mu_mb, local, transfer);
    }
    println!("(a larger safety reserve shrinks Eq. (1)'s quota: less locality, more traffic)");

    println!("\n=== Ablation A4: contention pairs cont(G) (§4.1.3) ===");
    // Declare FP's two CPU-heavy stages conflicting: the scheduler must
    // keep them apart, trading data locality for interference isolation.
    let wf = Benchmark::FileProcessing.workflow();
    let dag = DagParser::default().parse(&wf).expect("parses");
    let find = |name: &str| {
        dag.nodes()
            .iter()
            .find(|n| n.name == name)
            .expect("stage exists")
            .id
    };
    let mut contention = faasflow_scheduler::ContentionSet::new();
    contention.declare(find("convert_html"), find("detect_sentiment"));
    let run_with = |cont: faasflow_scheduler::ContentionSet| {
        let mut cluster =
            faasflow_core::Cluster::new(faasflow_config()).expect("valid configuration");
        let id = cluster
            .register_with_contention(
                &wf,
                faasflow_core::ClientConfig::ClosedLoop { invocations: 30 },
                cont,
            )
            .expect("registers");
        cluster.run_until_idle();
        let workers = cluster.distribution(id).len();
        let report = cluster.report();
        let w = report.workflow("FP");
        (
            workers,
            w.e2e.mean,
            100.0 * w.local_bytes as f64 / (w.local_bytes + w.remote_bytes).max(1) as f64,
        )
    };
    let (w0, e0, l0) = run_with(faasflow_scheduler::ContentionSet::new());
    let (w1, e1, l1) = run_with(contention);
    println!(
        "{:<22} {:>8} {:>10} {:>8}",
        "config", "workers", "e2e (ms)", "local%"
    );
    rule(52);
    println!(
        "{:<22} {:>8} {:>10.1} {:>7.1}%",
        "no contention", w0, e0, l0
    );
    println!(
        "{:<22} {:>8} {:>10.1} {:>7.1}%",
        "html <-> sentiment", w1, e1, l1
    );
    println!("(conflicting functions are never co-grouped; locality drops accordingly)");
}

// ====================================================================
// Chaos — fault-domain recovery (§6's availability argument)
// ====================================================================

/// The chaos schedule: a mid-run worker crash (with restart), a remote-
/// storage brownout window, and a degraded link — all deterministic.
fn chaos_plan() -> FaultPlan {
    FaultPlan {
        node_crashes: vec![NodeCrash {
            worker: 0,
            at: SimDuration::from_secs(3),
            restart_after: Some(SimDuration::from_secs(4)),
        }],
        storage_faults: vec![StorageFault {
            at: SimDuration::from_secs(5),
            duration: SimDuration::from_secs(6),
            kind: StorageFaultKind::Brownout { slowdown: 6.0 },
        }],
        net_faults: vec![NetFault {
            worker: 1,
            at: SimDuration::from_secs(2),
            duration: SimDuration::from_secs(6),
            loss: 0.3,
            latency_factor: 2.0,
            bandwidth_factor: 0.5,
        }],
        ..FaultPlan::default()
    }
}

fn chaos(scale: &Scale) {
    println!("\n=== Chaos: fault-domain recovery, WorkerSP vs MasterSP ===");
    println!("(worker 0 crashes at t=3s, restarts at t=7s; storage brownout 6x");
    println!(" over t=5-11s; worker 1 link 30% loss over t=2-8s; Word Count)");
    let n = scale.closed.min(60);
    // Faults are anchored to simulated t=0, so each mode drives one fresh
    // cluster end to end — no warm-up phase shifting the schedule.
    let run = |config: ClusterConfig| {
        let mut cluster = Cluster::new(ClusterConfig {
            fault: chaos_plan(),
            ..config
        })
        .expect("valid experiment configuration");
        cluster
            .register(
                &Benchmark::WordCount.workflow(),
                ClientConfig::ClosedLoop { invocations: n },
            )
            .expect("registers");
        cluster.run_until_idle();
        cluster.report()
    };
    let master = run(master_config());
    let worker = run(faasflow_config());
    println!(
        "{:<26} {:>16} {:>16}",
        "metric", "HyperFlow(MSP)", "FaaSFlow(WSP)"
    );
    rule(60);
    let mrow = |label: &str, m: u64, w: u64| println!("{label:<26} {m:>16} {w:>16}");
    let m = master.workflow("WC");
    let w = worker.workflow("WC");
    mrow("invocations sent", m.sent, w.sent);
    mrow("completed", m.completed, w.completed);
    mrow("dead-lettered", m.dead_lettered, w.dead_lettered);
    mrow("timeouts", m.timeouts, w.timeouts);
    println!(
        "{:<26} {:>16.0} {:>16.0}",
        "e2e mean (ms)", m.e2e.mean, w.e2e.mean
    );
    println!(
        "{:<26} {:>16.0} {:>16.0}",
        "e2e p99 (ms)", m.e2e.p99, w.e2e.p99
    );
    let mf = master.faults;
    let wf = worker.faults;
    mrow("worker crashes", mf.worker_crashes, wf.worker_crashes);
    mrow("lease expiries", mf.lease_expiries, wf.lease_expiries);
    mrow(
        "crash re-dispatches",
        mf.crash_redispatches,
        wf.crash_redispatches,
    );
    mrow("flows killed", mf.flows_killed, wf.flows_killed);
    mrow(
        "storage backoff waits",
        mf.storage_backoff_waits,
        wf.storage_backoff_waits,
    );
    mrow(
        "message retransmits",
        mf.message_retransmits,
        wf.message_retransmits,
    );
    mrow(
        "live states (leak check)",
        master.live_invocation_states,
        worker.live_invocation_states,
    );
    rule(60);
    for (label, report) in [("MasterSP", &master), ("WorkerSP", &worker)] {
        let r = report.workflow("WC");
        assert_eq!(
            r.completed + r.dead_lettered,
            r.sent,
            "{label}: every invocation must complete or dead-letter"
        );
        assert_eq!(
            report.live_invocation_states, 0,
            "{label}: no leaked engine state"
        );
    }
    println!("every invocation completed or dead-lettered; no state leaked.");
    println!("paper argument (§6): worker-side scheduling confines the blast radius —");
    println!("the central engine turns every fault into a control-plane event.");
}

// ====================================================================
// Failover — engine crash + journaled recovery
// ====================================================================

/// Crashes one scheduling engine mid-run in each mode and compares the
/// blast radius: under MasterSP the central engine *is* the control
/// plane, so its outage stalls every in-flight workflow until restart;
/// under WorkerSP only the partition scheduled by the crashed worker's
/// engine degrades while the other engines keep dispatching. Both modes
/// run with write-ahead journaling on, so the restarted engine replays
/// its log, reconciles with worker-reported progress under generation
/// fencing, and resumes — every invocation still reaches exactly one
/// terminal outcome.
fn failover(scale: &Scale) {
    use faasflow_sim::SimTime;

    // The four real-world benchmarks: light enough that the cluster is
    // unsaturated, so the snapshot isolates outage stall from queueing.
    const BENCHES: [Benchmark; 4] = [
        Benchmark::VideoFfmpeg,
        Benchmark::IllegalRecognizer,
        Benchmark::FileProcessing,
        Benchmark::WordCount,
    ];
    println!("\n=== Failover: engine crash + journaled recovery, WorkerSP vs MasterSP ===");
    println!("(scheduling engine crashes at t=5s, restarts at t=35s; journal on;");
    println!(" 4 workflows on 4 workers, open loop; completion snapshot at t=34s)");
    let n = scale.open.min(60);
    let rate = 12.0; // 0.2 inv/s per workflow keeps arrivals flowing through the outage.
    let horizon = SimTime::ZERO + SimDuration::from_secs(34);
    let run = |config: ClusterConfig, target: EngineTarget| {
        let mut cluster = Cluster::new(ClusterConfig {
            workers: 4,
            fault: FaultPlan {
                engine_crashes: vec![EngineCrash {
                    target,
                    at: SimDuration::from_secs(5),
                    restart_after: SimDuration::from_secs(30),
                }],
                ..FaultPlan::default()
            },
            journal: JournalConfig {
                enabled: true,
                ..JournalConfig::default()
            },
            ..config
        })
        .expect("valid experiment configuration");
        for b in BENCHES {
            cluster
                .register(
                    &b.workflow(),
                    ClientConfig::OpenLoop {
                        per_minute: rate,
                        invocations: n,
                    },
                )
                .expect("registers");
        }
        cluster.run_until(horizon);
        let snapshot = cluster.report();
        cluster.run_until_idle();
        (snapshot, cluster.report())
    };
    let (m_snap, master) = run(master_config(), EngineTarget::Master);
    let (w_snap, worker) = run(faasflow_config(), EngineTarget::Worker(1));
    println!(
        "{:<30} {:>16} {:>16}",
        "metric", "HyperFlow(MSP)", "FaaSFlow(WSP)"
    );
    rule(64);
    let mrow = |label: &str, m: u64, w: u64| println!("{label:<30} {m:>16} {w:>16}");
    let total = |report: &faasflow_core::RunReport,
                 pick: fn(&faasflow_core::WorkflowReport) -> u64| {
        report.workflows.values().map(pick).sum::<u64>()
    };
    let ms_completed = total(&m_snap, |wf| wf.completed);
    let ws_completed = total(&w_snap, |wf| wf.completed);
    mrow("completed by t=34s", ms_completed, ws_completed);
    mrow(
        "invocations sent",
        total(&master, |wf| wf.sent),
        total(&worker, |wf| wf.sent),
    );
    mrow(
        "completed (final)",
        total(&master, |wf| wf.completed),
        total(&worker, |wf| wf.completed),
    );
    mrow(
        "dead-lettered",
        total(&master, |wf| wf.dead_lettered),
        total(&worker, |wf| wf.dead_lettered),
    );
    let mr = &master.recovery;
    let wr = &worker.recovery;
    mrow("engine crashes", mr.engine_crashes, wr.engine_crashes);
    mrow(
        "engine recoveries",
        mr.engine_recoveries,
        wr.engine_recoveries,
    );
    mrow("journal appends", mr.journal_appends, wr.journal_appends);
    mrow(
        "journal records replayed",
        mr.journal_replayed_records,
        wr.journal_replayed_records,
    );
    mrow(
        "messages lost to outage",
        mr.messages_lost,
        wr.messages_lost,
    );
    mrow(
        "duplicates suppressed",
        mr.duplicate_suppressions,
        wr.duplicate_suppressions,
    );
    println!(
        "{:<30} {:>16.2} {:>16.2}",
        "engine downtime (s)", mr.engine_downtime_secs, wr.engine_downtime_secs
    );
    let mf = &master.faults;
    let wf = &worker.faults;
    mrow(
        "dead-letter: retries",
        mf.dead_letter_retries_exhausted,
        wf.dead_letter_retries_exhausted,
    );
    mrow(
        "dead-letter: crash orphan",
        mf.dead_letter_crash_orphan,
        wf.dead_letter_crash_orphan,
    );
    mrow(
        "dead-letter: journal lost",
        mf.dead_letter_journal_unrecoverable,
        wf.dead_letter_journal_unrecoverable,
    );
    rule(64);
    for (label, report) in [("MasterSP", &master), ("WorkerSP", &worker)] {
        assert_eq!(
            total(report, |wf| wf.completed + wf.dead_lettered + wf.shed),
            total(report, |wf| wf.sent),
            "{label}: every invocation must reach exactly one terminal outcome"
        );
        assert_eq!(
            report.live_invocation_states, 0,
            "{label}: no leaked engine state"
        );
        let f = &report.faults;
        assert_eq!(
            f.dead_letter_retries_exhausted
                + f.dead_letter_crash_orphan
                + f.dead_letter_journal_unrecoverable,
            f.dead_letters,
            "{label}: every dead letter carries exactly one attributed reason"
        );
        assert_eq!(
            report.recovery.engine_crashes, 1,
            "{label}: the injected crash fired"
        );
        assert_eq!(
            report.recovery.engine_recoveries, 1,
            "{label}: the engine restarted and recovered"
        );
    }
    assert!(
        ws_completed > ms_completed,
        "WorkerSP must complete strictly more than MasterSP by the snapshot \
         horizon (WSP {ws_completed} vs MSP {ms_completed}): a central-engine \
         outage stalls everything, a worker-engine outage degrades one partition"
    );
    println!("conservation held in both modes; outcomes recorded exactly once.");
    println!("a MasterSP engine outage freezes the whole cluster until restart;");
    println!("WorkerSP keeps the surviving partitions scheduling through it.");
}

// ====================================================================
// overload — graceful degradation under an offered-load sweep
// ====================================================================

/// Drives WordCount open-loop at rising offered loads with the full
/// overload-protection stack on — bounded admission queues with
/// deadline-aware shedding, pool-to-scheduler backpressure and hedged
/// execution — and tabulates how each schedule pattern degrades past
/// saturation. The claim under test: worker-side scheduling sheds less
/// and keeps its p99 bounded at the highest load, because pushback stays
/// local instead of funnelling through the central engine.
fn overload(scale: &Scale) {
    use faasflow_container::NodeCaps;
    use faasflow_core::{
        AdmissionConfig, BackpressureConfig, HedgeConfig, OverloadConfig, ShedPolicy,
    };

    const RATES: [f64; 4] = [6.0, 12.0, 24.0, 48.0];
    println!("\n=== Overload: graceful degradation, WorkerSP vs MasterSP ===");
    println!("(Video-FFmpeg, open loop; 4 workers x 4 cores; admission queue 16/node,");
    println!(" deadline-aware shedding, backpressure, 1540 ms exec hedges)");
    let n = scale.open;
    let protect = |base: ClusterConfig| ClusterConfig {
        workers: 4,
        node_caps: NodeCaps {
            cores: 4,
            ..NodeCaps::default()
        },
        qos_target: Some(SimDuration::from_secs(30)),
        overload: OverloadConfig {
            admission: Some(AdmissionConfig {
                queue_capacity: 16,
                policy: ShedPolicy::DeadlineAware,
            }),
            backpressure: Some(BackpressureConfig {
                queue_threshold: 10,
                defer_delay: SimDuration::from_millis(60),
                max_defers: 20,
            }),
            hedge: Some(HedgeConfig {
                delay: SimDuration::from_millis(1540),
                adaptive: None,
            }),
            ..OverloadConfig::default()
        },
        ..base
    };
    // Each (mode, rate) cell is an independent deterministic cluster.
    let cells: Vec<(usize, f64)> = (0..2)
        .flat_map(|mode| RATES.iter().map(move |&r| (mode, r)))
        .collect();
    let results = parallel_map(cells, scale.threads, |(mode, rate)| {
        let base = if mode == 0 {
            master_config()
        } else {
            faasflow_config()
        };
        run_one(
            protect(base),
            &Benchmark::VideoFfmpeg.workflow(),
            Drive::open(5, n, rate),
        )
    });
    let (master, worker) = results.split_at(RATES.len());

    let shed_pct = |wf: &faasflow_core::WorkflowReport| {
        if wf.sent == 0 {
            0.0
        } else {
            100.0 * wf.shed as f64 / wf.sent as f64
        }
    };
    println!(
        "{:<14} {:>9} {:>9} {:>7} | {:>9} {:>9} {:>7}",
        "", "MSP p50", "MSP p99", "shed%", "WSP p50", "WSP p99", "shed%"
    );
    println!(
        "{:<14} {:>9} {:>9} {:>7} | {:>9} {:>9} {:>7}",
        "rate (inv/min)", "(ms)", "(ms)", "", "(ms)", "(ms)", ""
    );
    rule(74);
    for (i, &rate) in RATES.iter().enumerate() {
        let (m, _) = &master[i];
        let (w, _) = &worker[i];
        println!(
            "{:<14.0} {:>9.0} {:>9.0} {:>7.1} | {:>9.0} {:>9.0} {:>7.1}",
            rate,
            m.e2e.median,
            m.e2e.p99,
            shed_pct(m),
            w.e2e.median,
            w.e2e.p99,
            shed_pct(w)
        );
    }
    rule(74);
    let lo = &RATES[0];
    let hi = &RATES[RATES.len() - 1];
    println!("overload actions at the lowest and highest load:");
    println!(
        "{:<24} {:>11} {:>11} | {:>11} {:>11}",
        "action",
        format!("MSP@{lo:.0}"),
        format!("WSP@{lo:.0}"),
        format!("MSP@{hi:.0}"),
        format!("WSP@{hi:.0}")
    );
    rule(74);
    let (_, m_lo) = &master[0];
    let (_, w_lo) = &worker[0];
    let (_, m_hi) = &master[RATES.len() - 1];
    let (_, w_hi) = &worker[RATES.len() - 1];
    let orow = |label: &str, pick: fn(&faasflow_core::OverloadReport) -> u64| {
        println!(
            "{label:<24} {:>11} {:>11} | {:>11} {:>11}",
            pick(&m_lo.overload),
            pick(&w_lo.overload),
            pick(&m_hi.overload),
            pick(&w_hi.overload)
        )
    };
    orow("invocations shed", |o| o.shed);
    orow("backpressure deferrals", |o| o.backpressure_deferrals);
    orow("master re-queues", |o| o.master_requeues);
    orow("hedges launched", |o| o.hedges_launched);
    orow("hedges resolved", |o| o.hedge_wins + o.hedge_losses);

    for (label, cells) in [("MasterSP", master), ("WorkerSP", worker)] {
        for (i, (wf, report)) in cells.iter().enumerate() {
            assert_eq!(
                wf.sent,
                wf.completed + wf.dead_lettered + wf.shed,
                "{label}@{} inv/min: invocation leak",
                RATES[i]
            );
            assert_eq!(
                report.live_invocation_states, 0,
                "{label}@{} inv/min: leaked engine state",
                RATES[i]
            );
            assert_eq!(
                report.overload.hedges_launched,
                report.overload.hedge_wins + report.overload.hedge_losses,
                "{label}@{} inv/min: unresolved hedges",
                RATES[i]
            );
        }
    }
    let (m_top, _) = &master[RATES.len() - 1];
    let (w_top, _) = &worker[RATES.len() - 1];
    assert!(
        shed_pct(w_top) <= shed_pct(m_top),
        "WorkerSP must shed no more than MasterSP at the highest load \
         (WSP {:.1}% vs MSP {:.1}%)",
        shed_pct(w_top),
        shed_pct(m_top)
    );
    assert!(
        w_top.e2e.p99 < 30_000.0,
        "WorkerSP p99 must stay inside the QoS target at the highest load \
         (got {:.0} ms)",
        w_top.e2e.p99
    );
    assert!(
        w_top.e2e.p99 < m_top.e2e.p99,
        "WorkerSP must hold the lower p99 tail at the highest load \
         (WSP {:.0} ms vs MSP {:.0} ms)",
        w_top.e2e.p99,
        m_top.e2e.p99
    );
    println!("degradation is graceful: the shed rate rises with offered load while");
    println!("p99 stays bounded; WorkerSP holds the lower tail past saturation because");
    println!("its pushback (deferrals) stays local instead of re-queueing centrally.");
}

// ====================================================================
// degrade — closed-loop SLO-driven degradation, offender vs innocent
// ====================================================================

/// Two workflows share one four-worker cluster. "Offender" is driven far
/// past its latency objective; "Innocent" trickles along well inside
/// capacity. Without the degradation controller the shared admission
/// queue sheds blindly, so the offender's overload bleeds into the
/// innocent tail. With it, the offender's burn-rate alert drives that
/// workflow Normal -> Throttled -> Shedding (per-workflow concurrency
/// cap, shed-priority demotion, hedge suspension), so the sheds
/// concentrate on the offender and the innocent p99 stays bounded.
fn degrade(scale: &Scale) {
    use faasflow_container::NodeCaps;
    use faasflow_core::{
        AdmissionConfig, DegradeConfig, HedgeConfig, OverloadConfig, ShedPolicy, SloConfig,
        SloObjective, WindowMode,
    };

    const OFFENDER_RATE: f64 = 150.0; // inv/min, far past capacity
    const INNOCENT_RATE: f64 = 20.0; // inv/min, comfortably inside it

    println!("\n=== Degrade: SLO burn-rate alerts steer per-workflow degradation ===");
    println!(
        "(Offender at {OFFENDER_RATE:.0} inv/min past its 8 s objective, Innocent at \
         {INNOCENT_RATE:.0} inv/min;"
    );
    println!(" 4 workers x 4 cores, shared deadline-aware admission; controller off vs on)");

    let offender = Workflow::steps(
        "Offender",
        Step::sequence(vec![
            Step::task("ingest", FunctionProfile::with_millis(120, 4 << 20)),
            Step::foreach("crunch", FunctionProfile::with_millis(900, 2 << 20), 8),
            Step::task("merge", FunctionProfile::with_millis(60, 0)),
        ]),
    );
    let innocent = Workflow::steps(
        "Innocent",
        Step::sequence(vec![
            Step::task("fetch", FunctionProfile::with_millis(60, 1 << 20)),
            Step::foreach("resize", FunctionProfile::with_millis(150, 1 << 20), 2),
            Step::task("publish", FunctionProfile::with_millis(30, 0)),
        ]),
    );
    // The objective names only the offender, so the controller tracks (and
    // degrades) only it; the innocent workflow is never throttled.
    let slo = SloConfig {
        objectives: vec![SloObjective {
            workflow: "Offender".to_string(),
            target: SimDuration::from_secs(8),
            error_budget: 0.1,
            fast_window: 8,
            slow_window: 16,
            fast_burn: 1.0,
            slow_burn: 1.0,
            window: WindowMode::Count,
        }],
    };
    let controller = DegradeConfig {
        initial_cap: 6,
        min_cap: 1,
        tighten: 0.5,
        recover_step: 1,
        cooldown: SimDuration::from_secs(3),
        shed_admit_fraction: 0.2,
        probe_fraction: 0.5,
        probe_successes: 4,
        suspend_hedges: true,
        demote_shed_priority: true,
    };

    let measure = scale.open;
    let cell = |degrade: Option<DegradeConfig>| {
        let config = ClusterConfig {
            mode: ScheduleMode::WorkerSp,
            faastore: true,
            workers: 4,
            node_caps: NodeCaps {
                cores: 4,
                ..NodeCaps::default()
            },
            qos_target: Some(SimDuration::from_secs(30)),
            overload: OverloadConfig {
                admission: Some(AdmissionConfig {
                    queue_capacity: 16,
                    policy: ShedPolicy::DeadlineAware,
                }),
                hedge: Some(HedgeConfig {
                    delay: SimDuration::from_millis(1540),
                    adaptive: None,
                }),
                ..OverloadConfig::default()
            },
            slo: Some(slo.clone()),
            degrade,
            ..ClusterConfig::default()
        };
        let mut cluster = Cluster::new(config).expect("valid config");
        let off_id = cluster
            .register(&offender, ClientConfig::ClosedLoop { invocations: 2 })
            .expect("registers");
        let inn_id = cluster
            .register(&innocent, ClientConfig::ClosedLoop { invocations: 2 })
            .expect("registers");
        cluster.run_until_idle();
        cluster.reset_metrics();
        cluster.switch_to_open_loop(off_id, OFFENDER_RATE, measure);
        cluster.switch_to_open_loop(inn_id, INNOCENT_RATE, (measure / 4).max(8));
        cluster.run_until_idle();
        cluster.report()
    };
    let results = parallel_map(vec![None, Some(controller)], scale.threads, cell);
    let (off_cell, on_cell) = (&results[0], &results[1]);

    let shed_pct = |wf: &faasflow_core::WorkflowReport| {
        if wf.sent == 0 {
            0.0
        } else {
            100.0 * wf.shed as f64 / wf.sent as f64
        }
    };
    println!(
        "{:<12} {:>9} {:>9} {:>7} | {:>9} {:>9} {:>7}",
        "", "Off p50", "Off p99", "shed%", "Inn p50", "Inn p99", "shed%"
    );
    println!(
        "{:<12} {:>9} {:>9} {:>7} | {:>9} {:>9} {:>7}",
        "controller", "(ms)", "(ms)", "", "(ms)", "(ms)", ""
    );
    rule(72);
    for (label, report) in [("off", off_cell), ("on", on_cell)] {
        let off_wf = report.workflow("Offender");
        let inn_wf = report.workflow("Innocent");
        println!(
            "{:<12} {:>9.0} {:>9.0} {:>7.1} | {:>9.0} {:>9.0} {:>7.1}",
            label,
            off_wf.e2e.median,
            off_wf.e2e.p99,
            shed_pct(off_wf),
            inn_wf.e2e.median,
            inn_wf.e2e.p99,
            shed_pct(inn_wf)
        );
    }
    rule(72);
    let d = &on_cell.degrade;
    let s = &on_cell.slo;
    println!(
        "alerts fired/resolved: {}/{}   controller: {} throttles, {} escalations, \
         {} tightenings",
        s.alerts_fired, s.alerts_resolved, d.throttles, d.escalations, d.tightenings
    );
    println!(
        "recovery: {} recoveries, {} probes ({} failed), {} restores, {} relapses",
        d.recoveries, d.probes, d.probe_failures, d.restores, d.relapses
    );
    println!(
        "actions while degraded: {} controller sheds, {} hedges suppressed, \
         {} demoted sheds",
        d.sheds, d.hedges_suppressed, d.demoted_sheds
    );

    for (label, report) in [("off", off_cell), ("on", on_cell)] {
        let mut shed_total = 0;
        for (name, wf) in &report.workflows {
            assert_eq!(
                wf.sent,
                wf.completed + wf.dead_lettered + wf.shed,
                "controller {label}/{name}: invocation leak"
            );
            shed_total += wf.shed;
        }
        assert_eq!(
            report.live_invocation_states, 0,
            "controller {label}: leaked engine state"
        );
        assert_eq!(
            shed_total,
            report.overload.shed + report.degrade.sheds,
            "controller {label}: shed accounting split disagrees"
        );
    }
    assert!(
        s.alerts_fired > 0 && d.throttles > 0,
        "the offender must trip its burn-rate alert and be throttled \
         ({} alerts, {} throttles)",
        s.alerts_fired,
        d.throttles
    );
    assert!(
        d.sheds > 0,
        "the degraded offender must absorb controller sheds"
    );
    for snap in &d.workflows {
        assert_eq!(
            snap.workflow, "Offender",
            "only the offender may be tracked by the controller"
        );
    }
    let (off_on, inn_on) = (on_cell.workflow("Offender"), on_cell.workflow("Innocent"));
    let inn_off = off_cell.workflow("Innocent");
    assert!(
        shed_pct(off_on) > shed_pct(inn_on),
        "sheds must concentrate on the offender (offender {:.1}% vs innocent {:.1}%)",
        shed_pct(off_on),
        shed_pct(inn_on)
    );
    assert!(
        shed_pct(inn_on) < shed_pct(inn_off),
        "the controller must spare the innocent workflow's admissions \
         (on {:.1}% shed vs off {:.1}%)",
        shed_pct(inn_on),
        shed_pct(inn_off)
    );
    assert!(
        inn_on.completed > inn_off.completed,
        "innocent goodput must rise with the controller on \
         (on {} vs off {} completed)",
        inn_on.completed,
        inn_off.completed
    );
    assert!(
        inn_on.e2e.p99 < 30_000.0,
        "the innocent p99 must stay inside the QoS target \
         (got {:.0} ms)",
        inn_on.e2e.p99
    );
    println!(
        "isolation holds: sheds concentrate on the offender ({:.1}% vs {:.1}% innocent),",
        shed_pct(off_on),
        shed_pct(inn_on)
    );
    println!(
        "innocent sheds fall {:.1}% -> {:.1}% (goodput {} -> {} completions) and its",
        shed_pct(inn_off),
        shed_pct(inn_on),
        inn_off.completed,
        inn_on.completed
    );
    println!(
        "p99 stays inside the 30 s QoS target ({:.0} ms) while the offender is degraded",
        inn_on.e2e.p99
    );
}

// ====================================================================
// placement — load- & locality-aware placement vs the legacy tie-break
// ====================================================================

/// Many independent small pipelines co-run in one cluster. Legacy
/// bin-packing re-offers nominal capacity on every deploy and breaks
/// capacity ties toward worker 0, so every merged group lands there and
/// the cluster serializes on one node. The load-aware layer sees residual
/// capacity, spreads by least-loaded scoring, and rebalances on skew; the
/// table compares the per-worker group shares, the end-to-end tail, and
/// the bytes forced through the remote storage node.
fn placement(scale: &Scale) {
    use faasflow_container::NodeCaps;

    const WORKERS: usize = 4;
    const PIPELINES: usize = 8;
    const RATE_PER_MIN: f64 = 90.0;

    println!("\n=== Placement: load-aware vs legacy (worker-0 tie-break bias) ===");
    println!(
        "({PIPELINES} independent pipelines, open loop {RATE_PER_MIN:.0} inv/min each, \
         {WORKERS} workers)"
    );
    // Peak memory close to the provisioned size keeps each workflow's
    // FaaStore quota (Eq. 2) tight — roughly one invocation's edges — so
    // queueing-driven invocation overlap spills puts to remote storage.
    let tight = |exec_ms: u64, out: u64| {
        FunctionProfile::with_millis(exec_ms, out).peak_mem((256 - 32 - 1) << 20)
    };
    let pipeline = |i: usize| {
        Workflow::steps(
            format!("pipe{i}"),
            Step::sequence(vec![
                Step::task("ingest", tight(30, 1 << 20)),
                Step::foreach("crunch", tight(90, 1 << 20), 4),
                Step::task("publish", tight(25, 0)),
            ]),
        )
    };
    let measure = (scale.open / 4).max(8);
    let cell = |pcfg: PlacementConfig| {
        let config = ClusterConfig {
            mode: ScheduleMode::WorkerSp,
            faastore: true,
            workers: WORKERS as u32,
            node_caps: NodeCaps {
                cores: 4,
                ..NodeCaps::default()
            },
            placement_config: pcfg,
            ..ClusterConfig::default()
        };
        let mut cluster = Cluster::new(config).expect("valid config");
        let ids: Vec<_> = (0..PIPELINES)
            .map(|i| {
                cluster
                    .register(&pipeline(i), ClientConfig::ClosedLoop { invocations: 1 })
                    .expect("registers")
            })
            .collect();
        cluster.run_until_idle();
        cluster.reset_metrics();
        for &id in &ids {
            cluster.switch_to_open_loop(id, RATE_PER_MIN, measure);
        }
        cluster.run_until_idle();
        let mut groups = vec![0usize; WORKERS];
        for &id in &ids {
            for row in cluster.distribution(id) {
                groups[row.worker.index() - 1] += row.groups;
            }
        }
        (groups, cluster.report())
    };
    let results = parallel_map(
        vec![PlacementConfig::legacy(), PlacementConfig::default()],
        scale.threads,
        cell,
    );
    let ((legacy_groups, legacy), (aware_groups, aware)) = (results[0].clone(), results[1].clone());

    let share0 = |groups: &[usize]| {
        let total: usize = groups.iter().sum();
        100.0 * groups[0] as f64 / total.max(1) as f64
    };
    let mean_p99 = |r: &faasflow_core::RunReport| {
        let p99s: Vec<f64> = r.workflows.values().map(|w| w.e2e.p99).collect();
        avg(&p99s)
    };
    let spread = |groups: &[usize]| {
        groups
            .iter()
            .enumerate()
            .map(|(w, g)| format!("w{w}:{g}"))
            .collect::<Vec<_>>()
            .join(" ")
    };
    println!(
        "{:<12} {:>22} {:>9} {:>12} {:>13}",
        "placement", "groups per worker", "w0 share", "mean p99", "remote bytes"
    );
    rule(74);
    for (label, groups, report) in [
        ("legacy", &legacy_groups, &legacy),
        ("load-aware", &aware_groups, &aware),
    ] {
        println!(
            "{:<12} {:>22} {:>8.0}% {:>9.0} ms {:>10} MB",
            label,
            spread(groups),
            share0(groups),
            mean_p99(report),
            mb(report.storage_node_bytes),
        );
    }
    rule(74);
    let p = &aware.placement;
    println!(
        "load-aware actions: {} partitions, {} capacity fallbacks, {} skew + {} recovery \
         rebalances ({} workflows moved)",
        p.load_aware_partitions,
        p.capacity_fallbacks,
        p.skew_rebalances,
        p.recovery_rebalances,
        p.rebalanced_workflows
    );

    for (label, report) in [("legacy", &legacy), ("load-aware", &aware)] {
        for (name, wf) in &report.workflows {
            assert_eq!(
                wf.sent,
                wf.completed + wf.dead_lettered + wf.shed,
                "{label}/{name}: invocation leak"
            );
        }
        assert_eq!(
            report.live_invocation_states, 0,
            "{label}: leaked engine state"
        );
    }
    assert!(
        share0(&aware_groups) < share0(&legacy_groups),
        "load-aware placement must cut worker 0's group share \
         (aware {:.0}% vs legacy {:.0}%)",
        share0(&aware_groups),
        share0(&legacy_groups)
    );
    assert!(
        mean_p99(&aware) < mean_p99(&legacy),
        "load-aware placement must improve the tail \
         (aware {:.0} ms vs legacy {:.0} ms)",
        mean_p99(&aware),
        mean_p99(&legacy)
    );
    assert!(
        aware.storage_node_bytes < legacy.storage_node_bytes,
        "load-aware placement must push fewer bytes through the storage node \
         (aware {} vs legacy {})",
        aware.storage_node_bytes,
        legacy.storage_node_bytes
    );
    println!("spreading the pipelines off worker 0 shortens its admission queue, so");
    println!("puts stay within each workflow's FaaStore budget (fewer remote spills)");
    println!("and the end-to-end tail drops.");
}

// ====================================================================
// grayfail — gray-failure detection, quarantine, zombie fencing
// ====================================================================

/// Gray failures degrade a worker while every fail-stop signal stays
/// green: it heartbeats, accepts work, and renews its lease — it is just
/// slow, stuck, or flaky. Part one sweeps those kinds over one worker and
/// compares the tail with the differential health detector off vs on:
/// the detector scores each worker's exec latency/failure rate against
/// the fleet median (MAD outlier test), quarantines the sustained
/// outlier, drains it, and half-open reinstates it once the window
/// heals. Part two injects the inverse problem — an asymmetric link
/// partition whose control plane passes while one data direction stalls,
/// plus a forced false suspicion: the lease expires under a still-running
/// worker, re-dispatch races the zombie, and its late completions must
/// die on the admission fences (`zombie_fenced`).
fn grayfail(scale: &Scale) {
    use faasflow_container::NodeCaps;
    use faasflow_core::{GrayFault, GrayFaultKind, HealthConfig, RunReport};

    const WORKERS: u32 = 4;
    const PIPELINES: usize = 6;
    const RATE_PER_MIN: f64 = 30.0;

    println!("\n=== Grayfail: gray-failure detection & worker quarantine ===");
    println!(
        "({PIPELINES} pipelines open loop {RATE_PER_MIN:.0} inv/min each on {WORKERS} \
         workers x 2 cores;"
    );
    println!(" worker 1 degrades gray over t=6-36s while heartbeating normally;");
    println!(" MAD health detector off vs on, quarantine drains + reinstates)");

    let pipeline = |i: usize| {
        Workflow::steps(
            format!("pipe{i}"),
            Step::sequence(vec![
                Step::task("ingest", FunctionProfile::with_millis(60, 1 << 20)),
                Step::foreach("crunch", FunctionProfile::with_millis(300, 1 << 20), 4),
                Step::task("publish", FunctionProfile::with_millis(30, 0)),
            ]),
        )
    };
    let measure = (scale.open / 4).max(10);
    let window = (
        SimDuration::from_secs(6),
        SimDuration::from_secs(30), // heals mid-run so reinstatement is observable
    );
    let cell = |(kind, health): (GrayFaultKind, Option<HealthConfig>)| {
        let config = ClusterConfig {
            workers: WORKERS,
            node_caps: NodeCaps {
                cores: 2,
                ..NodeCaps::default()
            },
            // Load-aware placement spreads the pipelines, so the gray
            // worker owns a real share of the fleet before it degrades.
            placement_config: PlacementConfig::default(),
            fault: FaultPlan {
                gray_faults: vec![GrayFault {
                    worker: 1,
                    at: window.0,
                    duration: window.1,
                    kind,
                }],
                ..FaultPlan::default()
            },
            health,
            ..faasflow_config()
        };
        let mut cluster = Cluster::new(config).expect("valid config");
        for i in 0..PIPELINES {
            cluster
                .register(
                    &pipeline(i),
                    ClientConfig::OpenLoop {
                        per_minute: RATE_PER_MIN,
                        invocations: measure,
                    },
                )
                .expect("registers");
        }
        cluster.run_until_idle();
        cluster.report()
    };
    let kinds: [(&str, GrayFaultKind); 4] = [
        ("slowdown x4", GrayFaultKind::ExecSlowdown { factor: 4.0 }),
        ("slowdown x8", GrayFaultKind::ExecSlowdown { factor: 8.0 }),
        ("stuck executor", GrayFaultKind::StuckExecutor),
        (
            "flaky 75% fail",
            GrayFaultKind::FlakyExec { failure_rate: 0.75 },
        ),
    ];
    let mut cells = Vec::new();
    for &(_, kind) in &kinds {
        cells.push((kind, None));
        cells.push((kind, Some(HealthConfig::default())));
    }
    let results = parallel_map(cells, scale.threads, cell);

    let mean_p99 = |r: &RunReport| {
        let sum: f64 = r.workflows.values().map(|w| w.e2e.p99).sum();
        sum / r.workflows.len().max(1) as f64
    };
    println!(
        "{:<16} {:>11} {:>11} {:>6} {:>6} {:>7} {:>8}",
        "gray fault", "off p99", "on p99", "cut%", "quar", "reinst", "orphans"
    );
    println!(
        "{:<16} {:>11} {:>11} {:>6} {:>6} {:>7} {:>8}",
        "", "(ms)", "(ms)", "", "", "", ""
    );
    rule(72);
    for (i, (label, _)) in kinds.iter().enumerate() {
        let (off, on) = (&results[2 * i], &results[2 * i + 1]);
        let (off_p99, on_p99) = (mean_p99(off), mean_p99(on));
        let cut = 100.0 * (1.0 - on_p99 / off_p99.max(1e-9));
        println!(
            "{:<16} {:>11.0} {:>11.0} {:>6.0} {:>6} {:>7} {:>8}",
            label,
            off_p99,
            on_p99,
            cut,
            on.health.quarantines,
            on.health.reinstatements,
            on.health.quarantine_orphans,
        );
    }
    rule(72);

    for (i, (label, _)) in kinds.iter().enumerate() {
        for (tag, report) in [("off", &results[2 * i]), ("on", &results[2 * i + 1])] {
            for (name, wf) in &report.workflows {
                assert_eq!(
                    wf.sent,
                    wf.completed + wf.dead_lettered + wf.shed,
                    "{label}/{tag}/{name}: invocation leak"
                );
            }
            assert_eq!(
                report.live_invocation_states, 0,
                "{label}/{tag}: leaked engine state"
            );
            let f = &report.faults;
            assert_eq!(
                f.dead_letter_retries_exhausted
                    + f.dead_letter_crash_orphan
                    + f.dead_letter_journal_unrecoverable
                    + f.dead_letter_quarantine_orphan,
                f.dead_letters,
                "{label}/{tag}: every dead letter carries exactly one reason"
            );
        }
        let (off, on) = (&results[2 * i], &results[2 * i + 1]);
        assert_eq!(
            off.health.evaluations, 0,
            "{label}: detector off must never evaluate"
        );
        assert_eq!(
            off.health.quarantines, 0,
            "{label}: detector off must never quarantine"
        );
        assert!(
            on.health.quarantines >= 1,
            "{label}: the detector must quarantine the gray worker \
             ({} quarantines)",
            on.health.quarantines
        );
    }
    for idx in [1usize, 2] {
        let (label, _) = kinds[idx];
        let (off_p99, on_p99) = (mean_p99(&results[2 * idx]), mean_p99(&results[2 * idx + 1]));
        assert!(
            on_p99 < off_p99,
            "{label}: quarantining the gray worker must cut the tail \
             (on {on_p99:.0} ms vs off {off_p99:.0} ms)"
        );
    }
    {
        let (off_p99, on_p99) = (mean_p99(&results[2]), mean_p99(&results[3]));
        println!(
            "grayfail: detector on cuts p99 under sustained gray faults \
             (x8 slowdown {off_p99:.0} -> {on_p99:.0} ms)"
        );
    }

    // --- part two: asymmetric partition, false suspicion, fencing ---
    println!("\n--- asymmetric partition: control up, data-plane down one way ---");
    println!("(legacy placement pins the group to worker 0; its outbound flows stall");
    println!(" over t=3-15s while heartbeats keep passing, and the master is made to");
    println!(" suspect it: the lease force-expires, re-dispatch races the zombie)");
    let heavy = Workflow::steps(
        "Heavy",
        Step::sequence(vec![
            Step::task("ingest", FunctionProfile::with_millis(200, 4 << 20)),
            Step::foreach("crunch", FunctionProfile::with_millis(2000, 4 << 20), 6),
            Step::task("merge", FunctionProfile::with_millis(100, 0)),
        ]),
    );
    let n = scale.closed.min(40);
    let run = |config: ClusterConfig| {
        let mut cluster = Cluster::new(ClusterConfig {
            workers: WORKERS,
            fault: FaultPlan {
                gray_faults: vec![GrayFault {
                    worker: 0,
                    at: SimDuration::from_secs(3),
                    duration: SimDuration::from_secs(12),
                    kind: GrayFaultKind::AsymmetricPartition {
                        inbound: false,
                        expire_lease: true,
                    },
                }],
                ..FaultPlan::default()
            },
            health: Some(HealthConfig::default()),
            ..config
        })
        .expect("valid config");
        cluster
            .register(&heavy, ClientConfig::ClosedLoop { invocations: n })
            .expect("registers");
        cluster.run_until_idle();
        cluster.report()
    };
    let modes = parallel_map(vec![master_config(), faasflow_config()], scale.threads, run);
    let (master, worker) = (&modes[0], &modes[1]);
    println!(
        "{:<28} {:>16} {:>16}",
        "metric", "HyperFlow(MSP)", "FaaSFlow(WSP)"
    );
    rule(62);
    let mrow = |label: &str, m: u64, w: u64| println!("{label:<28} {m:>16} {w:>16}");
    let m = master.workflow("Heavy");
    let w = worker.workflow("Heavy");
    mrow("invocations sent", m.sent, w.sent);
    mrow("completed", m.completed, w.completed);
    mrow("dead-lettered", m.dead_lettered, w.dead_lettered);
    mrow(
        "lease expiries (suspicion)",
        master.faults.lease_expiries,
        worker.faults.lease_expiries,
    );
    mrow(
        "crash re-dispatches",
        master.faults.crash_redispatches,
        worker.faults.crash_redispatches,
    );
    mrow(
        "zombies fenced",
        master.health.zombie_fenced,
        worker.health.zombie_fenced,
    );
    mrow(
        "data flows stalled",
        master.health.stalled_flows,
        worker.health.stalled_flows,
    );
    mrow(
        "quarantine orphans",
        master.health.quarantine_orphans,
        worker.health.quarantine_orphans,
    );
    mrow(
        "live states (leak check)",
        master.live_invocation_states,
        worker.live_invocation_states,
    );
    rule(62);
    for (label, report) in [("MasterSP", master), ("WorkerSP", worker)] {
        let wf = report.workflow("Heavy");
        assert_eq!(
            wf.sent,
            wf.completed + wf.dead_lettered + wf.shed,
            "{label}: every invocation must reach exactly one terminal outcome"
        );
        assert_eq!(
            report.live_invocation_states, 0,
            "{label}: no leaked engine state"
        );
        assert!(
            report.faults.lease_expiries >= 1,
            "{label}: the forced false suspicion must expire the lease"
        );
        let f = &report.faults;
        assert_eq!(
            f.dead_letter_retries_exhausted
                + f.dead_letter_crash_orphan
                + f.dead_letter_journal_unrecoverable
                + f.dead_letter_quarantine_orphan,
            f.dead_letters,
            "{label}: every dead letter carries exactly one reason"
        );
    }
    let fenced = master.health.zombie_fenced + worker.health.zombie_fenced;
    assert!(
        fenced >= 1,
        "the re-dispatch race must fence at least one zombie completion \
         (MSP {} + WSP {})",
        master.health.zombie_fenced,
        worker.health.zombie_fenced
    );
    println!("grayfail: zombies fenced after false suspicion: {fenced} late completions discarded");
    println!("grayfail: conservation held in every cell; no engine state leaked");
    println!("a lease only proves a worker answers — not that it makes progress; the");
    println!("detector catches what fail-stop misses, and admission fencing makes the");
    println!("false-suspicion race safe: the suspect's late completions cannot land.");
}

// ====================================================================
// trace — causal spans, resource series, exporters, attribution
// ====================================================================

/// Runs WordCount + Video under both schedule patterns with tracing and
/// resource sampling on, builds and validates the span forests, writes a
/// Perfetto-loadable Chrome trace and a Prometheus snapshot per mode, and
/// prints the phase-attribution table. The span-derived sums are asserted
/// to reconcile with the independently-accumulated report histograms.
fn trace_scenario(scale: &Scale, out_dir: &str) {
    use faasflow_obs::{
        attribute, build_forest, chrome_trace, parse_json, prometheus_snapshot,
        render_attribution_table, PhaseBreakdown,
    };

    println!("\n=== Trace: causal spans, resource series, exporters ===");
    let n = scale.closed.min(25);
    println!("(WordCount + Video, {n} closed-loop invocations each, 100 ms sampling)");
    std::fs::create_dir_all(out_dir).expect("trace output directory");
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1.0);
    let mut names: std::collections::HashMap<faasflow_sim::WorkflowId, String> = Default::default();
    let mut sections: Vec<(String, Vec<PhaseBreakdown>)> = Vec::new();
    for (label, base) in [
        ("MasterSP", master_config()),
        ("WorkerSP", faasflow_config()),
    ] {
        // Fresh cluster, no warm-up: the trace must cover exactly the
        // invocations the metrics cover, or reconciliation is meaningless.
        let mut cluster = Cluster::new(ClusterConfig {
            trace: true,
            sample_every: Some(SimDuration::from_millis(100)),
            ..base
        })
        .expect("valid experiment configuration");
        for bench in [Benchmark::WordCount, Benchmark::VideoFfmpeg] {
            cluster
                .register(
                    &bench.workflow(),
                    ClientConfig::ClosedLoop { invocations: n },
                )
                .expect("registers");
        }
        cluster.run_until_idle();
        let report = cluster.report();
        let profile = cluster.loop_profile();
        let events = cluster.take_trace();
        assert_eq!(report.trace_dropped, 0, "{label}: run fits the trace cap");
        let forest = build_forest(&events);
        forest.validate().expect("span forest well-formed");
        let rows = attribute(&forest);
        for row in &rows {
            let name = cluster
                .workflow_name(row.workflow)
                .expect("registered workflow")
                .to_string();
            let wf = report.workflow(&name);
            assert!(
                close(row.e2e_ms, wf.e2e.sum),
                "{label}/{name}: span e2e {} != report {}",
                row.e2e_ms,
                wf.e2e.sum
            );
            assert!(
                close(
                    row.transfer_local_ms + row.transfer_remote_ms,
                    wf.transfer_total.sum
                ),
                "{label}/{name}: span transfer {} != report {}",
                row.transfer_local_ms + row.transfer_remote_ms,
                wf.transfer_total.sum
            );
            names.insert(row.workflow, name);
        }
        let slug = label.to_lowercase();
        let chrome = chrome_trace(&forest, report.resources.as_ref());
        parse_json(&chrome).expect("chrome export parses as JSON");
        let json_path = format!("{out_dir}/trace_{slug}.json");
        std::fs::write(&json_path, &chrome).expect("trace JSON written");
        let prom_path = format!("{out_dir}/metrics_{slug}.prom");
        std::fs::write(&prom_path, prometheus_snapshot(&report)).expect("prom snapshot written");
        println!(
            "{label}: {} events -> {} spans over {} invocations; wrote {json_path} and {prom_path}",
            events.len(),
            forest.span_count(),
            forest.trees.len()
        );
        println!(
            "  event loop: {} events in {:.3} s wall ({:.0} events/s)",
            profile.events_processed,
            profile.wall_secs,
            profile.events_per_sec()
        );
        let mut per_event = profile.per_event.clone();
        per_event.sort_by(|a, b| b.total_secs.total_cmp(&a.total_secs));
        for row in per_event.iter().take(3) {
            println!(
                "    {:<24} {:>9} events {:>9.1} us total",
                row.name,
                row.count,
                row.total_secs * 1e6
            );
        }
        sections.push((label.to_string(), rows));
    }
    println!("\nphase attribution (mean ms per invocation):");
    print!(
        "{}",
        render_attribution_table(&sections, |wf| names[&wf].clone())
    );
    println!("span-derived e2e and transfer sums reconcile with the report histograms.");
    println!("open the trace_*.json files at ui.perfetto.dev to browse the spans.");
}

// ====================================================================
// critpath — observed critical path and what-if latency bounds
// ====================================================================

fn critpath_scenario(scale: &Scale) {
    use faasflow_obs::{
        aggregate, build_forest, extract, render_critpath_table, render_whatif_table, what_if_all,
        CritPhase, WorkflowWhatIf,
    };
    use faasflow_workloads::deterministic_exec;

    println!("\n=== Critical path: observed bottleneck chain & what-if bounds ===");
    let n = scale.closed.min(20);
    println!("(real-world benchmarks, deterministic exec, {n} closed-loop invocations each)");
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1.0);
    let mut names: std::collections::HashMap<faasflow_sim::WorkflowId, String> = Default::default();
    let mut statics: std::collections::HashMap<faasflow_sim::WorkflowId, f64> = Default::default();
    let mut cp_sections = Vec::new();
    let mut wi_sections: Vec<(String, Vec<WorkflowWhatIf>)> = Vec::new();
    for (label, base) in [
        ("MasterSP", master_config()),
        ("WorkerSP", faasflow_config()),
    ] {
        let mut cluster = Cluster::new(ClusterConfig {
            trace: true,
            ..base
        })
        .expect("valid experiment configuration");
        for bench in Benchmark::REAL_WORLD {
            // Zero exec variation so the observed exec-only floor provably
            // dominates the DAG's static critical_path_exec() bound.
            cluster
                .register(
                    &deterministic_exec(&bench.workflow()),
                    ClientConfig::ClosedLoop { invocations: n },
                )
                .expect("registers");
        }
        cluster.run_until_idle();
        let report = cluster.report();
        assert_eq!(report.trace_dropped, 0, "{label}: run fits the trace cap");
        // Non-consuming accessor: the cluster keeps its trace, so the
        // report and the forest describe the same run.
        let forest = build_forest(cluster.trace());
        forest.validate().expect("span forest well-formed");
        let paths = extract(&forest);
        for (path, tree) in paths.iter().zip(&forest.trees) {
            // The chain is contiguous, causally ordered, and sums exactly
            // to the invocation makespan.
            path.validate(tree)
                .unwrap_or_else(|e| panic!("{label}: invalid critical path: {e}"));
            let static_exec = cluster
                .critical_exec(path.workflow)
                .expect("registered workflow")
                .as_millis_f64();
            let exec = path.phase_total(CritPhase::Exec).as_millis_f64();
            assert!(
                exec >= static_exec - 1e-6,
                "{label}/{}: observed exec {exec} ms below static bound {static_exec} ms",
                path.workflow
            );
            statics.insert(path.workflow, static_exec);
            if let Some(name) = cluster.workflow_name(path.workflow) {
                names.insert(path.workflow, name.to_string());
            }
        }
        let rows = aggregate(&paths);
        for row in &rows {
            let share_sum: f64 = CritPhase::ALL.iter().map(|&p| row.share(p)).sum();
            assert!(
                row.total_ms == 0.0 || close(share_sum, 1.0),
                "{label}/{}: phase shares sum to {share_sum}, not 1",
                row.workflow
            );
        }
        let bounds = what_if_all(&rows);
        println!(
            "{label}: {} invocations validated; every chain sums to its makespan",
            paths.len()
        );
        cp_sections.push((label.to_string(), rows));
        wi_sections.push((label.to_string(), bounds));
    }
    println!("\ncritical-path phase shares (chain ms = makespan, % of chain):");
    print!(
        "{}",
        render_critpath_table(&cp_sections, |wf| names[&wf].clone())
    );
    println!("\nwhat-if upper bounds (mean ms per invocation, max speedup):");
    print!(
        "{}",
        render_whatif_table(
            &wi_sections,
            |wf| names[&wf].clone(),
            |wf| statics.get(&wf).copied(),
        )
    );
    println!("observed >= exec-only >= static critical_path_exec() on every invocation.");
    println!("the gap between columns is the most any one optimization can recover.");
}

// ====================================================================
// perf — hot-path microbenchmarks and BENCH_kernel.json
// ====================================================================

/// One microbenchmark row. `baseline: "live"` rows run the pre-overhaul
/// implementation (preserved in `faasflow_bench::legacy`) back to back
/// with the current one in this process, so machine state cancels out;
/// `baseline: "recorded"` rows (whole-cluster runs, where the old code no
/// longer exists) compare against medians recorded on the pre-overhaul
/// tree on the same machine class.
#[derive(serde::Serialize)]
struct BenchEntry {
    name: &'static str,
    baseline: &'static str,
    baseline_us: f64,
    measured_us: f64,
    speedup: f64,
}

/// The machine-readable artifact behind `repro perf`. Regenerate with
/// `cargo run --release -p faasflow-bench --bin repro -- perf` from the
/// repository root (see DESIGN.md, "Performance model").
#[derive(serde::Serialize)]
struct BenchReport {
    schema: &'static str,
    note: &'static str,
    quick: bool,
    /// Wall-clock of `repro all` (seconds): recorded on the pre-overhaul
    /// tree vs the current tree, same machine, default scale.
    repro_all_secs_baseline: f64,
    repro_all_secs_current: f64,
    entries: Vec<BenchEntry>,
}

/// Median wall-clock of `reps` runs of `f`, in microseconds.
fn median_us(reps: usize, mut f: impl FnMut() -> u64) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        samples.push(start.elapsed().as_secs_f64() * 1e6);
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// The paper's storage topology: 1 storage node at 50 MB/s + 7 workers at
/// 10 Gbit/s (mirrors `benches/flownet.rs`).
fn storage_cluster() -> Vec<faasflow_net::NicSpec> {
    let mut nics = vec![faasflow_net::NicSpec::symmetric(50e6)];
    nics.extend(std::iter::repeat_n(
        faasflow_net::NicSpec::symmetric(1.25e9),
        7,
    ));
    nics
}

/// Hot-path microbenchmarks (DES event queue, flow network, end-to-end
/// invocation cost), printed as a table and emitted to `BENCH_kernel.json`.
/// Event-queue and flow-network baselines run the preserved pre-overhaul
/// implementations (`faasflow_bench::legacy`) live in this process.
fn perf(quick: bool) {
    use faasflow_bench::legacy::{LegacyEventQueue, LegacyFlowNet};
    use faasflow_sim::{EventQueue, SimTime};

    println!("\n=== Perf: hot-path microbenchmarks (baseline = pre-overhaul code) ===");
    let reps = if quick { 5 } else { 15 };
    let mut entries: Vec<BenchEntry> = Vec::new();
    let mut push =
        |name: &'static str, baseline: &'static str, baseline_us: f64, measured_us: f64| {
            entries.push(BenchEntry {
                name,
                baseline,
                baseline_us,
                measured_us,
                speedup: baseline_us / measured_us,
            });
        };

    // DES event queue: bulk schedule + drain (random times).
    for (n, name) in [
        (10_000usize, "event_queue/push_pop/10k"),
        (100_000, "event_queue/push_pop/100k"),
    ] {
        let mut rng = SimRng::seed_from(1);
        let times: Vec<u64> = (0..n).map(|_| rng.next_below(1_000_000_000)).collect();
        let base = median_us(reps, || {
            let mut q = LegacyEventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(t), i);
            }
            let mut acc = 0usize;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            acc as u64
        });
        let us = median_us(reps, || {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(t), i);
            }
            let mut acc = 0usize;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            acc as u64
        });
        push(name, "live", base, us);
    }

    // DES event queue: the flow-timer pattern (schedule, cancel previous,
    // reschedule) — cancellation cost dominates.
    for (n, name) in [
        (10_000usize, "event_queue/cancel_heavy/10k"),
        (100_000, "event_queue/cancel_heavy/100k"),
    ] {
        let base = median_us(reps, || {
            let mut q = LegacyEventQueue::new();
            let mut last = None;
            for i in 0..n {
                if let Some(id) = last.take() {
                    q.cancel(id);
                }
                last = Some(q.schedule(SimTime::from_nanos(i as u64 + 1), i));
            }
            let mut count = 0u64;
            while q.pop().is_some() {
                count += 1;
            }
            count
        });
        let us = median_us(reps, || {
            let mut q = EventQueue::new();
            let mut last = None;
            for i in 0..n {
                if let Some(id) = last.take() {
                    q.cancel(id);
                }
                last = Some(q.schedule(SimTime::from_nanos(i as u64 + 1), i));
            }
            let mut count = 0u64;
            while q.pop().is_some() {
                count += 1;
            }
            count
        });
        push(name, "live", base, us);
    }

    // Flow network: arrivals and departures with the completion horizon
    // observed after every mutation (one max-min fill per operation).
    for (flows, name) in [
        (64usize, "flownet/arrival_departure_observed/64"),
        (256, "flownet/arrival_departure_observed/256"),
    ] {
        let mut rng = SimRng::seed_from(3);
        let endpoints: Vec<(NodeId, NodeId)> = (0..flows)
            .map(|_| {
                let w = NodeId::from(1 + rng.next_below(7) as usize);
                (NodeId::new(0), w)
            })
            .collect();
        let base = median_us(reps, || {
            let mut net: LegacyFlowNet<usize> = LegacyFlowNet::new(storage_cluster());
            let ids: Vec<_> = endpoints
                .iter()
                .enumerate()
                .map(|(i, &(src, dst))| {
                    let id = net.start_flow(src, dst, 1 << 20, i, SimTime::ZERO);
                    let _ = net.next_completion();
                    id
                })
                .collect();
            for id in ids {
                net.cancel_flow(id, SimTime::ZERO);
                let _ = net.next_completion();
            }
            net.active_flows() as u64
        });
        let us = median_us(reps, || {
            let mut net: faasflow_net::FlowNet<usize> =
                faasflow_net::FlowNet::new(storage_cluster());
            let ids: Vec<_> = endpoints
                .iter()
                .enumerate()
                .map(|(i, &(src, dst))| {
                    let id = net.start_flow(src, dst, 1 << 20, i, SimTime::ZERO);
                    let _ = net.next_completion();
                    id
                })
                .collect();
            for id in ids {
                net.cancel_flow(id, SimTime::ZERO);
                let _ = net.next_completion();
            }
            net.active_flows() as u64
        });
        push(name, "live", base, us);
    }

    // Flow network: drive 64 flows to completion through the shared
    // storage NIC (integration + departures + timer horizon reads).
    {
        let base = median_us(reps, || {
            let mut net: LegacyFlowNet<usize> = LegacyFlowNet::new(storage_cluster());
            for i in 0..64 {
                let w = NodeId::from(1 + (i % 7));
                net.start_flow(NodeId::new(0), w, 4 << 20, i, SimTime::ZERO);
            }
            let mut delivered = 0u64;
            while let Some(t) = net.next_completion() {
                for (_, f) in net.take_completed(t) {
                    delivered += f.bytes;
                }
            }
            delivered
        });
        let us = median_us(reps, || {
            let mut net: faasflow_net::FlowNet<usize> =
                faasflow_net::FlowNet::new(storage_cluster());
            for i in 0..64 {
                let w = NodeId::from(1 + (i % 7));
                net.start_flow(NodeId::new(0), w, 4 << 20, i, SimTime::ZERO);
            }
            let mut delivered = 0u64;
            while let Some(t) = net.next_completion() {
                for (_, f) in net.take_completed(t) {
                    delivered += f.bytes;
                }
            }
            delivered
        });
        push("flownet/drain_64_flows_to_completion", "live", base, us);
    }

    // Placement kernel: Algorithm 1 partition of Genome-50 onto 7 loaded
    // workers — the legacy index tie-break vs the load-aware scoring
    // (residual capacity, p99/memory tie-breaks, locality affinity). The
    // delta is the placement layer's per-partition cost on the hot path.
    {
        let parser = DagParser::default();
        let wf = scientific::genome(50);
        let dag = parser.parse(&wf).expect("genome parses");
        let metrics = RuntimeMetrics::initial(&dag);
        let workers: Vec<WorkerInfo> = (0..7u32)
            .map(|i| {
                WorkerInfo::new(NodeId::new(i + 1), 40).with_load(WorkerLoad {
                    queued: i,
                    running: (i * 3) % 5,
                    mem_used_bytes: u64::from(i) << 20,
                    recent_p99_ms: 100 + 40 * i,
                })
            })
            .collect();
        let bench = |sched: GraphScheduler| {
            let mut rng = SimRng::seed_from(7);
            median_us(reps, || {
                let a = sched
                    .partition(
                        &dag,
                        &workers,
                        &metrics,
                        &ContentionSet::default(),
                        u64::MAX,
                        &mut rng,
                    )
                    .expect("partition succeeds");
                a.groups.len() as u64
            })
        };
        let base = bench(GraphScheduler::new(PartitionConfig {
            placement_config: PlacementConfig::legacy(),
            ..PartitionConfig::default()
        }));
        let us = bench(GraphScheduler::new(PartitionConfig::default()));
        push("scheduler/partition_gen50/load_aware", "live", base, us);
    }

    // Whole-cluster: five closed-loop invocations end to end (mirrors
    // `benches/cluster.rs`, FaaSFlow-FaaStore mode). The pre-overhaul
    // cluster no longer exists, so these rows use recorded medians.
    for (b, name, base) in [
        (Benchmark::WordCount, "cluster/faasflow_faastore/WC", 343.0),
        (Benchmark::Genome, "cluster/faasflow_faastore/Gen", 5_560.0),
    ] {
        let us = median_us(reps, || {
            let mut cluster = Cluster::new(faasflow_config()).expect("valid config");
            cluster
                .register(&b.workflow(), ClientConfig::ClosedLoop { invocations: 5 })
                .expect("registers");
            cluster.run_until_idle();
            cluster.report().workflow(b.short_name()).completed
        });
        push(name, "recorded", base, us);
    }

    println!(
        "{:<42} {:>12} {:>12} {:>9}",
        "microbench", "before (µs)", "after (µs)", "speedup"
    );
    rule(78);
    for e in &entries {
        println!(
            "{:<42} {:>12.1} {:>12.1} {:>8.1}x",
            e.name, e.baseline_us, e.measured_us, e.speedup
        );
    }
    rule(78);

    let report = BenchReport {
        schema: "faasflow-bench/kernel/v1",
        note: "baseline=live rows run the preserved pre-overhaul implementation \
               (faasflow_bench::legacy: BinaryHeap + tombstone event queue, full \
               max-min recompute per mutation) back to back with the current code; \
               baseline=recorded rows compare against medians recorded on the \
               pre-overhaul tree, same machine class. \
               Regenerate: cargo run --release -p faasflow-bench --bin repro -- perf",
        quick,
        repro_all_secs_baseline: REPRO_ALL_SECS_BASELINE,
        repro_all_secs_current: REPRO_ALL_SECS_CURRENT,
        entries,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_kernel.json", json + "\n").expect("BENCH_kernel.json written");
    println!("wrote BENCH_kernel.json");
}

/// Wall-clock of `cargo run --release -- all` (default scale) recorded on
/// the pre-overhaul tree and on this tree, same machine.
const REPRO_ALL_SECS_BASELINE: f64 = 13.5;
const REPRO_ALL_SECS_CURRENT: f64 = 5.1; // refreshed alongside BENCH_kernel.json

fn avg(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}
