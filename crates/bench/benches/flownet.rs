//! Microbenchmarks of the max-min fair flow network: the progressive
//! filling recompute runs on every flow arrival/departure, so it dominates
//! data-heavy experiments (Cycles moves >1 GB per invocation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faasflow_net::{FlowNet, NicSpec};
use faasflow_sim::{NodeId, SimRng, SimTime};

fn storage_cluster() -> Vec<NicSpec> {
    // 1 storage node at 50 MB/s + 7 workers at 10 Gbit/s (the paper's
    // topology).
    let mut nics = vec![NicSpec::symmetric(50e6)];
    nics.extend(std::iter::repeat_n(NicSpec::symmetric(1.25e9), 7));
    nics
}

fn bench_recompute(c: &mut Criterion) {
    let mut group = c.benchmark_group("flownet_recompute");
    for &flows in &[8usize, 64, 256] {
        group.bench_with_input(
            BenchmarkId::new("arrival_departure", flows),
            &flows,
            |b, &flows| {
                let mut rng = SimRng::seed_from(3);
                let endpoints: Vec<(NodeId, NodeId)> = (0..flows)
                    .map(|_| {
                        let w = NodeId::from(1 + rng.next_below(7) as usize);
                        (NodeId::new(0), w)
                    })
                    .collect();
                b.iter(|| {
                    let mut net: FlowNet<usize> = FlowNet::new(storage_cluster());
                    // `flows` arrivals at one instant: rates recompute
                    // lazily, so the batch costs one fill at the first
                    // rate read...
                    let ids: Vec<_> = endpoints
                        .iter()
                        .enumerate()
                        .map(|(i, &(src, dst))| net.start_flow(src, dst, 1 << 20, i, SimTime::ZERO))
                        .collect();
                    // ...then `flows` departures.
                    for id in ids {
                        net.cancel_flow(id, SimTime::ZERO);
                    }
                    net.active_flows()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("arrival_departure_observed", flows),
            &flows,
            |b, &flows| {
                let mut rng = SimRng::seed_from(3);
                let endpoints: Vec<(NodeId, NodeId)> = (0..flows)
                    .map(|_| {
                        let w = NodeId::from(1 + rng.next_below(7) as usize);
                        (NodeId::new(0), w)
                    })
                    .collect();
                b.iter(|| {
                    let mut net: FlowNet<usize> = FlowNet::new(storage_cluster());
                    // Reading the completion horizon after every mutation
                    // forces a fill per arrival/departure — the worst case
                    // the incremental recompute has to win.
                    let ids: Vec<_> = endpoints
                        .iter()
                        .enumerate()
                        .map(|(i, &(src, dst))| {
                            let id = net.start_flow(src, dst, 1 << 20, i, SimTime::ZERO);
                            let _ = net.next_completion();
                            id
                        })
                        .collect();
                    for id in ids {
                        net.cancel_flow(id, SimTime::ZERO);
                        let _ = net.next_completion();
                    }
                    net.active_flows()
                });
            },
        );
    }
    group.finish();
}

fn bench_drain(c: &mut Criterion) {
    c.bench_function("flownet/drain_64_flows_to_completion", |b| {
        b.iter(|| {
            let mut net: FlowNet<usize> = FlowNet::new(storage_cluster());
            for i in 0..64 {
                let w = NodeId::from(1 + (i % 7));
                net.start_flow(NodeId::new(0), w, 4 << 20, i, SimTime::ZERO);
            }
            let mut delivered = 0u64;
            while let Some(t) = net.next_completion() {
                for (_, f) in net.take_completed(t) {
                    delivered += f.bytes;
                }
            }
            delivered
        });
    });
}

criterion_group!(benches, bench_recompute, bench_drain);
criterion_main!(benches);
