//! Microbenchmark of Algorithm 1 — the criterion counterpart of Figure 16:
//! partitioning cost versus workflow size on the Genome generator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faasflow_scheduler::{ContentionSet, GraphScheduler, RuntimeMetrics, WorkerInfo};
use faasflow_sim::{NodeId, SimRng};
use faasflow_wdl::DagParser;
use faasflow_workloads::scientific;

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1_genome");
    let parser = DagParser::default();
    let scheduler = GraphScheduler::default();
    let workers: Vec<WorkerInfo> = (0..7)
        .map(|i| WorkerInfo::new(NodeId::new(i + 1), 40))
        .collect();
    for &nodes in &[10usize, 25, 50, 100, 200] {
        let dag = parser
            .parse(&scientific::genome(nodes))
            .expect("genome parses");
        let metrics = RuntimeMetrics::initial(&dag);
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            let mut rng = SimRng::seed_from(7);
            b.iter(|| {
                scheduler
                    .partition(
                        &dag,
                        &workers,
                        &metrics,
                        &ContentionSet::default(),
                        u64::MAX,
                        &mut rng,
                    )
                    .expect("partition succeeds")
                    .groups
                    .len()
            });
        });
    }
    group.finish();
}

fn bench_critical_path(c: &mut Criterion) {
    let parser = DagParser::default();
    let dag = parser
        .parse(&scientific::genome(200))
        .expect("genome parses");
    c.bench_function("critical_path_200_nodes", |b| {
        b.iter(|| dag.critical_path().0.len());
    });
}

criterion_group!(benches, bench_partition, bench_critical_path);
criterion_main!(benches);
