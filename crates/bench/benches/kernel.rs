//! Microbenchmarks of the DES kernel: event queue and RNG throughput.
//! These bound how fast every simulated experiment can run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faasflow_sim::{EventQueue, SimRng, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for &n in &[1_000usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            let mut rng = SimRng::seed_from(1);
            let times: Vec<u64> = (0..n).map(|_| rng.next_below(1_000_000_000)).collect();
            b.iter(|| {
                let mut q = EventQueue::new();
                for (i, &t) in times.iter().enumerate() {
                    q.schedule(SimTime::from_nanos(t), i);
                }
                let mut acc = 0usize;
                while let Some((_, v)) = q.pop() {
                    acc = acc.wrapping_add(v);
                }
                acc
            });
        });
        group.bench_with_input(BenchmarkId::new("cancel_heavy", n), &n, |b, &n| {
            // The flow timer pattern: schedule, cancel, reschedule.
            b.iter(|| {
                let mut q = EventQueue::new();
                let mut last = None;
                for i in 0..n {
                    if let Some(id) = last.take() {
                        q.cancel(id);
                    }
                    last = Some(q.schedule(SimTime::from_nanos(i as u64 + 1), i));
                }
                let mut count = 0;
                while q.pop().is_some() {
                    count += 1;
                }
                count
            });
        });
    }
    group.finish();
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng/next_u64_x1000", |b| {
        let mut rng = SimRng::seed_from(42);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            acc
        });
    });
    c.bench_function("rng/exp_f64_x1000", |b| {
        let mut rng = SimRng::seed_from(42);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1000 {
                acc += rng.exp_f64(10.0);
            }
            acc
        });
    });
}

criterion_group!(benches, bench_event_queue, bench_rng);
criterion_main!(benches);
