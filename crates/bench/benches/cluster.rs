//! End-to-end simulation throughput: wall-clock cost of simulating whole
//! invocations through the full cluster (containers + network + stores +
//! engines). One simulated invocation per iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faasflow_core::{ClientConfig, Cluster, ClusterConfig, ScheduleMode};
use faasflow_workloads::Benchmark;

fn bench_invocation_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_invocations");
    group.sample_size(20);
    for (label, mode, faastore) in [
        ("faasflow_faastore", ScheduleMode::WorkerSp, true),
        ("hyperflow_serverless", ScheduleMode::MasterSp, false),
    ] {
        for b in [Benchmark::WordCount, Benchmark::Genome] {
            group.bench_with_input(BenchmarkId::new(label, b.short_name()), &b, |bench, &b| {
                bench.iter(|| {
                    let config = ClusterConfig {
                        mode,
                        faastore,
                        ..ClusterConfig::default()
                    };
                    let mut cluster = Cluster::new(config).expect("valid config");
                    cluster
                        .register(&b.workflow(), ClientConfig::ClosedLoop { invocations: 5 })
                        .expect("registers");
                    cluster.run_until_idle();
                    cluster.report().workflow(b.short_name()).completed
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_invocation_cost);
criterion_main!(benches);
