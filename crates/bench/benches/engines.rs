//! Microbenchmarks of the engine hot paths: the per-trigger cost of
//! WorkerSP's local state updates versus MasterSP's central dispatch.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use faasflow_engine::{MasterAction, MasterEngine, WorkerAction, WorkerEngine};
use faasflow_scheduler::{ContentionSet, GraphScheduler, RuntimeMetrics, WorkerInfo};
use faasflow_sim::{InvocationId, NodeId, SimRng, WorkflowId};
use faasflow_wdl::DagParser;
use faasflow_workloads::Benchmark;

fn setup() -> (
    Arc<faasflow_wdl::WorkflowDag>,
    Arc<faasflow_scheduler::Assignment>,
) {
    let dag = Arc::new(
        DagParser::default()
            .parse(&Benchmark::Cycles.workflow())
            .expect("parses"),
    );
    let workers: Vec<WorkerInfo> = (0..7)
        .map(|i| WorkerInfo::new(NodeId::new(i + 1), 12))
        .collect();
    let metrics = RuntimeMetrics::initial(&dag);
    let mut rng = SimRng::seed_from(5);
    let assignment = Arc::new(
        GraphScheduler::default()
            .partition(
                &dag,
                &workers,
                &metrics,
                &ContentionSet::default(),
                u64::MAX,
                &mut rng,
            )
            .expect("partition succeeds"),
    );
    (dag, assignment)
}

/// Drives one full Cycles invocation through the distributed worker
/// engines, completing instances as they trigger.
fn bench_workersp_invocation(c: &mut Criterion) {
    let (dag, assignment) = setup();
    c.bench_function("workersp/full_cycles_invocation", |b| {
        let wf = WorkflowId::new(0);
        let mut next_inv = 0u32;
        b.iter(|| {
            let inv = InvocationId::new(next_inv);
            next_inv += 1;
            let mut engines: Vec<WorkerEngine> = (0..7)
                .map(|i| {
                    let mut e = WorkerEngine::new(NodeId::new(i + 1));
                    e.install(wf, dag.clone(), assignment.clone(), 9);
                    e
                })
                .collect();
            let mut pending: Vec<WorkerAction> = Vec::new();
            for e in &mut engines {
                pending.extend(e.begin_invocation(wf, inv));
            }
            let mut completed = 0usize;
            while let Some(action) = pending.pop() {
                match action {
                    WorkerAction::TriggerFunction {
                        workflow,
                        invocation,
                        function,
                    } => {
                        let worker = assignment.worker_of(function).index() - 1;
                        let par = dag.node(function).parallelism.max(1);
                        for _ in 0..par {
                            pending.extend(
                                engines[worker]
                                    .on_instance_complete(workflow, invocation, function),
                            );
                        }
                    }
                    WorkerAction::SyncState {
                        to,
                        workflow,
                        invocation,
                        completed: f,
                    } => {
                        pending
                            .extend(engines[to.index() - 1].on_state_sync(workflow, invocation, f));
                    }
                    WorkerAction::ExitComplete { .. } => completed += 1,
                }
            }
            for e in &mut engines {
                e.release_invocation(wf, inv);
            }
            completed
        });
    });
}

/// The same invocation through the central MasterSP engine.
fn bench_mastersp_invocation(c: &mut Criterion) {
    let (dag, assignment) = setup();
    c.bench_function("mastersp/full_cycles_invocation", |b| {
        let wf = WorkflowId::new(0);
        let mut next_inv = 0u32;
        b.iter(|| {
            let inv = InvocationId::new(next_inv);
            next_inv += 1;
            let mut engine = MasterEngine::new();
            engine.install(wf, dag.clone(), assignment.clone(), 9);
            let mut pending = engine.begin_invocation(wf, inv);
            let mut completed = 0usize;
            while let Some(action) = pending.pop() {
                match action {
                    MasterAction::AssignTask {
                        workflow,
                        invocation,
                        function,
                        ..
                    } => {
                        let par = dag.node(function).parallelism.max(1);
                        for _ in 0..par {
                            pending.extend(engine.on_state_return(workflow, invocation, function));
                        }
                    }
                    MasterAction::ExitComplete { .. } => completed += 1,
                }
            }
            engine.release_invocation(wf, inv);
            completed
        });
    });
}

criterion_group!(
    benches,
    bench_workersp_invocation,
    bench_mastersp_invocation
);
criterion_main!(benches);
