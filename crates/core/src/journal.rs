//! Engine write-ahead journal: workflow transitions that survive an
//! engine crash.
//!
//! Every scheduling engine (the MasterSP central engine, each WorkerSP
//! per-worker engine) appends workflow transitions to a private log backed
//! by the simulated store ([`faasflow_store::JournalLog`]). Appends are
//! write-behind: the record becomes durable one `append_overhead` after it
//! was issued, so a crash tears off the not-yet-durable tail — exactly the
//! window the recovery protocol's duplicate-suppression guards cover.
//!
//! The record stream is deliberately coarse (Durable Functions-style
//! history events, not byte-level state):
//!
//! * [`JournalRecord::Admitted`] — the engine accepted an invocation. The
//!   one record that can *save* work: an admitted invocation with no
//!   cluster-visible progress is unrecoverable without it.
//! * [`JournalRecord::Dispatched`] — a function node was handed to a
//!   worker. Replay uses cluster-side dispatch dedup, so this record is
//!   corroborating evidence (it marks the invocation as known).
//! * [`JournalRecord::NodeDone`] — the engine processed a node completion
//!   and emitted its downstream effects (syncs, exit reports). Replay
//!   skips re-emitting effects for recorded nodes; unrecorded completions
//!   re-emit and rely on receiver-side dedup.
//! * [`JournalRecord::StateSynced`] / [`JournalRecord::Terminal`] —
//!   bookkeeping for the record stream; terminal outcomes are enforced
//!   exactly-once structurally (single funnel in the cluster), the journal
//!   just witnesses them.

use faasflow_sim::{FunctionId, InvocationId, SimDuration, SimTime, WorkflowId};
use faasflow_store::JournalLog;
use serde::{Deserialize, Serialize};

/// Journal knobs. Off by default — runs without engine-crash faults are
/// bit-for-bit unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JournalConfig {
    /// Engines journal their transitions when `true`.
    pub enabled: bool,
    /// Lag between issuing an append and the record being durable on the
    /// store (write-behind flush latency). Storage brownouts stretch it.
    pub append_overhead: SimDuration,
    /// Per-durable-record cost of replaying the journal at restart.
    pub replay_overhead: SimDuration,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            enabled: false,
            append_overhead: SimDuration::from_millis(2),
            replay_overhead: SimDuration::from_micros(200),
        }
    }
}

/// An invocation's terminal outcome, as witnessed by the journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TerminalOutcome {
    /// All exits reported; latency recorded.
    Completed,
    /// Dead-lettered (see `DeadLetterReason` for why).
    DeadLettered,
    /// Shed by admission control or queue bounds.
    Shed,
}

/// One journaled workflow transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JournalRecord {
    /// The engine accepted this invocation (saw its begin message).
    Admitted {
        /// Workflow the invocation belongs to.
        workflow: WorkflowId,
        /// The admitted invocation.
        invocation: InvocationId,
    },
    /// A function node was dispatched to a worker.
    Dispatched {
        /// Workflow the invocation belongs to.
        workflow: WorkflowId,
        /// The invocation being advanced.
        invocation: InvocationId,
        /// The dispatched DAG node.
        function: FunctionId,
    },
    /// The engine processed this node's completion (and emitted its
    /// downstream syncs / exit reports).
    NodeDone {
        /// Workflow the invocation belongs to.
        workflow: WorkflowId,
        /// The invocation being advanced.
        invocation: InvocationId,
        /// The completed DAG node.
        function: FunctionId,
    },
    /// A cross-worker state sync about `function`'s completion was sent.
    StateSynced {
        /// Workflow the invocation belongs to.
        workflow: WorkflowId,
        /// The invocation being advanced.
        invocation: InvocationId,
        /// The completed node the sync describes.
        function: FunctionId,
    },
    /// The invocation reached a terminal outcome.
    Terminal {
        /// Workflow the invocation belongs to.
        workflow: WorkflowId,
        /// The finished invocation.
        invocation: InvocationId,
        /// How it ended.
        outcome: TerminalOutcome,
    },
}

impl JournalRecord {
    /// The invocation this record is about.
    pub fn invocation(&self) -> (WorkflowId, InvocationId) {
        match *self {
            JournalRecord::Admitted {
                workflow,
                invocation,
            }
            | JournalRecord::Dispatched {
                workflow,
                invocation,
                ..
            }
            | JournalRecord::NodeDone {
                workflow,
                invocation,
                ..
            }
            | JournalRecord::StateSynced {
                workflow,
                invocation,
                ..
            }
            | JournalRecord::Terminal {
                workflow,
                invocation,
                ..
            } => (workflow, invocation),
        }
    }
}

/// One engine's journal: a durable-tail record log plus replay accounting.
#[derive(Debug, Clone)]
pub struct Journal {
    config: JournalConfig,
    log: JournalLog<JournalRecord>,
    replays: u64,
    replayed_records: u64,
}

impl Journal {
    /// Creates a journal with the given configuration.
    pub fn new(config: JournalConfig) -> Self {
        Journal {
            config,
            log: JournalLog::new(),
            replays: 0,
            replayed_records: 0,
        }
    }

    /// Whether journaling is on at all.
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// The configured knobs.
    pub fn config(&self) -> JournalConfig {
        self.config
    }

    /// Appends a record issued at `now`; it becomes durable after the
    /// flush lag stretched by the current storage `slowdown` (1.0 when the
    /// store is healthy). No-op when journaling is disabled.
    pub fn append(&mut self, now: SimTime, slowdown: f64, record: JournalRecord) {
        if !self.config.enabled {
            return;
        }
        let lag = self.config.append_overhead.mul_f64(slowdown.max(1.0));
        self.log.append(now + lag, record);
    }

    /// Records an append that never reached the store (blackout window).
    pub fn append_lost(&mut self) {
        if self.config.enabled {
            self.log.append_lost();
        }
    }

    /// Engine crash at `now`: tears off the not-yet-durable tail. Returns
    /// the number of records lost.
    pub fn crash(&mut self, now: SimTime) -> usize {
        self.log.crash(now)
    }

    /// Starts a replay pass: counts it and returns the time it costs
    /// (per-record overhead stretched by the storage `slowdown`).
    pub fn begin_replay(&mut self, slowdown: f64) -> SimDuration {
        self.replays += 1;
        self.replayed_records += self.log.len() as u64;
        self.config
            .replay_overhead
            .mul_f64(slowdown.max(1.0))
            .mul_f64(self.log.len() as f64)
    }

    /// Whether any durable record mentions this invocation (replay uses
    /// this to tell recoverable invocations from orphans).
    pub fn mentions(&self, workflow: WorkflowId, invocation: InvocationId) -> bool {
        self.log
            .records()
            .any(|r| r.invocation() == (workflow, invocation))
    }

    /// Whether the engine durably recorded processing this node's
    /// completion (replay then skips re-emitting its downstream effects).
    pub fn node_done_recorded(
        &self,
        workflow: WorkflowId,
        invocation: InvocationId,
        function: FunctionId,
    ) -> bool {
        self.log.records().any(|r| {
            matches!(r, JournalRecord::NodeDone { workflow: w, invocation: i, function: f }
                if (*w, *i, *f) == (workflow, invocation, function))
        })
    }

    /// Durable records currently in the log.
    pub fn durable_len(&self) -> usize {
        self.log.len()
    }

    /// Total appends ever issued.
    pub fn append_count(&self) -> u64 {
        self.log.append_count()
    }

    /// Appends dropped because the store was unreachable, plus records
    /// torn off by crashes before they were durable.
    pub fn lost_count(&self) -> u64 {
        self.log.lost_append_count() + self.log.torn_count()
    }

    /// Replay passes performed.
    pub fn replay_count(&self) -> u64 {
        self.replays
    }

    /// Durable records read back across all replay passes.
    pub fn replayed_record_count(&self) -> u64 {
        self.replayed_records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn on() -> JournalConfig {
        JournalConfig {
            enabled: true,
            ..JournalConfig::default()
        }
    }

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn admitted(inv: u32) -> JournalRecord {
        JournalRecord::Admitted {
            workflow: WorkflowId::new(0),
            invocation: InvocationId::new(inv),
        }
    }

    #[test]
    fn disabled_journal_records_nothing() {
        let mut j = Journal::new(JournalConfig::default());
        j.append(at(0), 1.0, admitted(0));
        j.append_lost();
        assert_eq!(j.append_count(), 0);
        assert_eq!(j.lost_count(), 0);
        assert!(!j.mentions(WorkflowId::new(0), InvocationId::new(0)));
    }

    #[test]
    fn crash_inside_the_flush_window_loses_the_record() {
        let mut j = Journal::new(on());
        j.append(at(10), 1.0, admitted(0));
        // Durable at 12ms; crash at 11ms tears it off.
        assert_eq!(j.crash(at(11)), 1);
        assert!(!j.mentions(WorkflowId::new(0), InvocationId::new(0)));
        assert_eq!(j.lost_count(), 1);

        let mut j = Journal::new(on());
        j.append(at(10), 1.0, admitted(0));
        assert_eq!(j.crash(at(12)), 0, "durable exactly at the flush point");
        assert!(j.mentions(WorkflowId::new(0), InvocationId::new(0)));
    }

    #[test]
    fn brownout_stretches_the_flush_lag() {
        let mut j = Journal::new(on());
        j.append(at(10), 3.0, admitted(0));
        // Durable at 10 + 2*3 = 16ms.
        assert_eq!(j.crash(at(15)), 1);
    }

    #[test]
    fn replay_charges_per_durable_record() {
        let mut j = Journal::new(on());
        for i in 0..5 {
            j.append(at(i), 1.0, admitted(i as u32));
        }
        let cost = j.begin_replay(1.0);
        assert_eq!(cost, SimDuration::from_micros(1000));
        assert_eq!(j.replay_count(), 1);
        assert_eq!(j.replayed_record_count(), 5);
    }

    #[test]
    fn node_done_lookup_is_exact() {
        let mut j = Journal::new(on());
        let (wf, inv) = (WorkflowId::new(0), InvocationId::new(0));
        j.append(
            at(0),
            1.0,
            JournalRecord::NodeDone {
                workflow: wf,
                invocation: inv,
                function: FunctionId::new(3),
            },
        );
        assert!(j.node_done_recorded(wf, inv, FunctionId::new(3)));
        assert!(!j.node_done_recorded(wf, inv, FunctionId::new(4)));
        assert!(j.mentions(wf, inv));
    }
}
