//! Structured execution traces.
//!
//! When [`crate::ClusterConfig::trace`] is set, the cluster records one
//! [`TraceEvent`] per lifecycle step of every invocation — arrivals,
//! triggers, container starts, transfers, completions, and the control
//! messages of whichever schedule pattern is active. Traces make the
//! difference between MasterSP and WorkerSP *visible* (who triggered what,
//! where the state travelled) and back the timeline renderer used by
//! examples and debugging sessions.

use faasflow_sim::{ContainerId, FunctionId, InvocationId, NodeId, SimTime, WorkflowId};
use serde::{Deserialize, Serialize};

/// One recorded lifecycle step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A client invocation arrived at the cluster.
    InvocationArrived {
        /// Workflow.
        workflow: WorkflowId,
        /// Invocation.
        invocation: InvocationId,
        /// Instant.
        at: SimTime,
    },
    /// An engine decided a function node runs (WorkerSP: locally;
    /// MasterSP: the assignment was issued).
    FunctionTriggered {
        /// Workflow.
        workflow: WorkflowId,
        /// Invocation.
        invocation: InvocationId,
        /// The function node.
        function: FunctionId,
        /// The worker that will run it.
        worker: NodeId,
        /// Instant.
        at: SimTime,
    },
    /// A container became ready for one executor instance.
    InstanceStarted {
        /// Workflow.
        workflow: WorkflowId,
        /// Invocation.
        invocation: InvocationId,
        /// The function node.
        function: FunctionId,
        /// Instance index.
        instance: u32,
        /// The container.
        container: ContainerId,
        /// Whether the container cold-started.
        cold: bool,
        /// Instant.
        at: SimTime,
    },
    /// A data transfer completed.
    Transferred {
        /// Workflow.
        workflow: WorkflowId,
        /// Invocation.
        invocation: InvocationId,
        /// The consuming/producing function node.
        function: FunctionId,
        /// Bytes moved.
        bytes: u64,
        /// Through the remote store (`false` = worker-local memory).
        remote: bool,
        /// `true` for an input read, `false` for an output write.
        read: bool,
        /// Completion instant.
        at: SimTime,
    },
    /// Every instance of a node finished.
    NodeCompleted {
        /// Workflow.
        workflow: WorkflowId,
        /// Invocation.
        invocation: InvocationId,
        /// The function node.
        function: FunctionId,
        /// Instant.
        at: SimTime,
    },
    /// A WorkerSP state-sync message was sent to another worker.
    StateSyncSent {
        /// Sender worker.
        from: NodeId,
        /// Receiver worker.
        to: NodeId,
        /// Workflow.
        workflow: WorkflowId,
        /// Invocation.
        invocation: InvocationId,
        /// The completed function the sync reports.
        completed: FunctionId,
        /// Instant.
        at: SimTime,
    },
    /// The invocation finished (all exit nodes complete).
    InvocationCompleted {
        /// Workflow.
        workflow: WorkflowId,
        /// Invocation.
        invocation: InvocationId,
        /// Instant.
        at: SimTime,
        /// Whether the 60 s timeout had already fired.
        timed_out: bool,
    },
}

impl TraceEvent {
    /// The instant the event occurred.
    pub fn at(&self) -> SimTime {
        match self {
            TraceEvent::InvocationArrived { at, .. }
            | TraceEvent::FunctionTriggered { at, .. }
            | TraceEvent::InstanceStarted { at, .. }
            | TraceEvent::Transferred { at, .. }
            | TraceEvent::NodeCompleted { at, .. }
            | TraceEvent::StateSyncSent { at, .. }
            | TraceEvent::InvocationCompleted { at, .. } => *at,
        }
    }

    /// The invocation the event belongs to.
    pub fn invocation(&self) -> (WorkflowId, InvocationId) {
        match self {
            TraceEvent::InvocationArrived {
                workflow,
                invocation,
                ..
            }
            | TraceEvent::FunctionTriggered {
                workflow,
                invocation,
                ..
            }
            | TraceEvent::InstanceStarted {
                workflow,
                invocation,
                ..
            }
            | TraceEvent::Transferred {
                workflow,
                invocation,
                ..
            }
            | TraceEvent::NodeCompleted {
                workflow,
                invocation,
                ..
            }
            | TraceEvent::StateSyncSent {
                workflow,
                invocation,
                ..
            }
            | TraceEvent::InvocationCompleted {
                workflow,
                invocation,
                ..
            } => (*workflow, *invocation),
        }
    }
}

/// The recorder held by the cluster.
#[derive(Debug, Clone, Default)]
pub(crate) struct Tracer {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Tracer {
    pub(crate) fn new(enabled: bool) -> Self {
        Tracer {
            enabled,
            events: Vec::new(),
        }
    }

    #[inline]
    pub(crate) fn record(&mut self, make: impl FnOnce() -> TraceEvent) {
        if self.enabled {
            self.events.push(make());
        }
    }

    pub(crate) fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

/// Renders a per-invocation timeline as indented text — a poor man's Gantt
/// chart for terminal debugging.
pub fn render_timeline(events: &[TraceEvent]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut current: Option<(WorkflowId, InvocationId)> = None;
    let mut start = SimTime::ZERO;
    let mut sorted: Vec<&TraceEvent> = events.iter().collect();
    sorted.sort_by_key(|e| (e.invocation(), e.at()));
    for e in sorted {
        if current != Some(e.invocation()) {
            current = Some(e.invocation());
            start = e.at();
            let (wf, inv) = e.invocation();
            let _ = writeln!(out, "{wf}/{inv}:");
        }
        let dt = (e.at() - start).as_millis_f64();
        let line = match e {
            TraceEvent::InvocationArrived { .. } => "arrived".to_string(),
            TraceEvent::FunctionTriggered {
                function, worker, ..
            } => format!("trigger {function} on {worker}"),
            TraceEvent::InstanceStarted {
                function,
                instance,
                cold,
                ..
            } => format!(
                "start   {function}#{instance} ({})",
                if *cold { "cold" } else { "warm" }
            ),
            TraceEvent::Transferred {
                function,
                bytes,
                remote,
                read,
                ..
            } => format!(
                "{} {function} {:.2} MB ({})",
                if *read { "read   " } else { "write  " },
                *bytes as f64 / 1048576.0,
                if *remote { "remote" } else { "local" }
            ),
            TraceEvent::NodeCompleted { function, .. } => format!("done    {function}"),
            TraceEvent::StateSyncSent {
                from,
                to,
                completed,
                ..
            } => format!("sync    {completed}: {from} -> {to}"),
            TraceEvent::InvocationCompleted { timed_out, .. } => {
                if *timed_out {
                    "completed (after timeout)".to_string()
                } else {
                    "completed".to_string()
                }
            }
        };
        let _ = writeln!(out, "  {dt:>9.2} ms  {line}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::new(false);
        t.record(|| TraceEvent::InvocationArrived {
            workflow: WorkflowId::new(0),
            invocation: InvocationId::new(0),
            at: SimTime::ZERO,
        });
        assert!(t.take().is_empty());
    }

    #[test]
    fn timeline_groups_by_invocation() {
        let wf = WorkflowId::new(0);
        let mk = |inv: u32, ms: u64| TraceEvent::InvocationArrived {
            workflow: wf,
            invocation: InvocationId::new(inv),
            at: SimTime::ZERO + faasflow_sim::SimDuration::from_millis(ms),
        };
        let text = render_timeline(&[mk(1, 5), mk(0, 0)]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "wf0/inv0:");
        assert_eq!(lines[2], "wf0/inv1:");
    }
}
