//! Structured execution traces.
//!
//! When [`crate::ClusterConfig::trace`] is set, the cluster records one
//! [`TraceEvent`] per lifecycle step of every invocation — arrivals,
//! triggers, container starts, executor attempts, transfers, completions,
//! fault-path transitions (crashes, restarts, storage retries,
//! dead-lettering), and the control messages of whichever schedule pattern
//! is active. Traces make the difference between MasterSP and WorkerSP
//! *visible* (who triggered what, where the state travelled) and back both
//! the timeline renderer used by examples and the span-tree assembly in
//! `faasflow-obs`.
//!
//! The recorder is bounded: [`crate::ClusterConfig::trace_capacity`] caps
//! the event vector, and events beyond the cap are counted (surfaced as
//! `trace_dropped` in [`crate::RunReport`]) rather than recorded, so long
//! open-loop runs cannot grow memory without bound. Dropping the *newest*
//! events keeps the retained prefix causally closed: no retained event
//! ever references an earlier event that was dropped.

use faasflow_sim::{
    ContainerId, FunctionId, InvocationId, NodeId, SimDuration, SimTime, WorkflowId,
};
use serde::{Deserialize, Serialize};

use crate::degrade::DegradeLevel;

/// One recorded lifecycle step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A client invocation arrived at the cluster.
    InvocationArrived {
        /// Workflow.
        workflow: WorkflowId,
        /// Invocation.
        invocation: InvocationId,
        /// Instant.
        at: SimTime,
    },
    /// An engine decided a function node runs (WorkerSP: locally;
    /// MasterSP: the assignment was issued).
    FunctionTriggered {
        /// Workflow.
        workflow: WorkflowId,
        /// Invocation.
        invocation: InvocationId,
        /// The function node.
        function: FunctionId,
        /// The worker that will run it.
        worker: NodeId,
        /// Instant.
        at: SimTime,
    },
    /// A container became ready for one executor instance.
    InstanceStarted {
        /// Workflow.
        workflow: WorkflowId,
        /// Invocation.
        invocation: InvocationId,
        /// The function node.
        function: FunctionId,
        /// Instance index.
        instance: u32,
        /// The worker hosting the container.
        worker: NodeId,
        /// The container.
        container: ContainerId,
        /// Whether the container cold-started.
        cold: bool,
        /// Instant.
        at: SimTime,
    },
    /// An executor attempt began (inputs in place, compute scheduled).
    ExecStarted {
        /// Workflow.
        workflow: WorkflowId,
        /// Invocation.
        invocation: InvocationId,
        /// The function node.
        function: FunctionId,
        /// Instance index.
        instance: u32,
        /// The worker running the attempt.
        worker: NodeId,
        /// Zero-based attempt number (`retries` so far).
        attempt: u32,
        /// Instant.
        at: SimTime,
    },
    /// An executor attempt finished (successfully or not).
    ExecFinished {
        /// Workflow.
        workflow: WorkflowId,
        /// Invocation.
        invocation: InvocationId,
        /// The function node.
        function: FunctionId,
        /// Instance index.
        instance: u32,
        /// The worker that ran the attempt.
        worker: NodeId,
        /// Zero-based attempt number.
        attempt: u32,
        /// Whether the injected-failure draw failed this attempt.
        failed: bool,
        /// Instant.
        at: SimTime,
    },
    /// A data transfer completed.
    Transferred {
        /// Workflow.
        workflow: WorkflowId,
        /// Invocation.
        invocation: InvocationId,
        /// The consuming/producing function node.
        function: FunctionId,
        /// Instance index of the consuming/producing executor.
        instance: u32,
        /// The worker the executor lives on.
        worker: NodeId,
        /// Bytes moved.
        bytes: u64,
        /// Through the remote store (`false` = worker-local memory).
        remote: bool,
        /// `true` for an input read, `false` for an output write.
        read: bool,
        /// The instant the flow was admitted to the network.
        started: SimTime,
        /// Completion instant.
        at: SimTime,
    },
    /// Every instance of a node finished.
    NodeCompleted {
        /// Workflow.
        workflow: WorkflowId,
        /// Invocation.
        invocation: InvocationId,
        /// The function node.
        function: FunctionId,
        /// Instant.
        at: SimTime,
    },
    /// A WorkerSP state-sync message was sent to another worker.
    StateSyncSent {
        /// Sender worker.
        from: NodeId,
        /// Receiver worker.
        to: NodeId,
        /// Workflow.
        workflow: WorkflowId,
        /// Invocation.
        invocation: InvocationId,
        /// The completed function the sync reports.
        completed: FunctionId,
        /// Instant.
        at: SimTime,
    },
    /// A storage access hit a blackout window and was scheduled to retry.
    StorageRetry {
        /// Workflow.
        workflow: WorkflowId,
        /// Invocation.
        invocation: InvocationId,
        /// The function node whose transfer is being retried.
        function: FunctionId,
        /// `true` for an input read, `false` for an output write.
        read: bool,
        /// Zero-based retry attempt number.
        attempt: u32,
        /// The backoff delay until the next attempt.
        delay: SimDuration,
        /// Instant.
        at: SimTime,
    },
    /// The invocation's epoch was bumped and it restarted from durable
    /// state (WorkerSP crash recovery).
    InvocationRestarted {
        /// Workflow.
        workflow: WorkflowId,
        /// Invocation.
        invocation: InvocationId,
        /// The new (post-bump) epoch.
        epoch: u32,
        /// Instant.
        at: SimTime,
    },
    /// The invocation exhausted its restart budget and was dead-lettered.
    DeadLettered {
        /// Workflow.
        workflow: WorkflowId,
        /// Invocation.
        invocation: InvocationId,
        /// Instant.
        at: SimTime,
    },
    /// The invocation finished (all exit nodes complete).
    InvocationCompleted {
        /// Workflow.
        workflow: WorkflowId,
        /// Invocation.
        invocation: InvocationId,
        /// Instant.
        at: SimTime,
        /// Whether the 60 s timeout had already fired.
        timed_out: bool,
    },
    /// A worker node crashed (fault injection).
    WorkerCrashed {
        /// The crashed worker.
        worker: NodeId,
        /// Instant.
        at: SimTime,
    },
    /// A crashed worker came back online.
    WorkerRestarted {
        /// The restarted worker.
        worker: NodeId,
        /// Instant.
        at: SimTime,
    },
    /// The master's heartbeat lease on a worker expired (crash detected).
    LeaseExpired {
        /// The worker whose lease expired.
        worker: NodeId,
        /// Instant.
        at: SimTime,
    },
    /// Admission control shed the invocation (bounded queue overflow).
    InvocationShed {
        /// Workflow.
        workflow: WorkflowId,
        /// Invocation.
        invocation: InvocationId,
        /// The worker whose full queue triggered the shed.
        worker: NodeId,
        /// Instant.
        at: SimTime,
    },
    /// The remote-store circuit breaker changed state.
    BreakerTransition {
        /// Previous state.
        from: crate::overload::BreakerState,
        /// New state.
        to: crate::overload::BreakerState,
        /// Instant.
        at: SimTime,
    },
    /// A hedged execution was dispatched for a straggling instance.
    HedgeLaunched {
        /// Workflow.
        workflow: WorkflowId,
        /// Invocation.
        invocation: InvocationId,
        /// The function node.
        function: FunctionId,
        /// Instance index.
        instance: u32,
        /// The worker running the straggling primary.
        from_worker: NodeId,
        /// The worker the hedge was dispatched to.
        to_worker: NodeId,
        /// Instant.
        at: SimTime,
    },
    /// A workflow engine crashed (fault injection), losing its volatile
    /// trigger state: the central master engine (`worker: None`) or one
    /// worker's engine (`worker: Some(w)`).
    EngineCrashed {
        /// The worker whose engine crashed; `None` for the master engine.
        worker: Option<NodeId>,
        /// Instant.
        at: SimTime,
    },
    /// A crashed engine finished journal replay and resumed service.
    EngineRecovered {
        /// The worker whose engine recovered; `None` for the master engine.
        worker: Option<NodeId>,
        /// Journal records replayed to rebuild state.
        replayed: u64,
        /// Instant.
        at: SimTime,
    },
    /// The placement layer ran an incremental rebalance sweep: only the
    /// workflows with groups placed on `worker` were re-placed (via the
    /// epoch-fenced red-black redeploy path), everyone else kept their
    /// deployment.
    PlacementRebalanced {
        /// The worker whose placed groups triggered the sweep (the skewed
        /// hot worker, the crashed node, or the most-crowded survivor at a
        /// restart).
        worker: NodeId,
        /// Workflows re-placed by the sweep.
        workflows: u64,
        /// `true` when a recovery signal (worker crash or restart)
        /// triggered it; `false` for steady-state load skew.
        recovery: bool,
        /// Instant.
        at: SimTime,
    },
    /// A hedged execution resolved: either the hedge or the primary won.
    HedgeResolved {
        /// Workflow.
        workflow: WorkflowId,
        /// Invocation.
        invocation: InvocationId,
        /// The function node.
        function: FunctionId,
        /// Instance index.
        instance: u32,
        /// `true` when the hedge finished first and took the instance.
        winner_is_hedge: bool,
        /// Instant.
        at: SimTime,
    },
    /// An SLO burn-rate alert went active: both the fast and the slow
    /// sliding window exceeded their thresholds (see [`crate::SloConfig`]).
    SloAlertFired {
        /// The workflow whose objective fired.
        workflow: WorkflowId,
        /// Fast-window burn rate at the transition.
        fast_burn: f64,
        /// Slow-window burn rate at the transition.
        slow_burn: f64,
        /// Instant.
        at: SimTime,
    },
    /// A previously firing SLO alert dropped back below its thresholds.
    SloAlertResolved {
        /// The workflow whose objective resolved.
        workflow: WorkflowId,
        /// Instant.
        at: SimTime,
    },
    /// The degradation controller moved a workflow into (or within) a
    /// degraded state (see [`crate::DegradeConfig`]).
    WorkflowDegraded {
        /// The degraded workflow.
        workflow: WorkflowId,
        /// The state entered.
        level: DegradeLevel,
        /// Concurrency cap in force after the transition.
        cap: u32,
        /// Instant.
        at: SimTime,
    },
    /// A degraded workflow completed its recovery probes and returned to
    /// full service.
    WorkflowRestored {
        /// The restored workflow.
        workflow: WorkflowId,
        /// Instant.
        at: SimTime,
    },
    /// The health detector quarantined a worker: its differential stats
    /// scored as a sustained fleet outlier (see [`crate::HealthConfig`]).
    /// The worker is *not* declared dead — its lease stays valid — but its
    /// placement capacity is zeroed and hedges steer away from it.
    WorkerQuarantined {
        /// The quarantined worker.
        worker: NodeId,
        /// MAD score at the transition ([`crate::health::STUCK_SCORE`] for
        /// a stuck executor).
        score: f64,
        /// `true` when this is a relapse out of the half-open probe phase.
        relapse: bool,
        /// Instant.
        at: SimTime,
    },
    /// A quarantined worker passed its half-open probes and returned to
    /// full service.
    WorkerReinstated {
        /// The reinstated worker.
        worker: NodeId,
        /// Instant.
        at: SimTime,
    },
    /// A late completion from a suspected-dead-but-alive worker was
    /// rejected by the seq/epoch fences (the false-suspicion path of an
    /// asymmetric partition).
    ZombieFenced {
        /// The zombie worker whose stale completion was fenced.
        worker: NodeId,
        /// Workflow of the fenced completion.
        workflow: WorkflowId,
        /// Invocation of the fenced completion.
        invocation: InvocationId,
        /// Instant.
        at: SimTime,
    },
}

impl TraceEvent {
    /// The instant the event occurred.
    pub fn at(&self) -> SimTime {
        match self {
            TraceEvent::InvocationArrived { at, .. }
            | TraceEvent::FunctionTriggered { at, .. }
            | TraceEvent::InstanceStarted { at, .. }
            | TraceEvent::ExecStarted { at, .. }
            | TraceEvent::ExecFinished { at, .. }
            | TraceEvent::Transferred { at, .. }
            | TraceEvent::NodeCompleted { at, .. }
            | TraceEvent::StateSyncSent { at, .. }
            | TraceEvent::StorageRetry { at, .. }
            | TraceEvent::InvocationRestarted { at, .. }
            | TraceEvent::DeadLettered { at, .. }
            | TraceEvent::InvocationCompleted { at, .. }
            | TraceEvent::WorkerCrashed { at, .. }
            | TraceEvent::WorkerRestarted { at, .. }
            | TraceEvent::LeaseExpired { at, .. }
            | TraceEvent::InvocationShed { at, .. }
            | TraceEvent::BreakerTransition { at, .. }
            | TraceEvent::EngineCrashed { at, .. }
            | TraceEvent::EngineRecovered { at, .. }
            | TraceEvent::HedgeLaunched { at, .. }
            | TraceEvent::PlacementRebalanced { at, .. }
            | TraceEvent::HedgeResolved { at, .. }
            | TraceEvent::SloAlertFired { at, .. }
            | TraceEvent::SloAlertResolved { at, .. }
            | TraceEvent::WorkflowDegraded { at, .. }
            | TraceEvent::WorkflowRestored { at, .. }
            | TraceEvent::WorkerQuarantined { at, .. }
            | TraceEvent::WorkerReinstated { at, .. }
            | TraceEvent::ZombieFenced { at, .. } => *at,
        }
    }

    /// The invocation the event belongs to, or `None` for node-scoped
    /// events (crashes, restarts, lease expiries).
    pub fn invocation(&self) -> Option<(WorkflowId, InvocationId)> {
        match self {
            TraceEvent::InvocationArrived {
                workflow,
                invocation,
                ..
            }
            | TraceEvent::FunctionTriggered {
                workflow,
                invocation,
                ..
            }
            | TraceEvent::InstanceStarted {
                workflow,
                invocation,
                ..
            }
            | TraceEvent::ExecStarted {
                workflow,
                invocation,
                ..
            }
            | TraceEvent::ExecFinished {
                workflow,
                invocation,
                ..
            }
            | TraceEvent::Transferred {
                workflow,
                invocation,
                ..
            }
            | TraceEvent::NodeCompleted {
                workflow,
                invocation,
                ..
            }
            | TraceEvent::StateSyncSent {
                workflow,
                invocation,
                ..
            }
            | TraceEvent::StorageRetry {
                workflow,
                invocation,
                ..
            }
            | TraceEvent::InvocationRestarted {
                workflow,
                invocation,
                ..
            }
            | TraceEvent::DeadLettered {
                workflow,
                invocation,
                ..
            }
            | TraceEvent::InvocationCompleted {
                workflow,
                invocation,
                ..
            }
            | TraceEvent::InvocationShed {
                workflow,
                invocation,
                ..
            }
            | TraceEvent::HedgeLaunched {
                workflow,
                invocation,
                ..
            }
            | TraceEvent::HedgeResolved {
                workflow,
                invocation,
                ..
            } => Some((*workflow, *invocation)),
            TraceEvent::WorkerCrashed { .. }
            | TraceEvent::WorkerRestarted { .. }
            | TraceEvent::LeaseExpired { .. }
            | TraceEvent::BreakerTransition { .. }
            | TraceEvent::EngineCrashed { .. }
            | TraceEvent::EngineRecovered { .. }
            | TraceEvent::PlacementRebalanced { .. }
            | TraceEvent::SloAlertFired { .. }
            | TraceEvent::SloAlertResolved { .. }
            | TraceEvent::WorkflowDegraded { .. }
            | TraceEvent::WorkflowRestored { .. }
            | TraceEvent::WorkerQuarantined { .. }
            | TraceEvent::WorkerReinstated { .. }
            // Deliberately node-scoped: the fenced completion belongs to a
            // superseded attempt, not the invocation's live span tree.
            | TraceEvent::ZombieFenced { .. } => None,
        }
    }
}

/// The recorder held by the cluster.
#[derive(Debug, Clone)]
pub(crate) struct Tracer {
    enabled: bool,
    capacity: usize,
    dropped: u64,
    events: Vec<TraceEvent>,
}

impl Tracer {
    pub(crate) fn new(enabled: bool, capacity: usize) -> Self {
        Tracer {
            enabled,
            capacity,
            dropped: 0,
            events: Vec::new(),
        }
    }

    #[inline]
    pub(crate) fn record(&mut self, make: impl FnOnce() -> TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.events.push(make());
    }

    /// Events rejected by the capacity cap since construction.
    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }

    pub(crate) fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    /// The recorded events, without draining them.
    pub(crate) fn events(&self) -> &[TraceEvent] {
        &self.events
    }
}

/// Renders a per-invocation timeline as indented text — a poor man's Gantt
/// chart for terminal debugging. Node-scoped fault events (crashes,
/// restarts, lease expiries) come first under a `cluster:` header with
/// absolute timestamps.
pub fn render_timeline(events: &[TraceEvent]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();

    let mut cluster: Vec<&TraceEvent> =
        events.iter().filter(|e| e.invocation().is_none()).collect();
    cluster.sort_by_key(|e| e.at());
    if !cluster.is_empty() {
        let _ = writeln!(out, "cluster:");
        for e in &cluster {
            let t = e.at().as_millis_f64();
            let line = match e {
                TraceEvent::WorkerCrashed { worker, .. } => format!("crash   {worker}"),
                TraceEvent::WorkerRestarted { worker, .. } => format!("restart {worker}"),
                TraceEvent::LeaseExpired { worker, .. } => format!("lease   {worker} expired"),
                TraceEvent::BreakerTransition { from, to, .. } => {
                    format!("breaker {from:?} -> {to:?}")
                }
                TraceEvent::EngineCrashed { worker, .. } => match worker {
                    Some(w) => format!("engine  crash on {w}"),
                    None => "engine  crash (master)".to_string(),
                },
                TraceEvent::EngineRecovered {
                    worker, replayed, ..
                } => match worker {
                    Some(w) => format!("engine  up on {w} ({replayed} replayed)"),
                    None => format!("engine  up (master, {replayed} replayed)"),
                },
                TraceEvent::PlacementRebalanced {
                    worker,
                    workflows,
                    recovery,
                    ..
                } => format!(
                    "rebal   {workflows} workflow(s) off {worker} ({})",
                    if *recovery { "recovery" } else { "skew" }
                ),
                TraceEvent::SloAlertFired {
                    workflow,
                    fast_burn,
                    slow_burn,
                    ..
                } => format!("slo     {workflow} fired (burn {fast_burn:.1}/{slow_burn:.1})"),
                TraceEvent::SloAlertResolved { workflow, .. } => {
                    format!("slo     {workflow} resolved")
                }
                TraceEvent::WorkflowDegraded {
                    workflow,
                    level,
                    cap,
                    ..
                } => format!("degrade {workflow} -> {} (cap {cap})", level.label()),
                TraceEvent::WorkflowRestored { workflow, .. } => {
                    format!("degrade {workflow} restored")
                }
                TraceEvent::WorkerQuarantined {
                    worker,
                    score,
                    relapse,
                    ..
                } => format!(
                    "health  {worker} quarantined (score {score:.1}{})",
                    if *relapse { ", relapse" } else { "" }
                ),
                TraceEvent::WorkerReinstated { worker, .. } => {
                    format!("health  {worker} reinstated")
                }
                TraceEvent::ZombieFenced {
                    worker,
                    workflow,
                    invocation,
                    ..
                } => format!("fence   zombie {worker} ({workflow}/{invocation})"),
                _ => unreachable!("only node-scoped events lack an invocation"),
            };
            let _ = writeln!(out, "  {t:>9.2} ms  {line}");
        }
    }

    let mut current: Option<(WorkflowId, InvocationId)> = None;
    let mut start = SimTime::ZERO;
    let mut sorted: Vec<&TraceEvent> = events.iter().filter(|e| e.invocation().is_some()).collect();
    sorted.sort_by_key(|e| (e.invocation(), e.at()));
    for e in sorted {
        if current != e.invocation() {
            current = e.invocation();
            start = e.at();
            let (wf, inv) = e.invocation().expect("node-scoped events filtered out");
            let _ = writeln!(out, "{wf}/{inv}:");
        }
        let dt = (e.at() - start).as_millis_f64();
        let line = match e {
            TraceEvent::InvocationArrived { .. } => "arrived".to_string(),
            TraceEvent::FunctionTriggered {
                function, worker, ..
            } => format!("trigger {function} on {worker}"),
            TraceEvent::InstanceStarted {
                function,
                instance,
                cold,
                ..
            } => format!(
                "start   {function}#{instance} ({})",
                if *cold { "cold" } else { "warm" }
            ),
            TraceEvent::ExecStarted {
                function,
                instance,
                attempt,
                ..
            } => format!("exec    {function}#{instance} attempt {attempt}"),
            TraceEvent::ExecFinished {
                function,
                instance,
                attempt,
                failed,
                ..
            } => format!(
                "exec    {function}#{instance} attempt {attempt} {}",
                if *failed { "failed" } else { "ok" }
            ),
            TraceEvent::Transferred {
                function,
                bytes,
                remote,
                read,
                ..
            } => format!(
                "{} {function} {:.2} MB ({})",
                if *read { "read   " } else { "write  " },
                *bytes as f64 / 1048576.0,
                if *remote { "remote" } else { "local" }
            ),
            TraceEvent::NodeCompleted { function, .. } => format!("done    {function}"),
            TraceEvent::StateSyncSent {
                from,
                to,
                completed,
                ..
            } => format!("sync    {completed}: {from} -> {to}"),
            TraceEvent::StorageRetry {
                function,
                read,
                attempt,
                delay,
                ..
            } => format!(
                "retry   {function} {} attempt {attempt} (+{:.2} ms)",
                if *read { "read" } else { "write" },
                delay.as_millis_f64()
            ),
            TraceEvent::InvocationRestarted { epoch, .. } => {
                format!("restart epoch {epoch}")
            }
            TraceEvent::DeadLettered { .. } => "dead-lettered".to_string(),
            TraceEvent::InvocationCompleted { timed_out, .. } => {
                if *timed_out {
                    "completed (after timeout)".to_string()
                } else {
                    "completed".to_string()
                }
            }
            TraceEvent::InvocationShed { worker, .. } => {
                format!("shed    (queue full on {worker})")
            }
            TraceEvent::HedgeLaunched {
                function,
                instance,
                from_worker,
                to_worker,
                ..
            } => format!("hedge   {function}#{instance} {from_worker} -> {to_worker}"),
            TraceEvent::HedgeResolved {
                function,
                instance,
                winner_is_hedge,
                ..
            } => format!(
                "hedge   {function}#{instance} {} won",
                if *winner_is_hedge { "hedge" } else { "primary" }
            ),
            TraceEvent::WorkerCrashed { .. }
            | TraceEvent::WorkerRestarted { .. }
            | TraceEvent::LeaseExpired { .. }
            | TraceEvent::BreakerTransition { .. }
            | TraceEvent::EngineCrashed { .. }
            | TraceEvent::EngineRecovered { .. }
            | TraceEvent::PlacementRebalanced { .. }
            | TraceEvent::SloAlertFired { .. }
            | TraceEvent::SloAlertResolved { .. }
            | TraceEvent::WorkflowDegraded { .. }
            | TraceEvent::WorkflowRestored { .. }
            | TraceEvent::WorkerQuarantined { .. }
            | TraceEvent::WorkerReinstated { .. }
            | TraceEvent::ZombieFenced { .. } => {
                unreachable!("node-scoped events are rendered in the cluster section")
            }
        };
        let _ = writeln!(out, "  {dt:>9.2} ms  {line}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrival(inv: u32, ms: u64) -> TraceEvent {
        TraceEvent::InvocationArrived {
            workflow: WorkflowId::new(0),
            invocation: InvocationId::new(inv),
            at: SimTime::ZERO + SimDuration::from_millis(ms),
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::new(false, usize::MAX);
        t.record(|| arrival(0, 0));
        assert!(t.take().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn bounded_tracer_counts_drops() {
        let mut t = Tracer::new(true, 2);
        for i in 0..5 {
            t.record(|| arrival(i, u64::from(i)));
        }
        assert_eq!(t.dropped(), 3);
        let kept = t.take();
        assert_eq!(kept.len(), 2);
        // Drop-newest: the retained prefix is the chronological head.
        assert_eq!(kept[0], arrival(0, 0));
        assert_eq!(kept[1], arrival(1, 1));
    }

    #[test]
    fn timeline_groups_by_invocation() {
        let text = render_timeline(&[arrival(1, 5), arrival(0, 0)]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "wf0/inv0:");
        assert_eq!(lines[2], "wf0/inv1:");
    }

    #[test]
    fn timeline_puts_node_events_in_cluster_section() {
        let crash = TraceEvent::WorkerCrashed {
            worker: NodeId::new(3),
            at: SimTime::ZERO + SimDuration::from_millis(7),
        };
        let text = render_timeline(&[arrival(0, 0), crash]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "cluster:");
        assert!(lines[1].contains("crash"));
        assert_eq!(lines[2], "wf0/inv0:");
    }
}
