//! Fault-domain injection plan.
//!
//! FaaSFlow's availability argument (§6 of the paper) is that worker-side
//! scheduling confines the blast radius of a failure to the partition that
//! experienced it, while a master-side engine turns every fault into a
//! central-plane event. This module gives the simulation a declarative,
//! fully deterministic way to exercise that argument: a [`FaultPlan`] is
//! pure configuration — every fault fires at a pre-declared simulated
//! instant and all recovery jitter comes from the cluster's seeded RNG — so
//! the same seed and plan always reproduce the same run, byte for byte.
//!
//! Three fault classes are modelled:
//!
//! * [`NodeCrash`] — a worker node dies: its warm container pool, its
//!   engine state (WorkerSP) and its MemStore contents are lost; it may
//!   restart after a configurable delay. In-flight invocations are detected
//!   through a heartbeat/lease model and re-dispatched.
//! * [`StorageFault`] — the remote (couch-like) store suffers a blackout
//!   (requests fail and are retried with exponential backoff) or a brownout
//!   (request overheads are multiplied by a slowdown factor).
//! * [`NetFault`] — a worker's link degrades for a window: engine messages
//!   to/from it are lost with some probability (and retransmitted with
//!   backoff), latencies stretch, and bulk-transfer bandwidth shrinks.
//! * [`EngineCrash`] — a *scheduling engine* (the MasterSP central engine
//!   or one WorkerSP per-worker engine) dies and restarts after a delay.
//!   The node underneath keeps running — containers finish their work —
//!   but the engine's volatile trigger state and message queue are lost
//!   and must be rebuilt from its journal plus worker-reported progress.
//! * [`GrayFault`] — a worker degrades *without* dying: it heartbeats on
//!   time while executing slower, hanging mid-exec, failing more often,
//!   or sitting behind an asymmetric partition where control traffic
//!   passes but data-plane flows stall. The lease detector is
//!   structurally blind to this class; the online health detector
//!   ([`crate::HealthConfig`]) exists to catch it.

use faasflow_sim::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

/// One worker-node crash (and optional restart).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeCrash {
    /// Worker index (0-based; node `worker + 1` in cluster numbering).
    pub worker: u32,
    /// Simulated instant the node dies.
    pub at: SimDuration,
    /// Delay until the node comes back empty (cold pools, blank engine,
    /// empty MemStore). `None` means the node stays down forever.
    pub restart_after: Option<SimDuration>,
}

/// How a remote-storage window misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StorageFaultKind {
    /// Requests fail outright; clients back off and retry.
    Blackout,
    /// Requests succeed but request overheads are multiplied by `slowdown`.
    Brownout {
        /// Multiplier (> 1.0) applied to put/get overheads.
        slowdown: f64,
    },
}

/// One remote-storage outage or brownout window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StorageFault {
    /// Window start.
    pub at: SimDuration,
    /// Window length.
    pub duration: SimDuration,
    /// Blackout or brownout.
    pub kind: StorageFaultKind,
}

/// One per-worker network degradation window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetFault {
    /// Worker index whose link degrades.
    pub worker: u32,
    /// Window start.
    pub at: SimDuration,
    /// Window length.
    pub duration: SimDuration,
    /// Probability in `[0, 1)` that an engine message crossing this link is
    /// lost and must be retransmitted.
    pub loss: f64,
    /// Multiplier (>= 1.0) on message latency across this link.
    pub latency_factor: f64,
    /// Multiplier in `(0, 1]` on the worker's NIC bandwidth for the window.
    pub bandwidth_factor: f64,
}

/// Which scheduling engine an [`EngineCrash`] kills.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineTarget {
    /// The central engine on the storage/master node (MasterSP mode only).
    Master,
    /// The per-worker engine on worker index `0..workers` (WorkerSP only).
    Worker(u32),
}

/// One scheduling-engine crash (and restart).
///
/// Unlike [`NodeCrash`], the host node survives: running containers keep
/// executing and report completions that the dead engine can no longer
/// hear. On restart the engine replays its journal (if enabled), reconciles
/// with cluster-visible progress, and re-dispatches only work that never
/// durably completed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineCrash {
    /// Which engine dies.
    pub target: EngineTarget,
    /// Simulated instant the engine process dies.
    pub at: SimDuration,
    /// Delay until the supervisor restarts the engine and recovery begins.
    /// Zero means an immediate restart (state is still lost).
    pub restart_after: SimDuration,
}

/// Why an invocation was dead-lettered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeadLetterReason {
    /// A recovery/retry budget (exec retries, storage retries, crash
    /// recovery attempts) was exhausted.
    RetriesExhausted,
    /// An engine crash orphaned the invocation: no journal record survived
    /// and no worker-reported progress existed to rebuild it from.
    CrashOrphan,
    /// The engine's journal could not be read back during recovery (store
    /// blacked out through every replay attempt).
    JournalUnrecoverable,
    /// The invocation was purged while draining a quarantined worker and
    /// its crash-recovery budget was already spent.
    QuarantineOrphan,
}

/// How a [`GrayFault`] window misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GrayFaultKind {
    /// Every execution on the worker takes `factor` times as long. The
    /// worker keeps heartbeating, accepting and completing work — just
    /// slowly.
    ExecSlowdown {
        /// Multiplier (> 1.0) on sampled execution times.
        factor: f64,
    },
    /// The executor accepts instances but completes none of them until the
    /// window ends; completions that would have landed inside the window
    /// are deferred to its closing edge.
    StuckExecutor,
    /// Executions fail at an elevated rate for the window (the worker's
    /// effective failure rate becomes `max(base, failure_rate)`).
    FlakyExec {
        /// Probability in `(0, 1]` that an exec on this worker fails.
        failure_rate: f64,
    },
    /// Control traffic (heartbeats, dispatch, completion reports) passes
    /// but bulk data-plane flows crossing the link in one direction stall
    /// until the window heals — the classic gray partition the lease
    /// detector cannot see.
    AsymmetricPartition {
        /// `true` stalls flows *into* the worker (it cannot fetch inputs);
        /// `false` stalls flows *out of* it (peers cannot fetch its
        /// outputs).
        inbound: bool,
        /// When `true`, the master additionally suspects the worker — its
        /// lease is force-expired one detection delay into the window even
        /// though heartbeats still arrive. Re-dispatch then races the
        /// still-running zombie, whose late completions must be fenced
        /// (`zombie_fenced`).
        expire_lease: bool,
    },
}

/// One gray-failure window on a worker: the node stays "alive" by every
/// fail-stop signal while degrading in a way only differential health
/// statistics can catch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GrayFault {
    /// Worker index whose behaviour degrades.
    pub worker: u32,
    /// Window start.
    pub at: SimDuration,
    /// Window length (must be positive).
    pub duration: SimDuration,
    /// What kind of gray failure this is.
    pub kind: GrayFaultKind,
}

/// Exponential backoff with full-range jitter, used for storage retries and
/// message retransmissions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackoffPolicy {
    /// First retry delay.
    pub base: SimDuration,
    /// Ceiling on any single delay.
    pub cap: SimDuration,
    /// Geometric growth factor (>= 1.0).
    pub factor: f64,
    /// Jitter fraction in `[0, 1)`: each delay is scaled by a uniform
    /// factor in `[1 - jitter, 1 + jitter]` drawn from the seeded RNG.
    pub jitter: f64,
    /// Retries before the operation is abandoned.
    pub max_attempts: u32,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base: SimDuration::from_millis(100),
            cap: SimDuration::from_secs(10),
            factor: 2.0,
            jitter: 0.1,
            max_attempts: 16,
        }
    }
}

impl BackoffPolicy {
    /// The jittered delay before retry number `attempt` (0-based).
    pub fn delay(&self, attempt: u32, rng: &mut SimRng) -> SimDuration {
        let exp = self.factor.powi(attempt.min(63) as i32);
        let raw = self.base.mul_f64(exp).min(self.cap);
        if self.jitter > 0.0 {
            raw.mul_f64(rng.range_f64(1.0 - self.jitter, 1.0 + self.jitter))
        } else {
            raw
        }
    }

    fn validate(&self) -> Result<(), String> {
        if !(self.factor.is_finite() && self.factor >= 1.0) {
            return Err(format!("backoff factor must be >= 1, got {}", self.factor));
        }
        if !(0.0..1.0).contains(&self.jitter) {
            return Err(format!(
                "backoff jitter must be in [0,1), got {}",
                self.jitter
            ));
        }
        if self.max_attempts == 0 {
            return Err("backoff max_attempts must be at least 1".into());
        }
        if self.base.is_zero() {
            return Err("backoff base delay must be positive".into());
        }
        Ok(())
    }
}

/// The declarative fault schedule of one cluster run.
///
/// The default plan is empty: no crashes, no outages, no degradation —
/// existing experiments are bit-for-bit unaffected.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Worker-node crashes.
    pub node_crashes: Vec<NodeCrash>,
    /// Remote-storage outage/brownout windows.
    pub storage_faults: Vec<StorageFault>,
    /// Per-worker link degradation windows.
    pub net_faults: Vec<NetFault>,
    /// Scheduling-engine crashes (central or per-worker).
    pub engine_crashes: Vec<EngineCrash>,
    /// Gray-failure windows: the worker stays "alive" while degrading.
    #[serde(default)]
    pub gray_faults: Vec<GrayFault>,
    /// Workers heartbeat the failure detector at this interval.
    pub heartbeat_interval: SimDuration,
    /// Missed heartbeats before a worker's lease expires and recovery
    /// starts. Detection delay = `heartbeat_interval * lease_misses`.
    pub lease_misses: u32,
    /// Backoff for storage retries and message retransmissions.
    pub backoff: BackoffPolicy,
    /// How many times one invocation may be crash-recovered before it is
    /// dead-lettered.
    pub max_recovery_attempts: u32,
    /// When `true`, an instance that exhausts its transient-exec retry
    /// budget dead-letters the whole invocation (with accounting) instead
    /// of completing as if it had succeeded. Defaults to `false`, the
    /// legacy pass-through behaviour.
    pub dead_letter_on_exhaustion: bool,
    /// When `true`, each worker's heartbeat phase is offset by a
    /// deterministic per-worker fraction of the heartbeat interval (derived
    /// from the worker index, not RNG), so simultaneous crashes don't
    /// expire every lease at the same instant and synchronize a recovery
    /// storm. Defaults to `false`: every lease expires exactly
    /// [`FaultPlan::detection_delay`] after the crash, as before.
    #[serde(default)]
    pub stagger_heartbeats: bool,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            node_crashes: Vec::new(),
            storage_faults: Vec::new(),
            net_faults: Vec::new(),
            engine_crashes: Vec::new(),
            gray_faults: Vec::new(),
            heartbeat_interval: SimDuration::from_millis(500),
            lease_misses: 3,
            backoff: BackoffPolicy::default(),
            max_recovery_attempts: 5,
            dead_letter_on_exhaustion: false,
            stagger_heartbeats: false,
        }
    }
}

impl FaultPlan {
    /// `true` when the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.node_crashes.is_empty()
            && self.storage_faults.is_empty()
            && self.net_faults.is_empty()
            && self.engine_crashes.is_empty()
            && self.gray_faults.is_empty()
    }

    /// Time from a crash to its lease expiring (recovery kicking in).
    pub fn detection_delay(&self) -> SimDuration {
        self.heartbeat_interval * u64::from(self.lease_misses)
    }

    /// Time from worker `worker`'s crash (or suspicion) to its lease
    /// expiring. Without heartbeat staggering this is exactly
    /// [`FaultPlan::detection_delay`]; with it, each worker adds a
    /// deterministic phase offset of `(worker mod 8) / 8` heartbeat
    /// intervals so simultaneous crashes expire at distinct instants.
    pub fn lease_delay(&self, worker: u32) -> SimDuration {
        let base = self.detection_delay();
        if self.stagger_heartbeats {
            base + self.heartbeat_interval.mul_f64(f64::from(worker % 8) / 8.0)
        } else {
            base
        }
    }

    /// Validates the plan against a cluster with `workers` worker nodes.
    pub fn validate(&self, workers: u32) -> Result<(), String> {
        self.backoff.validate()?;
        if self.lease_misses == 0 {
            return Err("lease_misses must be at least 1".into());
        }
        if self.heartbeat_interval.is_zero() {
            return Err("heartbeat_interval must be positive".into());
        }
        for c in &self.node_crashes {
            if c.worker >= workers {
                return Err(format!(
                    "node crash targets worker {} but the cluster has {workers}",
                    c.worker
                ));
            }
        }
        // Two crash windows of the same worker must not overlap: a second
        // crash landing while the worker is already down (or exactly at its
        // restart instant) makes recovery order-dependent.
        for w in 0..workers {
            let mut windows: Vec<&NodeCrash> =
                self.node_crashes.iter().filter(|c| c.worker == w).collect();
            windows.sort_by_key(|c| c.at);
            for pair in windows.windows(2) {
                let end = pair[0].restart_after.map(|r| pair[0].at + r);
                let overlaps = match end {
                    // No restart: the worker is down forever, any later
                    // crash of it is unreachable.
                    None => true,
                    Some(end) => pair[1].at <= end,
                };
                if overlaps {
                    return Err(format!(
                        "overlapping crash windows for worker {w}: crash at {:?} \
                         lands before the crash at {:?} has restarted",
                        pair[1].at, pair[0].at
                    ));
                }
            }
        }
        for g in &self.gray_faults {
            if g.worker >= workers {
                return Err(format!(
                    "gray fault targets worker {} but the cluster has {workers}",
                    g.worker
                ));
            }
            if g.duration.is_zero() {
                return Err("gray fault windows must have positive duration".into());
            }
            match g.kind {
                GrayFaultKind::ExecSlowdown { factor } => {
                    if !(factor.is_finite() && factor > 1.0) {
                        return Err(format!(
                            "gray exec slowdown factor must be > 1, got {factor}"
                        ));
                    }
                }
                GrayFaultKind::FlakyExec { failure_rate } => {
                    if !(failure_rate.is_finite() && failure_rate > 0.0 && failure_rate <= 1.0) {
                        return Err(format!(
                            "gray flaky-exec failure_rate must be in (0,1], got {failure_rate}"
                        ));
                    }
                }
                GrayFaultKind::StuckExecutor | GrayFaultKind::AsymmetricPartition { .. } => {}
            }
        }
        for s in &self.storage_faults {
            if s.duration.is_zero() {
                return Err("storage fault windows must have positive duration".into());
            }
            if let StorageFaultKind::Brownout { slowdown } = s.kind {
                if !(slowdown.is_finite() && slowdown >= 1.0) {
                    return Err(format!("brownout slowdown must be >= 1, got {slowdown}"));
                }
            }
        }
        for e in &self.engine_crashes {
            if let EngineTarget::Worker(w) = e.target {
                if w >= workers {
                    return Err(format!(
                        "engine crash targets worker {w} but the cluster has {workers}"
                    ));
                }
            }
        }
        for n in &self.net_faults {
            if n.worker >= workers {
                return Err(format!(
                    "net fault targets worker {} but the cluster has {workers}",
                    n.worker
                ));
            }
            if n.duration.is_zero() {
                return Err("net fault windows must have positive duration".into());
            }
            if !(0.0..1.0).contains(&n.loss) {
                return Err(format!("net fault loss must be in [0,1), got {}", n.loss));
            }
            if !(n.latency_factor.is_finite() && n.latency_factor >= 1.0) {
                return Err(format!(
                    "net fault latency_factor must be >= 1, got {}",
                    n.latency_factor
                ));
            }
            if !(n.bandwidth_factor.is_finite()
                && n.bandwidth_factor > 0.0
                && n.bandwidth_factor <= 1.0)
            {
                return Err(format!(
                    "net fault bandwidth_factor must be in (0,1], got {}",
                    n.bandwidth_factor
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_empty_and_valid() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        plan.validate(7).expect("default plan valid");
        assert_eq!(plan.detection_delay(), SimDuration::from_millis(1500));
    }

    #[test]
    fn out_of_range_targets_are_rejected() {
        let mut plan = FaultPlan::default();
        plan.node_crashes.push(NodeCrash {
            worker: 9,
            at: SimDuration::from_secs(1),
            restart_after: None,
        });
        assert!(plan.validate(4).is_err());

        let mut plan = FaultPlan::default();
        plan.net_faults.push(NetFault {
            worker: 0,
            at: SimDuration::ZERO,
            duration: SimDuration::from_secs(1),
            loss: 1.5,
            latency_factor: 1.0,
            bandwidth_factor: 1.0,
        });
        assert!(plan.validate(4).is_err());

        let mut plan = FaultPlan::default();
        plan.storage_faults.push(StorageFault {
            at: SimDuration::ZERO,
            duration: SimDuration::from_secs(1),
            kind: StorageFaultKind::Brownout { slowdown: 0.5 },
        });
        assert!(plan.validate(4).is_err());

        let mut plan = FaultPlan::default();
        plan.engine_crashes.push(EngineCrash {
            target: EngineTarget::Worker(4),
            at: SimDuration::from_secs(1),
            restart_after: SimDuration::ZERO,
        });
        assert!(plan.validate(4).is_err());
        assert!(!plan.is_empty(), "engine crashes make the plan non-empty");
    }

    #[test]
    fn overlapping_crash_windows_are_rejected() {
        // Second crash lands while the first is still down.
        let mut plan = FaultPlan::default();
        plan.node_crashes.push(NodeCrash {
            worker: 1,
            at: SimDuration::from_secs(1),
            restart_after: Some(SimDuration::from_secs(2)),
        });
        plan.node_crashes.push(NodeCrash {
            worker: 1,
            at: SimDuration::from_secs(2),
            restart_after: None,
        });
        let err = plan.validate(4).unwrap_err();
        assert!(err.contains("overlapping crash windows"), "{err}");

        // A crash exactly at the restart instant is order-dependent too.
        plan.node_crashes[1].at = SimDuration::from_secs(3);
        let err = plan.validate(4).unwrap_err();
        assert!(err.contains("overlapping crash windows"), "{err}");

        // Any crash after a no-restart crash of the same worker overlaps.
        let mut plan = FaultPlan::default();
        plan.node_crashes.push(NodeCrash {
            worker: 0,
            at: SimDuration::from_secs(1),
            restart_after: None,
        });
        plan.node_crashes.push(NodeCrash {
            worker: 0,
            at: SimDuration::from_secs(30),
            restart_after: None,
        });
        assert!(plan.validate(4).is_err());

        // Disjoint windows and different workers are fine.
        let mut plan = FaultPlan::default();
        plan.node_crashes.push(NodeCrash {
            worker: 1,
            at: SimDuration::from_secs(1),
            restart_after: Some(SimDuration::from_secs(1)),
        });
        plan.node_crashes.push(NodeCrash {
            worker: 1,
            at: SimDuration::from_millis(2500),
            restart_after: None,
        });
        plan.node_crashes.push(NodeCrash {
            worker: 2,
            at: SimDuration::from_secs(1),
            restart_after: None,
        });
        plan.validate(4).expect("disjoint windows are valid");
    }

    #[test]
    fn gray_fault_windows_are_validated() {
        let gray = |kind| GrayFault {
            worker: 0,
            at: SimDuration::from_secs(1),
            duration: SimDuration::from_secs(2),
            kind,
        };

        // Zero-length windows are rejected for every kind.
        let mut plan = FaultPlan::default();
        plan.gray_faults.push(GrayFault {
            duration: SimDuration::ZERO,
            ..gray(GrayFaultKind::StuckExecutor)
        });
        let err = plan.validate(4).unwrap_err();
        assert!(err.contains("positive duration"), "{err}");

        // Out-of-range target.
        let mut plan = FaultPlan::default();
        plan.gray_faults.push(GrayFault {
            worker: 4,
            ..gray(GrayFaultKind::StuckExecutor)
        });
        assert!(plan.validate(4).is_err());

        // Slowdown must actually slow down.
        let mut plan = FaultPlan::default();
        plan.gray_faults
            .push(gray(GrayFaultKind::ExecSlowdown { factor: 1.0 }));
        assert!(plan.validate(4).is_err());

        // Flaky rate must be a probability above zero.
        let mut plan = FaultPlan::default();
        plan.gray_faults
            .push(gray(GrayFaultKind::FlakyExec { failure_rate: 1.5 }));
        assert!(plan.validate(4).is_err());

        // A well-formed plan of each kind passes and is non-empty.
        let mut plan = FaultPlan::default();
        plan.gray_faults
            .push(gray(GrayFaultKind::ExecSlowdown { factor: 8.0 }));
        plan.gray_faults.push(gray(GrayFaultKind::StuckExecutor));
        plan.gray_faults
            .push(gray(GrayFaultKind::FlakyExec { failure_rate: 0.5 }));
        plan.gray_faults
            .push(gray(GrayFaultKind::AsymmetricPartition {
                inbound: true,
                expire_lease: true,
            }));
        plan.validate(4).expect("well-formed gray faults are valid");
        assert!(!plan.is_empty(), "gray faults make the plan non-empty");
    }

    #[test]
    fn staggered_lease_delay_offsets_by_worker_index() {
        let mut plan = FaultPlan::default();
        assert_eq!(plan.lease_delay(0), plan.detection_delay());
        assert_eq!(plan.lease_delay(5), plan.detection_delay());

        plan.stagger_heartbeats = true;
        assert_eq!(plan.lease_delay(0), plan.detection_delay());
        assert_eq!(
            plan.lease_delay(1),
            plan.detection_delay() + SimDuration::from_micros(62_500)
        );
        assert_ne!(plan.lease_delay(1), plan.lease_delay(2));
        // Offsets wrap every 8 workers but stay below one full interval,
        // so detection_delay semantics (lower bound) are preserved.
        assert_eq!(plan.lease_delay(3), plan.lease_delay(11));
        for w in 0..16 {
            assert!(plan.lease_delay(w) < plan.detection_delay() + plan.heartbeat_interval);
            assert!(plan.lease_delay(w) >= plan.detection_delay());
        }
    }

    #[test]
    fn backoff_grows_and_caps() {
        let mut rng = SimRng::seed_from(7);
        let policy = BackoffPolicy {
            jitter: 0.0,
            ..BackoffPolicy::default()
        };
        assert_eq!(policy.delay(0, &mut rng), SimDuration::from_millis(100));
        assert_eq!(policy.delay(1, &mut rng), SimDuration::from_millis(200));
        assert_eq!(policy.delay(3, &mut rng), SimDuration::from_millis(800));
        assert_eq!(policy.delay(20, &mut rng), SimDuration::from_secs(10));
    }

    #[test]
    fn jittered_backoff_stays_in_band() {
        let mut rng = SimRng::seed_from(11);
        let policy = BackoffPolicy::default();
        for attempt in 0..8 {
            let d = policy.delay(attempt, &mut rng);
            let nominal = policy
                .base
                .mul_f64(policy.factor.powi(attempt as i32))
                .min(policy.cap);
            assert!(d >= nominal.mul_f64(0.89) && d <= nominal.mul_f64(1.11));
        }
    }
}
