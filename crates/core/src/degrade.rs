//! Closed-loop SLO-driven degradation.
//!
//! The SLO monitor ([`crate::SloConfig`]) observes; this module *acts*.
//! When a workflow's burn-rate alert fires, the degradation controller
//! moves that workflow — and only that workflow — through a hysteretic
//! state machine:
//!
//! ```text
//!            alert fires                alert persists past cooldown
//!   Normal ─────────────▶ Throttled ──────────────────────▶ Shedding
//!     ▲                       │                                 │
//!     │                       │ alert resolves                  │ alert resolves
//!     │                       ▼                                 ▼
//!     └──────────────── Recovering ◀────────────────────────────┘
//!       N good probes     │    ▲
//!                         └────┘ bad probe / re-fire → relapse (tighten)
//! ```
//!
//! While **Throttled**, admissions of the offending workflow are bounded
//! by a concurrency cap; while **Shedding**, only a configured fraction of
//! arrivals is admitted at all (deterministic credit accumulation — no
//! RNG) and the workflow is additionally demoted to the front of the
//! `DeadlineAware` shed order and its hedged retries are suspended, since
//! hedges amplify load exactly when the system can least afford it.
//! Recovery mirrors the store circuit breaker's half-open probing: on
//! `SloAlertResolved` the workflow enters **Recovering**, a fraction of
//! admitted traffic is marked as probes, and only after a run of good
//! probes (additive cap growth along the way) is the workflow fully
//! restored; a bad probe or a re-fired alert relapses with a
//! multiplicatively tightened cap.
//!
//! Everything here is deterministic and event-driven. With
//! [`crate::ClusterConfig::degrade`] unset (the default) the controller
//! does not exist, zero RNG is drawn, and all pre-degradation runs stay
//! bit-identical.

use faasflow_sim::{SimDuration, SimTime, WorkflowId};
use serde::{Deserialize, Serialize};

/// Degradation controller configuration. Requires
/// [`crate::ClusterConfig::slo`] to be set: the SLO monitor's alerts are
/// the controller's only input signal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradeConfig {
    /// Concurrency cap applied when a workflow first enters Throttled.
    pub initial_cap: u32,
    /// Floor the cap never tightens below (at least 1, so a degraded
    /// workflow always retains some probe-able trickle of capacity).
    pub min_cap: u32,
    /// Multiplicative factor applied to the cap on escalation and relapse,
    /// in `(0, 1)` — the "multiplicative decrease" half of the loop.
    pub tighten: f64,
    /// Cap increase per good recovery probe — the "additive increase"
    /// half of the loop.
    pub recover_step: u32,
    /// Minimum simulated time between state-machine transitions driven by
    /// a *persisting* alert (Throttled → Shedding escalation, in-Shedding
    /// tightening). Prevents a burst of completions from collapsing the
    /// staircase into one step.
    pub cooldown: SimDuration,
    /// Fraction of arrivals admitted while Shedding, in `[0, 1]`.
    /// Accumulated as a deterministic credit (`credit += fraction; admit
    /// when credit >= 1`), so no RNG is drawn. `0.0` means full brown-out:
    /// every arrival of the offender is refused until the alert resolves.
    pub shed_admit_fraction: f64,
    /// Fraction of admissions marked as recovery probes while Recovering,
    /// in `(0, 1]`. Same deterministic credit scheme.
    pub probe_fraction: f64,
    /// Consecutive good probes required to restore a Recovering workflow
    /// to Normal.
    pub probe_successes: u32,
    /// Suspend hedged retries for Throttled/Shedding workflows.
    pub suspend_hedges: bool,
    /// Demote Throttled/Shedding workflows to the front of the
    /// `DeadlineAware` shed order, so queue overflow evicts the offender
    /// before innocent tenants.
    pub demote_shed_priority: bool,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        DegradeConfig {
            initial_cap: 8,
            min_cap: 1,
            tighten: 0.5,
            recover_step: 1,
            cooldown: SimDuration::from_secs(5),
            shed_admit_fraction: 0.25,
            probe_fraction: 0.5,
            probe_successes: 4,
            suspend_hedges: true,
            demote_shed_priority: true,
        }
    }
}

impl DegradeConfig {
    /// Checks the configuration for internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.initial_cap == 0 {
            return Err("degrade initial_cap must be at least 1".to_string());
        }
        if self.min_cap == 0 || self.min_cap > self.initial_cap {
            return Err(format!(
                "degrade min_cap must be in [1, initial_cap={}], got {}",
                self.initial_cap, self.min_cap
            ));
        }
        if !(self.tighten > 0.0 && self.tighten < 1.0) {
            return Err(format!(
                "degrade tighten factor must be in (0, 1), got {}",
                self.tighten
            ));
        }
        if self.recover_step == 0 {
            return Err("degrade recover_step must be at least 1".to_string());
        }
        if self.cooldown == SimDuration::ZERO {
            return Err("degrade cooldown must be positive".to_string());
        }
        if !(self.shed_admit_fraction >= 0.0 && self.shed_admit_fraction <= 1.0) {
            return Err(format!(
                "degrade shed_admit_fraction must be in [0, 1], got {}",
                self.shed_admit_fraction
            ));
        }
        if !(self.probe_fraction > 0.0 && self.probe_fraction <= 1.0) {
            return Err(format!(
                "degrade probe_fraction must be in (0, 1], got {}",
                self.probe_fraction
            ));
        }
        if self.probe_successes == 0 {
            return Err("degrade probe_successes must be at least 1".to_string());
        }
        Ok(())
    }

    /// Multiplicative tightening, floored at `min_cap`.
    fn tightened(&self, cap: u32) -> u32 {
        (((f64::from(cap)) * self.tighten).floor() as u32).max(self.min_cap)
    }
}

/// Externally visible degradation level of one workflow — carried on
/// [`crate::TraceEvent::WorkflowDegraded`] and the Perfetto counter track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DegradeLevel {
    /// Full service.
    #[default]
    Normal,
    /// Half-open recovery: capped admission, a fraction marked as probes.
    Recovering,
    /// Concurrency-capped admission.
    Throttled,
    /// Only `shed_admit_fraction` of arrivals admitted.
    Shedding,
}

impl DegradeLevel {
    /// Numeric severity for counter tracks (mirrors the store breaker:
    /// 0 = closed/healthy, rising with severity).
    pub fn as_level(self) -> u32 {
        match self {
            DegradeLevel::Normal => 0,
            DegradeLevel::Recovering => 1,
            DegradeLevel::Throttled => 2,
            DegradeLevel::Shedding => 3,
        }
    }

    /// Human-readable label for timelines and tables.
    pub fn label(self) -> &'static str {
        match self {
            DegradeLevel::Normal => "normal",
            DegradeLevel::Recovering => "recovering",
            DegradeLevel::Throttled => "throttled",
            DegradeLevel::Shedding => "shedding",
        }
    }
}

/// Internal state machine state. `Recovering` remembers which degraded
/// state it entered from so a relapse returns there.
#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Normal,
    Throttled,
    Shedding,
    Recovering { from_shedding: bool },
}

impl State {
    fn level(self) -> DegradeLevel {
        match self {
            State::Normal => DegradeLevel::Normal,
            State::Throttled => DegradeLevel::Throttled,
            State::Shedding => DegradeLevel::Shedding,
            State::Recovering { .. } => DegradeLevel::Recovering,
        }
    }
}

/// A state-machine transition the cluster turns into a trace event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum DegradeTransition {
    /// The workflow entered (or moved within) a degraded state.
    Degraded {
        workflow: WorkflowId,
        level: DegradeLevel,
        cap: u32,
    },
    /// The workflow completed recovery and returned to Normal.
    Restored { workflow: WorkflowId },
}

/// Outcome of an admission decision for one arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct AdmitDecision {
    /// Whether the arrival may proceed. `false` means the cluster sheds it
    /// at the gate (a *degrade* shed, accounted separately from queue
    /// overflow sheds).
    pub admitted: bool,
    /// Whether this admission is a recovery probe: its terminal outcome
    /// feeds the restore/relapse decision.
    pub probe: bool,
}

impl AdmitDecision {
    pub(crate) const ADMIT: AdmitDecision = AdmitDecision {
        admitted: true,
        probe: false,
    };
}

#[derive(Debug)]
struct WorkflowEntry {
    workflow: WorkflowId,
    name: String,
    state: State,
    cap: u32,
    inflight: u32,
    admit_credit: f64,
    probe_credit: f64,
    good_probes: u32,
    last_transition: SimTime,
    sheds: u64,
}

/// Final state of one tracked workflow, for [`DegradeReport::workflows`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowDegradeSnapshot {
    /// Workflow name (as registered).
    pub workflow: String,
    /// Degradation level at report time.
    pub level: DegradeLevel,
    /// Concurrency cap at report time (meaningful when degraded).
    pub cap: u32,
    /// Arrivals this workflow lost to the degradation gate.
    pub sheds: u64,
}

/// Aggregate degradation counters for [`crate::RunReport`]. All-zero (and
/// omitted from serialized reports) when no [`DegradeConfig`] is set.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DegradeReport {
    /// Workflows with an SLO objective, tracked by the controller.
    pub workflows_tracked: u32,
    /// Normal → Throttled transitions (alert fired on a healthy workflow).
    pub throttles: u64,
    /// Throttled → Shedding escalations (alert persisted past cooldown).
    pub escalations: u64,
    /// In-Shedding cap tightenings (alert persisted further).
    pub tightenings: u64,
    /// Degraded → Recovering transitions (alert resolved).
    pub recoveries: u64,
    /// Recovering → degraded relapses (bad probe or re-fired alert).
    pub relapses: u64,
    /// Recovering → Normal restorations (probe run succeeded).
    pub restores: u64,
    /// Arrivals refused at the degradation gate. Counted per workflow in
    /// [`WorkflowDegradeSnapshot::sheds`]; disjoint from
    /// `OverloadReport::shed` (queue overflow).
    pub sheds: u64,
    /// Admissions marked as recovery probes.
    pub probes: u64,
    /// Probes whose terminal outcome was bad (each one relapses).
    pub probe_failures: u64,
    /// Hedged retries suppressed because the workflow was degraded.
    pub hedges_suppressed: u64,
    /// Queue-overflow sheds that picked a demoted (degraded) workflow's
    /// invocation because of shed-priority demotion.
    pub demoted_sheds: u64,
    /// Per-workflow final state, in tracking (registration) order.
    pub workflows: Vec<WorkflowDegradeSnapshot>,
}

impl DegradeReport {
    /// True when no degradation controller was configured — the report
    /// block is then omitted from serialized output so pre-degradation
    /// goldens stay bit-identical.
    pub fn is_zero(&self) -> bool {
        *self == DegradeReport::default()
    }
}

/// Per-cluster degradation controller: one [`WorkflowEntry`] per workflow
/// that carries an SLO objective, in registration order (deterministic).
#[derive(Debug)]
pub(crate) struct DegradeController {
    config: DegradeConfig,
    entries: Vec<WorkflowEntry>,
    report: DegradeReport,
}

impl DegradeController {
    pub(crate) fn new(config: DegradeConfig) -> Self {
        DegradeController {
            config,
            entries: Vec::new(),
            report: DegradeReport::default(),
        }
    }

    /// Starts tracking a workflow (called at registration for every
    /// workflow that has an SLO objective).
    pub(crate) fn track(&mut self, name: &str, workflow: WorkflowId) {
        self.entries.push(WorkflowEntry {
            workflow,
            name: name.to_string(),
            state: State::Normal,
            cap: self.config.initial_cap,
            inflight: 0,
            admit_credit: 0.0,
            probe_credit: 0.0,
            good_probes: 0,
            last_transition: SimTime::ZERO,
            sheds: 0,
        });
        self.report.workflows_tracked = self.entries.len() as u32;
    }

    /// Free-standing lookup so callers can hold the entry and the report
    /// mutably at the same time (disjoint-field borrows).
    fn find(entries: &mut [WorkflowEntry], workflow: WorkflowId) -> Option<&mut WorkflowEntry> {
        entries.iter_mut().find(|e| e.workflow == workflow)
    }

    /// Gate for one arrival. Untracked workflows are always admitted.
    pub(crate) fn admit(&mut self, workflow: WorkflowId) -> AdmitDecision {
        let config = self.config;
        let Some(entry) = Self::find(&mut self.entries, workflow) else {
            return AdmitDecision::ADMIT;
        };
        let decision = match entry.state {
            State::Normal => AdmitDecision::ADMIT,
            State::Throttled => AdmitDecision {
                admitted: entry.inflight < entry.cap,
                probe: false,
            },
            State::Shedding => {
                entry.admit_credit += config.shed_admit_fraction;
                if entry.admit_credit >= 1.0 && entry.inflight < entry.cap {
                    entry.admit_credit -= 1.0;
                    AdmitDecision::ADMIT
                } else {
                    // Never bank more than one admission of credit: a long
                    // refused stretch must not turn into a burst later.
                    entry.admit_credit = entry.admit_credit.min(1.0);
                    AdmitDecision {
                        admitted: false,
                        probe: false,
                    }
                }
            }
            State::Recovering { .. } => {
                if entry.inflight < entry.cap {
                    entry.probe_credit += config.probe_fraction;
                    let probe = entry.probe_credit >= 1.0;
                    if probe {
                        entry.probe_credit -= 1.0;
                    }
                    AdmitDecision {
                        admitted: true,
                        probe,
                    }
                } else {
                    AdmitDecision {
                        admitted: false,
                        probe: false,
                    }
                }
            }
        };
        if decision.admitted {
            entry.inflight += 1;
        } else {
            entry.sheds += 1;
            self.report.sheds += 1;
        }
        if decision.probe {
            self.report.probes += 1;
        }
        decision
    }

    /// Alert fired for this workflow: begin (or relapse into) degradation.
    pub(crate) fn on_fired(
        &mut self,
        now: SimTime,
        workflow: WorkflowId,
    ) -> Option<DegradeTransition> {
        let config = self.config;
        let entry = Self::find(&mut self.entries, workflow)?;
        match entry.state {
            State::Normal => {
                entry.state = State::Throttled;
                entry.cap = config.initial_cap;
                entry.last_transition = now;
                self.report.throttles += 1;
                Some(DegradeTransition::Degraded {
                    workflow,
                    level: DegradeLevel::Throttled,
                    cap: config.initial_cap,
                })
            }
            State::Recovering { from_shedding } => Some(Self::relapse(
                &mut self.report,
                &config,
                entry,
                now,
                from_shedding,
            )),
            // Already degraded: the staircase advances via
            // `on_alert_active`, not via duplicate fire edges.
            State::Throttled | State::Shedding => None,
        }
    }

    /// Alert resolved for this workflow: begin half-open recovery.
    pub(crate) fn on_resolved(
        &mut self,
        now: SimTime,
        workflow: WorkflowId,
    ) -> Option<DegradeTransition> {
        let entry = Self::find(&mut self.entries, workflow)?;
        let from_shedding = match entry.state {
            State::Throttled => false,
            State::Shedding => true,
            State::Normal | State::Recovering { .. } => return None,
        };
        entry.state = State::Recovering { from_shedding };
        entry.good_probes = 0;
        entry.probe_credit = 0.0;
        entry.last_transition = now;
        self.report.recoveries += 1;
        Some(DegradeTransition::Degraded {
            workflow,
            level: DegradeLevel::Recovering,
            cap: entry.cap,
        })
    }

    /// The alert is *still* active after an evaluation: advance the
    /// staircase, but only once per cooldown period.
    pub(crate) fn on_alert_active(
        &mut self,
        now: SimTime,
        workflow: WorkflowId,
    ) -> Option<DegradeTransition> {
        let config = self.config;
        let entry = Self::find(&mut self.entries, workflow)?;
        if now - entry.last_transition < config.cooldown {
            return None;
        }
        match entry.state {
            State::Throttled => {
                entry.state = State::Shedding;
                entry.cap = config.tightened(entry.cap);
                entry.last_transition = now;
                self.report.escalations += 1;
                Some(DegradeTransition::Degraded {
                    workflow,
                    level: DegradeLevel::Shedding,
                    cap: entry.cap,
                })
            }
            State::Shedding => {
                // Deep in the red: keep tightening toward min_cap.
                let tightened = config.tightened(entry.cap);
                entry.last_transition = now;
                if tightened < entry.cap {
                    entry.cap = tightened;
                    self.report.tightenings += 1;
                }
                None
            }
            // A still-active *other* objective while recovering counts as
            // a relapse signal (the resolve that started recovery was only
            // partial).
            State::Recovering { from_shedding } => Some(Self::relapse(
                &mut self.report,
                &config,
                entry,
                now,
                from_shedding,
            )),
            State::Normal => None,
        }
    }

    /// One tracked invocation reached a terminal state. `probe` marks
    /// recovery probes; `bad` is the SLO verdict for this invocation.
    pub(crate) fn on_terminal(
        &mut self,
        now: SimTime,
        workflow: WorkflowId,
        probe: bool,
        bad: bool,
    ) -> Option<DegradeTransition> {
        let config = self.config;
        let entry = Self::find(&mut self.entries, workflow)?;
        entry.inflight = entry.inflight.saturating_sub(1);
        if !probe {
            return None;
        }
        let State::Recovering { from_shedding } = entry.state else {
            // A probe admitted during a previous recovery attempt that has
            // since relapsed or restored: its verdict is stale, ignore it.
            return None;
        };
        if bad {
            self.report.probe_failures += 1;
            return Some(Self::relapse(
                &mut self.report,
                &config,
                entry,
                now,
                from_shedding,
            ));
        }
        entry.good_probes += 1;
        entry.cap += config.recover_step;
        if entry.good_probes >= config.probe_successes {
            entry.state = State::Normal;
            entry.cap = config.initial_cap;
            entry.admit_credit = 0.0;
            entry.probe_credit = 0.0;
            entry.good_probes = 0;
            entry.last_transition = now;
            self.report.restores += 1;
            return Some(DegradeTransition::Restored { workflow });
        }
        None
    }

    fn relapse(
        report: &mut DegradeReport,
        config: &DegradeConfig,
        entry: &mut WorkflowEntry,
        now: SimTime,
        from_shedding: bool,
    ) -> DegradeTransition {
        entry.state = if from_shedding {
            State::Shedding
        } else {
            State::Throttled
        };
        entry.cap = config.tightened(entry.cap);
        entry.good_probes = 0;
        entry.probe_credit = 0.0;
        entry.last_transition = now;
        report.relapses += 1;
        DegradeTransition::Degraded {
            workflow: entry.workflow,
            level: entry.state.level(),
            cap: entry.cap,
        }
    }

    /// Whether a hedge for this workflow should be suppressed right now.
    pub(crate) fn suppress_hedge(&mut self, workflow: WorkflowId) -> bool {
        if !self.config.suspend_hedges {
            return false;
        }
        let suppressed = self.entries.iter().any(|e| {
            e.workflow == workflow && matches!(e.state, State::Throttled | State::Shedding)
        });
        if suppressed {
            self.report.hedges_suppressed += 1;
        }
        suppressed
    }

    /// Whether queue-overflow shedding should prefer this workflow's
    /// invocations as victims.
    pub(crate) fn demotes(&self, workflow: WorkflowId) -> bool {
        self.config.demote_shed_priority
            && self.entries.iter().any(|e| {
                e.workflow == workflow && matches!(e.state, State::Throttled | State::Shedding)
            })
    }

    /// Records that a queue-overflow shed picked a demoted victim.
    pub(crate) fn note_demoted_shed(&mut self) {
        self.report.demoted_sheds += 1;
    }

    pub(crate) fn report(&self) -> DegradeReport {
        let mut report = self.report.clone();
        report.workflows = self
            .entries
            .iter()
            .map(|e| WorkflowDegradeSnapshot {
                workflow: e.name.clone(),
                level: e.state.level(),
                cap: e.cap,
                sheds: e.sheds,
            })
            .collect();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wf(n: u32) -> WorkflowId {
        WorkflowId::new(n)
    }

    fn at(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    fn controller() -> DegradeController {
        let mut c = DegradeController::new(DegradeConfig::default());
        c.track("hot", wf(0));
        c
    }

    #[test]
    fn config_validation() {
        assert!(DegradeConfig::default().validate().is_ok());
        let check = |patch: fn(&mut DegradeConfig)| {
            let mut c = DegradeConfig::default();
            patch(&mut c);
            c.validate()
        };
        assert!(check(|c| c.initial_cap = 0).is_err());
        assert!(check(|c| c.min_cap = 0).is_err());
        assert!(check(|c| c.min_cap = c.initial_cap + 1).is_err());
        assert!(check(|c| c.tighten = 0.0).is_err());
        assert!(check(|c| c.tighten = 1.0).is_err());
        assert!(check(|c| c.recover_step = 0).is_err());
        assert!(check(|c| c.cooldown = SimDuration::ZERO).is_err());
        assert!(check(|c| c.shed_admit_fraction = -0.1).is_err());
        assert!(check(|c| c.shed_admit_fraction = 1.1).is_err());
        assert!(check(|c| c.shed_admit_fraction = 0.0).is_ok());
        assert!(check(|c| c.probe_fraction = 0.0).is_err());
        assert!(check(|c| c.probe_successes = 0).is_err());
    }

    #[test]
    fn untracked_workflows_pass_through() {
        let mut c = controller();
        for _ in 0..100 {
            assert_eq!(c.admit(wf(9)), AdmitDecision::ADMIT);
        }
        assert!(c.on_fired(at(0), wf(9)).is_none());
        assert!(c.on_terminal(at(0), wf(9), false, true).is_none());
        assert_eq!(c.report().sheds, 0);
    }

    #[test]
    fn fire_throttles_then_escalates_after_cooldown() {
        let mut c = controller();
        let t = c.on_fired(at(0), wf(0));
        assert_eq!(
            t,
            Some(DegradeTransition::Degraded {
                workflow: wf(0),
                level: DegradeLevel::Throttled,
                cap: 8,
            })
        );
        // Duplicate fire edges and within-cooldown activity do nothing.
        assert!(c.on_fired(at(1), wf(0)).is_none());
        assert!(c.on_alert_active(at(1), wf(0)).is_none());
        // Past the cooldown the persisting alert escalates, halving the cap.
        let t = c.on_alert_active(at(5), wf(0));
        assert_eq!(
            t,
            Some(DegradeTransition::Degraded {
                workflow: wf(0),
                level: DegradeLevel::Shedding,
                cap: 4,
            })
        );
        // Further persistence keeps tightening down to min_cap, silently.
        assert!(c.on_alert_active(at(10), wf(0)).is_none());
        assert!(c.on_alert_active(at(15), wf(0)).is_none());
        assert!(c.on_alert_active(at(20), wf(0)).is_none());
        let r = c.report();
        assert_eq!(r.throttles, 1);
        assert_eq!(r.escalations, 1);
        assert_eq!(r.tightenings, 2); // 4 -> 2 -> 1, then floored
        assert_eq!(r.workflows[0].cap, 1);
        assert_eq!(r.workflows[0].level, DegradeLevel::Shedding);
    }

    #[test]
    fn throttled_caps_inflight() {
        let config = DegradeConfig {
            initial_cap: 2,
            ..DegradeConfig::default()
        };
        let mut c = DegradeController::new(config);
        c.track("hot", wf(0));
        c.on_fired(at(0), wf(0));
        assert!(c.admit(wf(0)).admitted);
        assert!(c.admit(wf(0)).admitted);
        assert!(!c.admit(wf(0)).admitted); // cap reached
        c.on_terminal(at(1), wf(0), false, true);
        assert!(c.admit(wf(0)).admitted); // slot freed
        let r = c.report();
        assert_eq!(r.sheds, 1);
        assert_eq!(r.workflows[0].sheds, 1);
    }

    #[test]
    fn shedding_admits_a_deterministic_fraction() {
        let config = DegradeConfig {
            shed_admit_fraction: 0.25,
            cooldown: SimDuration::from_secs(1),
            ..DegradeConfig::default()
        };
        let mut c = DegradeController::new(config);
        c.track("hot", wf(0));
        c.on_fired(at(0), wf(0));
        c.on_alert_active(at(1), wf(0)); // -> Shedding
        let admitted: Vec<bool> = (0..12).map(|_| c.admit(wf(0)).admitted).collect();
        // credit 0.25/0.5/0.75/1.0 -> every 4th arrival admitted.
        assert_eq!(
            admitted,
            [false, false, false, true, false, false, false, true, false, false, false, true]
        );
        assert_eq!(c.report().sheds, 9);
        // Fraction 0.0 is a full brown-out.
        let config = DegradeConfig {
            shed_admit_fraction: 0.0,
            cooldown: SimDuration::from_secs(1),
            ..DegradeConfig::default()
        };
        let mut c = DegradeController::new(config);
        c.track("hot", wf(0));
        c.on_fired(at(0), wf(0));
        c.on_alert_active(at(1), wf(0));
        assert!((0..8).all(|_| !c.admit(wf(0)).admitted));
    }

    #[test]
    fn recovery_probes_restore_after_good_run() {
        let config = DegradeConfig {
            probe_fraction: 1.0, // every admission is a probe
            probe_successes: 3,
            ..DegradeConfig::default()
        };
        let mut c = DegradeController::new(config);
        c.track("hot", wf(0));
        c.on_fired(at(0), wf(0));
        let t = c.on_resolved(at(1), wf(0));
        assert_eq!(
            t,
            Some(DegradeTransition::Degraded {
                workflow: wf(0),
                level: DegradeLevel::Recovering,
                cap: 8,
            })
        );
        for i in 0..2 {
            let d = c.admit(wf(0));
            assert!(d.admitted && d.probe);
            assert!(c.on_terminal(at(2 + i), wf(0), true, false).is_none());
        }
        let d = c.admit(wf(0));
        assert!(d.probe);
        let t = c.on_terminal(at(5), wf(0), true, false);
        assert_eq!(t, Some(DegradeTransition::Restored { workflow: wf(0) }));
        let r = c.report();
        assert_eq!(r.recoveries, 1);
        assert_eq!(r.restores, 1);
        assert_eq!(r.probes, 3);
        assert_eq!(r.probe_failures, 0);
        assert_eq!(r.workflows[0].level, DegradeLevel::Normal);
        // Back to normal: unlimited admission, no probes.
        let d = c.admit(wf(0));
        assert!(d.admitted && !d.probe);
    }

    #[test]
    fn bad_probe_relapses_with_tightened_cap() {
        let config = DegradeConfig {
            probe_fraction: 1.0,
            cooldown: SimDuration::from_secs(1),
            ..DegradeConfig::default()
        };
        let mut c = DegradeController::new(config);
        c.track("hot", wf(0));
        c.on_fired(at(0), wf(0));
        c.on_alert_active(at(1), wf(0)); // -> Shedding, cap 4
        c.on_resolved(at(2), wf(0)); // -> Recovering (from shedding)
        let d = c.admit(wf(0));
        assert!(d.probe);
        let t = c.on_terminal(at(3), wf(0), true, true);
        assert_eq!(
            t,
            Some(DegradeTransition::Degraded {
                workflow: wf(0),
                level: DegradeLevel::Shedding, // relapses to where it came from
                cap: 2,
            })
        );
        let r = c.report();
        assert_eq!(r.probe_failures, 1);
        assert_eq!(r.relapses, 1);
    }

    #[test]
    fn refire_during_recovery_relapses() {
        let mut c = controller();
        c.on_fired(at(0), wf(0));
        c.on_resolved(at(1), wf(0));
        let t = c.on_fired(at(2), wf(0));
        assert_eq!(
            t,
            Some(DegradeTransition::Degraded {
                workflow: wf(0),
                level: DegradeLevel::Throttled,
                cap: 4,
            })
        );
        assert_eq!(c.report().relapses, 1);
    }

    #[test]
    fn stale_probe_outcomes_are_ignored() {
        let config = DegradeConfig {
            probe_fraction: 1.0,
            ..DegradeConfig::default()
        };
        let mut c = DegradeController::new(config);
        c.track("hot", wf(0));
        c.on_fired(at(0), wf(0));
        c.on_resolved(at(1), wf(0));
        assert!(c.admit(wf(0)).probe);
        c.on_fired(at(2), wf(0)); // relapse before the probe lands
                                  // The stale probe's bad outcome must not double-relapse.
        assert!(c.on_terminal(at(3), wf(0), true, true).is_none());
        assert_eq!(c.report().relapses, 1);
        assert_eq!(c.report().probe_failures, 0);
    }

    #[test]
    fn hedge_suppression_and_demotion_track_degraded_states() {
        let mut c = controller();
        assert!(!c.suppress_hedge(wf(0)));
        assert!(!c.demotes(wf(0)));
        c.on_fired(at(0), wf(0));
        assert!(c.suppress_hedge(wf(0)));
        assert!(c.demotes(wf(0)));
        assert!(!c.demotes(wf(7))); // untracked workflows never demoted
        c.note_demoted_shed();
        c.on_resolved(at(1), wf(0));
        // Recovering traffic gets hedges and priority back.
        assert!(!c.suppress_hedge(wf(0)));
        assert!(!c.demotes(wf(0)));
        let r = c.report();
        assert_eq!(r.hedges_suppressed, 1);
        assert_eq!(r.demoted_sheds, 1);
        // Both features are individually disableable.
        let config = DegradeConfig {
            suspend_hedges: false,
            demote_shed_priority: false,
            ..DegradeConfig::default()
        };
        let mut c = DegradeController::new(config);
        c.track("hot", wf(0));
        c.on_fired(at(0), wf(0));
        assert!(!c.suppress_hedge(wf(0)));
        assert!(!c.demotes(wf(0)));
    }

    #[test]
    fn zero_report_detection() {
        assert!(DegradeReport::default().is_zero());
        let mut c = DegradeController::new(DegradeConfig::default());
        assert!(c.report().is_zero());
        c.track("hot", wf(0));
        assert!(!c.report().is_zero());
    }
}
