//! Online gray-failure health detection and worker quarantine.
//!
//! The lease detector ([`crate::FaultPlan::detection_delay`]) only catches
//! fail-stop faults: a worker that heartbeats on time while executing 10×
//! slower, hanging mid-exec, or failing every other invocation looks
//! perfectly healthy to it. This module closes that gap with *differential*
//! health statistics: every worker's recent execution latency and failure
//! rate are scored against the fleet median with a MAD (median absolute
//! deviation) outlier test, and sustained outliers move through a
//! hysteretic state machine mirroring the store circuit breaker and the
//! degradation controller:
//!
//! ```text
//!           outlier × probation_after      outlier × quarantine_after
//!   Healthy ─────────────────────▶ Probation ────────────────────▶ Quarantined
//!      ▲                              │                                 │
//!      │ good eval                    │ good eval                       │ cooldown
//!      │◀─────────────────────────────┘                                 ▼
//!      │            reinstate_probes good probes                  Reinstating
//!      └────────────────────────────────────────────────────────────────┘
//!                       bad probe → relapse (back to Quarantined)
//! ```
//!
//! While **Quarantined** the worker is *not* declared dead — its lease
//! stays valid, in-flight work may still complete — but the cluster zeroes
//! its residual capacity in load-aware placement, steers hedges away from
//! it, optionally drains its queued work, and (when placement is enabled)
//! triggers an incremental rebalance off the suspect. **Reinstating** is
//! the half-open probe phase: capacity is restored, the sample window is
//! cleared, and a run of good completions fully reinstates the worker
//! while a bad one relapses.
//!
//! Everything here is deterministic — medians and MADs over integer
//! nanosecond counts, no RNG ever. With [`crate::ClusterConfig::health`]
//! unset (the default) the detector does not exist and all pre-existing
//! runs stay bit-identical.

use faasflow_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Score reported for a stuck-executor quarantine, where no finite
/// latency ratio exists (the worker stopped completing work entirely).
pub const STUCK_SCORE: f64 = 1000.0;

/// MAD floor, as a fraction of the fleet median latency. An
/// all-equally-degraded fleet has near-zero dispersion; without a floor
/// any hair of deviation would flag an outlier. With it, a worker must
/// exceed the fleet median by at least `mad_threshold × floor_fraction ×
/// fleet_median` to be suspected — uniform slowness never quarantines.
const MAD_FLOOR_FRACTION: f64 = 0.1;

/// Health-detector configuration. All thresholds are deterministic; the
/// detector never draws from the RNG.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HealthConfig {
    /// Completed-exec samples retained per worker (ring buffer).
    pub window: usize,
    /// Samples a worker needs before it is scored at all.
    pub min_samples: usize,
    /// MAD multiples above the fleet median latency that flag an outlier.
    pub mad_threshold: f64,
    /// Failure-rate excess over the fleet median that flags an outlier,
    /// in `(0, 1]`.
    pub failure_threshold: f64,
    /// A worker with in-flight instances and no completion for this long
    /// is flagged stuck (the strongest outlier signal).
    pub stuck_after: SimDuration,
    /// Consecutive outlier evaluations before Healthy → Probation.
    pub probation_after: u32,
    /// Further consecutive outlier evaluations before Probation →
    /// Quarantined.
    pub quarantine_after: u32,
    /// Time a worker stays Quarantined before the half-open Reinstating
    /// probe phase begins.
    pub cooldown: SimDuration,
    /// Consecutive good probe completions required to reinstate.
    pub reinstate_probes: u32,
    /// Drain a quarantined worker: queued (not yet executing) instances
    /// pinned to it are re-dispatched elsewhere, and invocations whose
    /// recovery budget is already spent are dead-lettered as
    /// quarantine orphans.
    pub drain_on_quarantine: bool,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            window: 32,
            min_samples: 8,
            mad_threshold: 3.5,
            failure_threshold: 0.5,
            stuck_after: SimDuration::from_secs(5),
            probation_after: 3,
            quarantine_after: 3,
            cooldown: SimDuration::from_secs(10),
            reinstate_probes: 5,
            drain_on_quarantine: true,
        }
    }
}

impl HealthConfig {
    /// Checks the configuration for internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.window == 0 {
            return Err("health window must be at least 1 sample".to_string());
        }
        if self.min_samples == 0 || self.min_samples > self.window {
            return Err(format!(
                "health min_samples must be in [1, window={}], got {}",
                self.window, self.min_samples
            ));
        }
        if !(self.mad_threshold.is_finite() && self.mad_threshold > 0.0) {
            return Err(format!(
                "health mad_threshold must be positive, got {}",
                self.mad_threshold
            ));
        }
        if !(self.failure_threshold > 0.0 && self.failure_threshold <= 1.0) {
            return Err(format!(
                "health failure_threshold must be in (0, 1], got {}",
                self.failure_threshold
            ));
        }
        if self.stuck_after.is_zero() {
            return Err("health stuck_after must be positive".to_string());
        }
        if self.probation_after == 0 {
            return Err("health probation_after must be at least 1".to_string());
        }
        if self.quarantine_after == 0 {
            return Err("health quarantine_after must be at least 1".to_string());
        }
        if self.cooldown.is_zero() {
            return Err("health cooldown must be positive".to_string());
        }
        if self.reinstate_probes == 0 {
            return Err("health reinstate_probes must be at least 1".to_string());
        }
        Ok(())
    }
}

/// Externally visible health level of one worker — carried on trace
/// events, the Prometheus gauge and the Perfetto counter track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum HealthLevel {
    /// Scoring within fleet norms.
    #[default]
    Healthy,
    /// Sustained outlier, not yet acted on.
    Probation,
    /// Capacity restored half-open; probe completions decide.
    Reinstating,
    /// Zero placement capacity, hedges steered away, optionally drained.
    Quarantined,
}

impl HealthLevel {
    /// Numeric severity for counter tracks (0 = healthy, rising with
    /// severity, mirroring the store breaker and degrade levels).
    pub fn as_level(self) -> u32 {
        match self {
            HealthLevel::Healthy => 0,
            HealthLevel::Probation => 1,
            HealthLevel::Reinstating => 2,
            HealthLevel::Quarantined => 3,
        }
    }

    /// Human-readable label for timelines and tables.
    pub fn label(self) -> &'static str {
        match self {
            HealthLevel::Healthy => "healthy",
            HealthLevel::Probation => "probation",
            HealthLevel::Reinstating => "reinstating",
            HealthLevel::Quarantined => "quarantined",
        }
    }
}

/// A state-machine transition the cluster turns into trace events and
/// capacity/placement actions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum HealthTransition {
    /// The worker was quarantined (or relapsed back into quarantine).
    Quarantined {
        worker: u32,
        /// MAD score at the moment of quarantine ([`STUCK_SCORE`] for a
        /// stuck executor).
        score: f64,
        /// When the half-open Reinstating phase should begin; the cluster
        /// schedules a reopen event for this instant.
        reopen_at: SimTime,
        /// `true` when this is a Reinstating → Quarantined relapse.
        relapse: bool,
    },
    /// Cooldown elapsed: the worker entered the half-open probe phase and
    /// its capacity should be restored.
    Reinstating { worker: u32 },
    /// Enough good probes: the worker is fully healthy again.
    Reinstated { worker: u32 },
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Healthy,
    Probation,
    Quarantined,
    Reinstating,
}

#[derive(Debug)]
struct WorkerEntry {
    state: State,
    /// Ring buffer of completed-exec samples, oldest first.
    samples: std::collections::VecDeque<(SimDuration, bool)>,
    inflight: u32,
    /// Last instant this worker made observable progress (completed an
    /// instance, or went from idle to busy).
    last_progress: SimTime,
    /// Consecutive outlier evaluations in the current state.
    strikes: u32,
    /// Consecutive good probe completions while Reinstating.
    good_probes: u32,
    /// Expected reopen instant while Quarantined; a stale reopen event
    /// (scheduled before a relapse) no-ops because its time mismatches.
    reopen_at: SimTime,
    /// Lifetime quarantine count (for the per-worker snapshot).
    quarantines: u64,
}

impl WorkerEntry {
    fn new() -> Self {
        WorkerEntry {
            state: State::Healthy,
            samples: std::collections::VecDeque::new(),
            inflight: 0,
            last_progress: SimTime::ZERO,
            strikes: 0,
            good_probes: 0,
            reopen_at: SimTime::MAX,
            quarantines: 0,
        }
    }

    fn level(&self) -> HealthLevel {
        match self.state {
            State::Healthy => HealthLevel::Healthy,
            State::Probation => HealthLevel::Probation,
            State::Quarantined => HealthLevel::Quarantined,
            State::Reinstating => HealthLevel::Reinstating,
        }
    }

    fn median_latency(&self) -> Option<SimDuration> {
        if self.samples.is_empty() {
            return None;
        }
        let mut lat: Vec<u64> = self.samples.iter().map(|(d, _)| d.as_nanos()).collect();
        lat.sort_unstable();
        Some(SimDuration::from_nanos(lat[(lat.len() - 1) / 2]))
    }

    fn failure_rate(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let failed = self.samples.iter().filter(|(_, f)| *f).count();
        failed as f64 / self.samples.len() as f64
    }
}

/// Final state of one worker, for [`HealthReport::workers`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerHealthSnapshot {
    /// Worker index.
    pub worker: u32,
    /// Health level at report time.
    pub level: HealthLevel,
    /// Samples in the window at report time.
    pub samples: u32,
    /// Median exec latency over the window, microseconds (0 if no samples).
    pub median_exec_us: u64,
    /// Failure fraction over the window.
    pub failure_rate: f64,
    /// Times this worker was quarantined (relapses included).
    pub quarantines: u64,
}

/// Aggregate gray-failure counters for [`crate::RunReport`]. The detector
/// counters stay zero when no [`HealthConfig`] is set, but the injection
/// counters (`zombie_fenced`, `stalled_flows`, `stuck_deferrals`) track
/// [`crate::GrayFault`] effects whether or not a detector watches them.
/// All-zero reports are omitted from serialized output, keeping
/// pre-gray-failure goldens bit-identical.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HealthReport {
    /// Workers watched by the detector (0 when disabled).
    pub workers_tracked: u32,
    /// Differential evaluations performed (one per completion).
    pub evaluations: u64,
    /// Healthy → Probation transitions.
    pub probations: u64,
    /// Probation → Quarantined transitions (relapses not included).
    pub quarantines: u64,
    /// Reinstating → Quarantined relapses (bad probe).
    pub relapses: u64,
    /// Reinstating → Healthy reinstatements.
    pub reinstatements: u64,
    /// Late completions from suspected-dead-but-alive workers rejected by
    /// the seq/epoch fences.
    pub zombie_fenced: u64,
    /// Invocations dead-lettered while draining a quarantined worker.
    pub quarantine_orphans: u64,
    /// Data-plane flows stalled by an asymmetric partition window.
    pub stalled_flows: u64,
    /// Completions deferred to a stuck-executor window's closing edge.
    pub stuck_deferrals: u64,
    /// Per-worker final state, in worker-index order (detector on only).
    pub workers: Vec<WorkerHealthSnapshot>,
}

impl HealthReport {
    /// True when neither a detector nor a gray fault ever fired — the
    /// report block is then omitted from serialized output so
    /// pre-gray-failure goldens stay bit-identical.
    pub fn is_zero(&self) -> bool {
        *self == HealthReport::default()
    }
}

/// Per-cluster health detector: one [`WorkerEntry`] per worker.
#[derive(Debug)]
pub(crate) struct HealthDetector {
    config: HealthConfig,
    entries: Vec<WorkerEntry>,
    report: HealthReport,
}

impl HealthDetector {
    pub(crate) fn new(config: HealthConfig, workers: u32) -> Self {
        HealthDetector {
            config,
            entries: (0..workers).map(|_| WorkerEntry::new()).collect(),
            report: HealthReport {
                workers_tracked: workers,
                ..HealthReport::default()
            },
        }
    }

    #[cfg(test)]
    pub(crate) fn level(&self, worker: u32) -> HealthLevel {
        self.entries[worker as usize].level()
    }

    /// An instance started executing on `worker`.
    pub(crate) fn note_start(&mut self, worker: u32, now: SimTime) {
        let e = &mut self.entries[worker as usize];
        if e.inflight == 0 {
            e.last_progress = now;
        }
        e.inflight += 1;
    }

    /// An `ExecDone` for `worker` died on an admission fence: the
    /// attempt's start was counted, so balance the in-flight gauge without
    /// taking a sample (the superseded completion says nothing about the
    /// worker's current behaviour).
    pub(crate) fn note_fenced(&mut self, worker: u32) {
        let e = &mut self.entries[worker as usize];
        e.inflight = e.inflight.saturating_sub(1);
    }

    /// An instance on `worker` finished (successfully or not) after
    /// `latency`. Records the sample and re-evaluates the fleet.
    pub(crate) fn note_complete(
        &mut self,
        worker: u32,
        latency: SimDuration,
        failed: bool,
        now: SimTime,
    ) -> Vec<HealthTransition> {
        let w = worker as usize;
        {
            let e = &mut self.entries[w];
            e.inflight = e.inflight.saturating_sub(1);
            e.last_progress = now;
            if e.samples.len() == self.config.window {
                e.samples.pop_front();
            }
            e.samples.push_back((latency, failed));
        }
        let mut out = Vec::new();
        // Half-open probe accounting: only the completing worker's own
        // results count as probes.
        if self.entries[w].state == State::Reinstating {
            let cutoff = self.latency_cutoff(Some(worker));
            let bad = failed || cutoff.is_some_and(|c| latency > c);
            if bad {
                self.report.relapses += 1;
                let score = self.config.mad_threshold;
                out.push(self.enter_quarantine(worker, now, score, true));
            } else {
                let e = &mut self.entries[w];
                e.good_probes += 1;
                if e.good_probes >= self.config.reinstate_probes {
                    e.state = State::Healthy;
                    e.strikes = 0;
                    e.good_probes = 0;
                    self.report.reinstatements += 1;
                    out.push(HealthTransition::Reinstated { worker });
                }
            }
        }
        out.extend(self.evaluate(now));
        out
    }

    /// The cooldown reopen event fired. `scheduled_at` fences stale events
    /// from before a relapse.
    pub(crate) fn on_reopen(
        &mut self,
        worker: u32,
        scheduled_at: SimTime,
    ) -> Option<HealthTransition> {
        let e = &mut self.entries[worker as usize];
        if e.state != State::Quarantined || e.reopen_at != scheduled_at {
            return None;
        }
        e.state = State::Reinstating;
        e.good_probes = 0;
        e.strikes = 0;
        e.reopen_at = SimTime::MAX;
        // Fresh window: the suspect's pre-heal history must not decide its
        // probe outcome.
        e.samples.clear();
        Some(HealthTransition::Reinstating { worker })
    }

    /// The worker actually crashed (fail-stop). The lease path owns it
    /// now; reset its differential state so a restart starts clean.
    pub(crate) fn on_worker_crash(&mut self, worker: u32) {
        let quarantines = self.entries[worker as usize].quarantines;
        self.entries[worker as usize] = WorkerEntry {
            quarantines,
            ..WorkerEntry::new()
        };
    }

    /// Merges detector counters and per-worker snapshots into `report`.
    pub(crate) fn snapshot_into(&self, report: &mut HealthReport) {
        let injected = (
            report.zombie_fenced,
            report.stalled_flows,
            report.stuck_deferrals,
            report.quarantine_orphans,
        );
        *report = self.report.clone();
        (
            report.zombie_fenced,
            report.stalled_flows,
            report.stuck_deferrals,
            report.quarantine_orphans,
        ) = injected;
        report.workers = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| WorkerHealthSnapshot {
                worker: i as u32,
                level: e.level(),
                samples: e.samples.len() as u32,
                median_exec_us: e.median_latency().map_or(0, |d| d.as_nanos() / 1_000),
                failure_rate: e.failure_rate(),
                quarantines: e.quarantines,
            })
            .collect();
    }

    fn enter_quarantine(
        &mut self,
        worker: u32,
        now: SimTime,
        score: f64,
        relapse: bool,
    ) -> HealthTransition {
        let reopen_at = now + self.config.cooldown;
        let e = &mut self.entries[worker as usize];
        e.state = State::Quarantined;
        e.strikes = 0;
        e.good_probes = 0;
        e.reopen_at = reopen_at;
        e.quarantines += 1;
        if !relapse {
            self.report.quarantines += 1;
        }
        HealthTransition::Quarantined {
            worker,
            score,
            reopen_at,
            relapse,
        }
    }

    /// The latency above which a single completion (or a worker median)
    /// counts as an outlier: fleet median + threshold × floored MAD.
    /// `exclude` keeps a probing worker's empty/fresh window from biasing
    /// the fleet stats. Returns `None` with fewer than two scoreable
    /// workers — a fleet of one has no peers and never flags anyone.
    fn latency_cutoff(&self, exclude: Option<u32>) -> Option<SimDuration> {
        let (fleet_median, mad) = self.fleet_latency_stats(exclude)?;
        let floor = fleet_median.mul_f64(MAD_FLOOR_FRACTION);
        let mad = mad.max(floor);
        Some(fleet_median + mad.mul_f64(self.config.mad_threshold))
    }

    /// (fleet median of per-worker median latencies, MAD of those
    /// medians), over workers with at least `min_samples`.
    fn fleet_latency_stats(&self, exclude: Option<u32>) -> Option<(SimDuration, SimDuration)> {
        let mut medians: Vec<u64> = self
            .entries
            .iter()
            .enumerate()
            .filter(|(i, e)| {
                Some(*i as u32) != exclude && e.samples.len() >= self.config.min_samples
            })
            .filter_map(|(_, e)| e.median_latency().map(|d| d.as_nanos()))
            .collect();
        if medians.len() < 2 {
            return None;
        }
        medians.sort_unstable();
        let fleet = medians[(medians.len() - 1) / 2];
        let mut dev: Vec<u64> = medians.iter().map(|m| m.abs_diff(fleet)).collect();
        dev.sort_unstable();
        let mad = dev[(dev.len() - 1) / 2];
        Some((SimDuration::from_nanos(fleet), SimDuration::from_nanos(mad)))
    }

    /// Median failure rate over scoreable workers.
    fn fleet_failure_median(&self) -> Option<f64> {
        let mut rates: Vec<f64> = self
            .entries
            .iter()
            .filter(|e| e.samples.len() >= self.config.min_samples)
            .map(|e| e.failure_rate())
            .collect();
        if rates.len() < 2 {
            return None;
        }
        rates.sort_by(|a, b| a.partial_cmp(b).expect("failure rates are finite"));
        Some(rates[(rates.len() - 1) / 2])
    }

    /// One differential evaluation of the whole fleet. Only Healthy and
    /// Probation workers transition here; Quarantined waits for its
    /// cooldown and Reinstating is probe-driven.
    fn evaluate(&mut self, now: SimTime) -> Vec<HealthTransition> {
        self.report.evaluations += 1;
        if self.entries.len() < 2 {
            return Vec::new();
        }
        let stats = self.fleet_latency_stats(None);
        let fail_median = self.fleet_failure_median();
        let mut out = Vec::new();
        for w in 0..self.entries.len() {
            let e = &self.entries[w];
            if !matches!(e.state, State::Healthy | State::Probation) {
                continue;
            }
            // Stuck signal: accepting work, completing nothing.
            let stuck =
                e.inflight > 0 && now.duration_since(e.last_progress) > self.config.stuck_after;
            let mut score = 0.0_f64;
            let mut outlier = stuck;
            if stuck {
                score = STUCK_SCORE;
            } else if e.samples.len() >= self.config.min_samples {
                if let (Some((fleet, mad)), Some(med)) = (stats, e.median_latency()) {
                    let mad = mad.max(fleet.mul_f64(MAD_FLOOR_FRACTION));
                    if med > fleet {
                        score = (med - fleet).as_nanos() as f64 / mad.as_nanos().max(1) as f64;
                        outlier = score > self.config.mad_threshold;
                    }
                }
                if !outlier {
                    if let Some(fleet_fail) = fail_median {
                        let excess = e.failure_rate() - fleet_fail;
                        if excess > self.config.failure_threshold {
                            outlier = true;
                            score = excess / self.config.failure_threshold;
                        }
                    }
                }
            }
            let e = &mut self.entries[w];
            if !outlier {
                // One good eval clears strikes and probation entirely.
                e.strikes = 0;
                if e.state == State::Probation {
                    e.state = State::Healthy;
                }
                continue;
            }
            e.strikes += 1;
            match e.state {
                State::Healthy => {
                    if e.strikes >= self.config.probation_after {
                        e.state = State::Probation;
                        e.strikes = 0;
                        self.report.probations += 1;
                    }
                }
                State::Probation => {
                    if e.strikes >= self.config.quarantine_after {
                        out.push(self.enter_quarantine(w as u32, now, score, false));
                    }
                }
                _ => unreachable!("filtered above"),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> HealthConfig {
        HealthConfig {
            min_samples: 4,
            probation_after: 2,
            quarantine_after: 2,
            reinstate_probes: 2,
            ..HealthConfig::default()
        }
    }

    fn feed(
        d: &mut HealthDetector,
        worker: u32,
        ms: u64,
        n: usize,
        now: &mut SimTime,
    ) -> Vec<HealthTransition> {
        let mut out = Vec::new();
        for _ in 0..n {
            *now += SimDuration::from_millis(10);
            d.note_start(worker, *now);
            out.extend(d.note_complete(worker, SimDuration::from_millis(ms), false, *now));
        }
        out
    }

    #[test]
    fn config_validation_rejects_bad_knobs() {
        HealthConfig::default().validate().expect("default valid");
        let bad = [
            HealthConfig {
                window: 0,
                ..HealthConfig::default()
            },
            HealthConfig {
                min_samples: 64,
                window: 32,
                ..HealthConfig::default()
            },
            HealthConfig {
                mad_threshold: 0.0,
                ..HealthConfig::default()
            },
            HealthConfig {
                failure_threshold: 1.5,
                ..HealthConfig::default()
            },
            HealthConfig {
                stuck_after: SimDuration::ZERO,
                ..HealthConfig::default()
            },
            HealthConfig {
                probation_after: 0,
                ..HealthConfig::default()
            },
            HealthConfig {
                quarantine_after: 0,
                ..HealthConfig::default()
            },
            HealthConfig {
                cooldown: SimDuration::ZERO,
                ..HealthConfig::default()
            },
            HealthConfig {
                reinstate_probes: 0,
                ..HealthConfig::default()
            },
        ];
        for c in bad {
            assert!(c.validate().is_err(), "{c:?} should be rejected");
        }
    }

    #[test]
    fn slow_outlier_is_quarantined_and_reinstated() {
        let mut d = HealthDetector::new(config(), 3);
        let mut now = SimTime::ZERO;
        // Two healthy peers at ~50 ms, one worker at 500 ms.
        feed(&mut d, 0, 50, 8, &mut now);
        feed(&mut d, 1, 50, 8, &mut now);
        let transitions = feed(&mut d, 2, 500, 12, &mut now);
        let q = transitions.iter().find_map(|t| match t {
            HealthTransition::Quarantined { worker, score, .. } => Some((*worker, *score)),
            _ => None,
        });
        let (worker, score) = q.expect("slow worker quarantined");
        assert_eq!(worker, 2);
        assert!(score > 3.5, "score {score} should exceed the threshold");
        assert_eq!(d.level(2), HealthLevel::Quarantined);
        assert_eq!(d.level(0), HealthLevel::Healthy);

        // Cooldown elapses: half-open, then good probes reinstate.
        let reopen = match transitions
            .iter()
            .rev()
            .find(|t| matches!(t, HealthTransition::Quarantined { .. }))
            .unwrap()
        {
            HealthTransition::Quarantined { reopen_at, .. } => *reopen_at,
            _ => unreachable!(),
        };
        // A reopen event stamped with the wrong instant is stale: fenced.
        assert!(d
            .on_reopen(2, reopen + SimDuration::from_millis(1))
            .is_none());
        assert!(matches!(
            d.on_reopen(2, reopen),
            Some(HealthTransition::Reinstating { worker: 2 })
        ));
        now = reopen;
        let transitions = feed(&mut d, 2, 50, 4, &mut now);
        assert!(
            transitions
                .iter()
                .any(|t| matches!(t, HealthTransition::Reinstated { worker: 2 })),
            "healed worker reinstates after good probes: {transitions:?}"
        );
        assert_eq!(d.level(2), HealthLevel::Healthy);
    }

    #[test]
    fn bad_probe_relapses() {
        let mut d = HealthDetector::new(config(), 3);
        let mut now = SimTime::ZERO;
        feed(&mut d, 0, 50, 8, &mut now);
        feed(&mut d, 1, 50, 8, &mut now);
        let transitions = feed(&mut d, 2, 800, 12, &mut now);
        let reopen = transitions
            .iter()
            .find_map(|t| match t {
                HealthTransition::Quarantined { reopen_at, .. } => Some(*reopen_at),
                _ => None,
            })
            .expect("quarantined");
        d.on_reopen(2, reopen).expect("reopens");
        now = reopen;
        // Still slow: the first probe relapses.
        let transitions = feed(&mut d, 2, 800, 1, &mut now);
        assert!(
            transitions
                .iter()
                .any(|t| matches!(t, HealthTransition::Quarantined { relapse: true, .. })),
            "slow probe relapses: {transitions:?}"
        );
        assert_eq!(d.level(2), HealthLevel::Quarantined);
        let mut report = HealthReport::default();
        d.snapshot_into(&mut report);
        assert_eq!(report.relapses, 1);
        assert_eq!(report.quarantines, 1);
        assert_eq!(report.workers[2].quarantines, 2);
    }

    #[test]
    fn fleet_of_one_never_quarantines() {
        let mut d = HealthDetector::new(config(), 1);
        let mut now = SimTime::ZERO;
        let transitions = feed(&mut d, 0, 5000, 40, &mut now);
        assert!(transitions.is_empty(), "no peers, no suspicion");
        assert_eq!(d.level(0), HealthLevel::Healthy);
    }

    #[test]
    fn uniformly_slow_fleet_has_no_outlier() {
        let mut d = HealthDetector::new(config(), 3);
        let mut now = SimTime::ZERO;
        let mut transitions = Vec::new();
        for w in 0..3 {
            transitions.extend(feed(&mut d, w, 2000, 16, &mut now));
        }
        assert!(
            transitions.is_empty(),
            "uniform slowness is not an outlier: {transitions:?}"
        );
        for w in 0..3 {
            assert_eq!(d.level(w), HealthLevel::Healthy);
        }
    }

    #[test]
    fn elevated_failure_rate_is_an_outlier() {
        let mut d = HealthDetector::new(config(), 3);
        let mut now = SimTime::ZERO;
        feed(&mut d, 0, 50, 8, &mut now);
        feed(&mut d, 1, 50, 8, &mut now);
        // Same latency, but every exec fails.
        let mut transitions = Vec::new();
        for _ in 0..12 {
            now += SimDuration::from_millis(10);
            d.note_start(2, now);
            transitions.extend(d.note_complete(2, SimDuration::from_millis(50), true, now));
        }
        assert!(
            transitions
                .iter()
                .any(|t| matches!(t, HealthTransition::Quarantined { worker: 2, .. })),
            "flaky worker quarantined: {transitions:?}"
        );
    }

    #[test]
    fn stuck_worker_is_flagged_without_completions() {
        let mut d = HealthDetector::new(config(), 3);
        let mut now = SimTime::ZERO;
        feed(&mut d, 0, 50, 8, &mut now);
        feed(&mut d, 1, 50, 8, &mut now);
        // Worker 2 accepts work and never completes; peers keep completing
        // and each completion re-evaluates the fleet.
        d.note_start(2, now);
        now += SimDuration::from_secs(6);
        let transitions = feed(&mut d, 0, 50, 8, &mut now);
        let stuck = transitions.iter().find_map(|t| match t {
            HealthTransition::Quarantined { worker, score, .. } => Some((*worker, *score)),
            _ => None,
        });
        let (worker, score) = stuck.expect("stuck worker quarantined");
        assert_eq!(worker, 2);
        assert_eq!(score, STUCK_SCORE);
    }

    #[test]
    fn crash_resets_detector_state() {
        let mut d = HealthDetector::new(config(), 3);
        let mut now = SimTime::ZERO;
        feed(&mut d, 0, 50, 8, &mut now);
        feed(&mut d, 1, 50, 8, &mut now);
        feed(&mut d, 2, 800, 12, &mut now);
        assert_eq!(d.level(2), HealthLevel::Quarantined);
        d.on_worker_crash(2);
        assert_eq!(d.level(2), HealthLevel::Healthy);
        let mut report = HealthReport::default();
        d.snapshot_into(&mut report);
        assert_eq!(report.workers[2].samples, 0);
        assert_eq!(report.workers[2].quarantines, 1, "lifetime count survives");
    }
}
