//! # faasflow-core
//!
//! The FaaSFlow cluster simulation: the public entry point of the
//! reproduction. It wires the substrates — DES kernel, max-min fair
//! network, container runtime, remote store, FaaStore — to the two
//! workflow engines and exposes the measurement interface the paper's
//! evaluation needs.
//!
//! Quick tour:
//!
//! * [`ClusterConfig`] — cluster topology and knobs (schedule mode,
//!   FaaStore on/off, storage-node bandwidth, container limits…).
//! * [`Cluster`] — build, [`Cluster::register`] workflows with a
//!   [`ClientConfig`] (closed- or open-loop), run, and collect a
//!   [`RunReport`].
//!
//! ```
//! use faasflow_core::{Cluster, ClusterConfig, ClientConfig, ScheduleMode};
//! use faasflow_wdl::{Workflow, Step, FunctionProfile};
//!
//! let config = ClusterConfig {
//!     mode: ScheduleMode::WorkerSp,
//!     faastore: true,
//!     ..ClusterConfig::default()
//! };
//! let mut cluster = Cluster::new(config)?;
//! let wf = Workflow::steps(
//!     "pipeline",
//!     Step::sequence(vec![
//!         Step::task("extract", FunctionProfile::with_millis(40, 4 << 20)),
//!         Step::task("load", FunctionProfile::with_millis(25, 0)),
//!     ]),
//! );
//! cluster.register(&wf, ClientConfig::ClosedLoop { invocations: 10 })?;
//! cluster.run_until_idle();
//! let report = cluster.report();
//! assert_eq!(report.workflow("pipeline").completed, 10);
//! # Ok::<(), faasflow_core::ClusterError>(())
//! ```

pub mod cluster;
pub mod config;
pub mod degrade;
pub mod error;
pub mod fault;
pub mod health;
pub mod invocation;
pub mod journal;
pub mod metrics;
pub mod overload;
pub mod sample;
pub mod slo;
pub mod trace;

pub use cluster::Cluster;
pub use config::{ClientConfig, ClusterConfig, ReclamationMode, ScheduleMode};
pub use degrade::{DegradeConfig, DegradeLevel, DegradeReport, WorkflowDegradeSnapshot};
pub use error::ClusterError;
pub use fault::{
    BackoffPolicy, DeadLetterReason, EngineCrash, EngineTarget, FaultPlan, GrayFault,
    GrayFaultKind, NetFault, NodeCrash, StorageFault, StorageFaultKind,
};
pub use health::{HealthConfig, HealthLevel, HealthReport, WorkerHealthSnapshot};
pub use invocation::InstanceToken;
pub use journal::{Journal, JournalConfig, JournalRecord, TerminalOutcome};
pub use metrics::{
    DistributionRow, EventTypeProfile, FaultReport, LoopProfile, OverloadReport, PlacementReport,
    RecoveryReport, RunReport, WorkerUtilization, WorkflowReport,
};
pub use overload::{
    AdaptiveHedge, AdmissionConfig, BackpressureConfig, BreakerConfig, BreakerState, HedgeConfig,
    OverloadConfig, P2Quantile, ShedPolicy,
};
pub use sample::{ClusterSample, NodeSample, NodeSeries, ResourceSeriesReport};
pub use slo::{SloConfig, SloObjective, SloObjectiveSnapshot, SloReport, WindowMode};
pub use trace::TraceEvent;
// Placement-layer types threaded through the cluster's public surface.
pub use faasflow_engine::EngineLoad;
pub use faasflow_scheduler::{PlacementConfig, WorkerLoad};
