//! Cluster error type.

use std::fmt;

use faasflow_scheduler::ScheduleError;
use faasflow_wdl::WdlError;

/// An error raised while configuring the cluster or registering workflows.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClusterError {
    /// The cluster configuration is inconsistent.
    InvalidConfig(String),
    /// The client configuration is inconsistent.
    InvalidClient(String),
    /// The workflow definition failed validation/parsing.
    Wdl(WdlError),
    /// The graph scheduler could not place the workflow.
    Schedule(ScheduleError),
    /// A workflow with this name is already registered.
    DuplicateWorkflow(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::InvalidConfig(r) => write!(f, "invalid cluster configuration: {r}"),
            ClusterError::InvalidClient(r) => write!(f, "invalid client configuration: {r}"),
            ClusterError::Wdl(e) => write!(f, "workflow definition error: {e}"),
            ClusterError::Schedule(e) => write!(f, "scheduling error: {e}"),
            ClusterError::DuplicateWorkflow(n) => {
                write!(f, "workflow `{n}` is already registered")
            }
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Wdl(e) => Some(e),
            ClusterError::Schedule(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WdlError> for ClusterError {
    fn from(e: WdlError) -> Self {
        ClusterError::Wdl(e)
    }
}

impl From<ScheduleError> for ClusterError {
    fn from(e: ScheduleError) -> Self {
        ClusterError::Schedule(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_source() {
        let e: ClusterError = WdlError::NoFunctions.into();
        assert!(matches!(e, ClusterError::Wdl(_)));
        assert!(std::error::Error::source(&e).is_some());
        let e: ClusterError = ScheduleError::NoWorkers.into();
        assert!(e.to_string().contains("scheduling error"));
    }
}
