//! The cluster simulation: the world that wires engines, containers,
//! stores, and the network into one deterministic discrete-event system.
//!
//! Topology (matching the artifact, §A.4): node 0 is the master/storage
//! node — it runs the Graph Scheduler, generates invocations, and hosts the
//! remote store (and, under MasterSP, the central workflow engine). Nodes
//! `1..=workers` are workers, each running a container manager, a FaaStore
//! instance, and (under WorkerSP) a per-worker workflow engine.
//!
//! Every latency of the real system maps to a simulated cost:
//!
//! | real mechanism | model |
//! |---|---|
//! | task assignment / state return / state sync (TCP) | [`faasflow_net::MessageModel`] latency |
//! | master engine trigger checks | single-server CPU queue, `master_task_cost` per message |
//! | worker engine event handling | fixed `worker_engine_cost` |
//! | container cold/warm start, keep-alive, caps | [`ContainerManager`] |
//! | remote store reads/writes | per-op overhead + max-min fair flow through the storage NIC |
//! | FaaStore local passing | loopback flow (no NIC usage) |

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use faasflow_container::{Admission, ContainerManager, StartKind};
use faasflow_engine::{MasterAction, MasterEngine, WorkerAction, WorkerEngine};
use faasflow_net::{FlowNet, NicSpec};
use faasflow_scheduler::{
    ContentionSet, DeploymentManager, FeedbackCollector, GraphScheduler, PartitionConfig,
    RuntimeMetrics, WorkerInfo,
};
use faasflow_sim::{
    ContainerId, EventId, EventQueue, FunctionId, InvocationId, NodeId, SimDuration, SimRng,
    SimTime, WorkflowId,
};
use faasflow_store::{quota, DataKey, FaaStore, Placement, RemoteStore, StorageType};
use faasflow_wdl::{DagParser, NodeKind, ParserConfig, Workflow, WorkflowDag};

use crate::config::{ClientConfig, ClusterConfig, ReclamationMode, ScheduleMode};
use crate::error::ClusterError;
use crate::invocation::{InstanceState, InstanceToken, InvState};
use crate::metrics::{DistributionRow, RunReport, WorkerUtilization, WorkflowMetrics};
use crate::trace::{TraceEvent, Tracer};

/// Tag attached to every network flow.
#[derive(Debug, Clone, Copy)]
enum FlowTag {
    /// An instance reading one producer's output.
    Read {
        token: InstanceToken,
        producer: FunctionId,
        started: SimTime,
        remote: bool,
    },
    /// An instance writing its output share.
    Write {
        token: InstanceToken,
        started: SimTime,
        remote: bool,
    },
}

/// Messages the master CPU processes one at a time.
#[derive(Debug, Clone, Copy)]
enum MasterInbox {
    Begin {
        wf: WorkflowId,
        inv: InvocationId,
    },
    StateReturn {
        wf: WorkflowId,
        inv: InvocationId,
        function: FunctionId,
    },
}

/// Simulation events.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// A client sends an invocation of `wf`.
    Arrival { wf: WorkflowId },
    /// WorkerSP: the begin notification reaches a worker engine.
    DeliverBegin {
        worker: usize,
        wf: WorkflowId,
        inv: InvocationId,
    },
    /// WorkerSP: a state-sync message reaches a worker engine.
    DeliverSync {
        worker: usize,
        wf: WorkflowId,
        inv: InvocationId,
        completed: FunctionId,
    },
    /// MasterSP: a task assignment reaches a worker.
    DeliverAssign {
        worker: usize,
        wf: WorkflowId,
        inv: InvocationId,
        function: FunctionId,
    },
    /// An exit-node completion report reaches the master/client.
    DeliverExitReport { wf: WorkflowId, inv: InvocationId },
    /// A message arrives in the master engine's inbox.
    MasterArrive { msg: MasterInbox },
    /// The master engine finishes processing its current message.
    MasterDone,
    /// WorkerSP: a virtual node completes on a worker.
    VirtualDone {
        worker: usize,
        wf: WorkflowId,
        inv: InvocationId,
        function: FunctionId,
    },
    /// A container finished booting/dispatching; the instance starts
    /// fetching inputs.
    InstanceReady {
        worker: usize,
        token: InstanceToken,
        container: ContainerId,
        cold: bool,
    },
    /// Remote-store read begins after the server-side overhead.
    StartRemoteRead {
        worker: usize,
        token: InstanceToken,
        producer: FunctionId,
        bytes: u64,
        started: SimTime,
    },
    /// Remote-store write begins after the server-side overhead.
    StartRemoteWrite {
        worker: usize,
        token: InstanceToken,
        bytes: u64,
        started: SimTime,
    },
    /// An instance's compute finished; write the output.
    ExecDone {
        worker: usize,
        token: InstanceToken,
    },
    /// WorkerSP: the worker engine processes an instance completion.
    WorkerInstanceDone {
        worker: usize,
        token: InstanceToken,
    },
    /// The earliest network flow completes.
    FlowTick,
    /// A worker's earliest container keep-alive expires.
    ContainerExpiry { worker: usize },
    /// An invocation exceeded the timeout.
    Timeout { wf: WorkflowId, inv: InvocationId },
}

/// Per-workflow cluster state.
struct WorkflowState {
    name: String,
    /// Mutable master copy of the DAG (edge weights evolve with feedback).
    dag: WorkflowDag,
    /// Snapshot deployed to engines for the current version.
    dag_arc: Arc<WorkflowDag>,
    deployment: DeploymentManager,
    client: ClientConfig,
    contention: ContentionSet,
    feedback: FeedbackCollector,
    prev_metrics: RuntimeMetrics,
    quota: u64,
    critical_exec: SimDuration,
    sent: u32,
    completed_since_partition: u32,
    arm_seed: u64,
}

/// The FaaSFlow cluster simulation.
///
/// ```
/// use faasflow_core::{Cluster, ClusterConfig, ClientConfig};
/// use faasflow_wdl::{Workflow, Step, FunctionProfile};
///
/// let mut cluster = Cluster::new(ClusterConfig::default())?;
/// let wf = Workflow::steps(
///     "hello",
///     Step::task("hi", FunctionProfile::with_millis(10, 0)),
/// );
/// cluster.register(&wf, ClientConfig::ClosedLoop { invocations: 3 })?;
/// cluster.run_until_idle();
/// let report = cluster.report();
/// assert_eq!(report.workflow("hello").completed, 3);
/// # Ok::<(), faasflow_core::ClusterError>(())
/// ```
pub struct Cluster {
    config: ClusterConfig,
    queue: EventQueue<Event>,
    rng: SimRng,
    net: FlowNet<FlowTag>,
    flow_timer: Option<EventId>,
    containers: Vec<ContainerManager<InstanceToken>>,
    expiry_timers: Vec<Option<EventId>>,
    faastores: Vec<FaaStore>,
    remote: RemoteStore,
    worker_engines: Vec<WorkerEngine>,
    master_engine: MasterEngine,
    master_inbox: VecDeque<MasterInbox>,
    master_current: Option<MasterInbox>,
    master_busy_time: SimDuration,
    workflows: HashMap<WorkflowId, WorkflowState>,
    names: HashMap<String, WorkflowId>,
    invocations: HashMap<(WorkflowId, InvocationId), InvState>,
    metrics: HashMap<WorkflowId, WorkflowMetrics>,
    next_workflow: u32,
    next_invocation: u32,
    scheduler: GraphScheduler,
    /// Wall-clock seconds spent inside `GraphScheduler::partition`.
    partition_wall_secs: f64,
    partition_runs: u32,
    /// Arrival events scheduled but not yet handled (keeps the run loop
    /// alive while clients still owe invocations).
    pending_arrivals: u32,
    /// Instance executions that failed and were retried.
    exec_retries: u64,
    tracer: Tracer,
    /// Time-weighted busy cores per worker.
    cpu_util: Vec<faasflow_sim::stats::TimeWeighted>,
    /// Time-weighted resident container memory per worker.
    mem_util: Vec<faasflow_sim::stats::TimeWeighted>,
}

impl Cluster {
    /// Builds the cluster.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidConfig`] when the configuration is
    /// inconsistent.
    pub fn new(config: ClusterConfig) -> Result<Self, ClusterError> {
        config.validate().map_err(ClusterError::InvalidConfig)?;
        let mut rng = SimRng::seed_from(config.seed);
        let mut nics = Vec::with_capacity(config.node_count());
        nics.push(NicSpec::symmetric(config.storage_bandwidth)); // master/storage
        for _ in 0..config.workers {
            nics.push(NicSpec::symmetric(config.worker_bandwidth));
        }
        let containers = (0..config.workers)
            .map(|_| ContainerManager::new(config.node_caps, config.container))
            .collect();
        let faastores = (0..config.workers)
            .map(|_| FaaStore::new(config.faastore))
            .collect();
        let worker_engines = (0..config.workers)
            .map(|i| WorkerEngine::new(NodeId::new(i + 1)))
            .collect();
        let _ = rng.next_u64(); // decorrelate from the seed value itself
        Ok(Cluster {
            queue: EventQueue::new(),
            rng,
            net: FlowNet::new(nics),
            flow_timer: None,
            containers,
            expiry_timers: vec![None; config.workers as usize],
            faastores,
            remote: RemoteStore::new(config.remote_store),
            worker_engines,
            master_engine: MasterEngine::new(),
            master_inbox: VecDeque::new(),
            master_current: None,
            master_busy_time: SimDuration::ZERO,
            workflows: HashMap::new(),
            names: HashMap::new(),
            invocations: HashMap::new(),
            metrics: HashMap::new(),
            next_workflow: 0,
            next_invocation: 0,
            scheduler: GraphScheduler::new(PartitionConfig {
                placement: config.placement,
                ..PartitionConfig::default()
            }),
            partition_wall_secs: 0.0,
            partition_runs: 0,
            pending_arrivals: 0,
            exec_retries: 0,
            tracer: Tracer::new(config.trace),
            cpu_util: vec![faasflow_sim::stats::TimeWeighted::new(); config.workers as usize],
            mem_util: vec![faasflow_sim::stats::TimeWeighted::new(); config.workers as usize],
            config,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Registers a workflow and its driving client.
    ///
    /// # Errors
    ///
    /// Propagates WDL validation and scheduling failures.
    pub fn register(
        &mut self,
        workflow: &Workflow,
        client: ClientConfig,
    ) -> Result<WorkflowId, ClusterError> {
        self.register_with_contention(workflow, client, ContentionSet::default())
    }

    /// Registers a workflow with declared contention pairs (`cont(G)`).
    ///
    /// # Errors
    ///
    /// Propagates WDL validation and scheduling failures.
    pub fn register_with_contention(
        &mut self,
        workflow: &Workflow,
        client: ClientConfig,
        contention: ContentionSet,
    ) -> Result<WorkflowId, ClusterError> {
        client.validate().map_err(ClusterError::InvalidClient)?;
        if self.names.contains_key(&workflow.name) {
            return Err(ClusterError::DuplicateWorkflow(workflow.name.clone()));
        }
        let parser = DagParser::new(ParserConfig {
            reference_bandwidth: self.config.storage_bandwidth,
            ..ParserConfig::default()
        });
        let dag = parser.parse(workflow)?;
        let wf = WorkflowId::new(self.next_workflow);
        self.next_workflow += 1;

        let q = quota::workflow_quota(&dag, self.config.mu);
        let prev_metrics = RuntimeMetrics::initial(&dag);
        let mut state = WorkflowState {
            name: workflow.name.clone(),
            feedback: FeedbackCollector::new(&dag),
            critical_exec: dag.critical_path_exec(),
            dag_arc: Arc::new(dag.clone()),
            dag,
            deployment: DeploymentManager::new(),
            client,
            contention,
            prev_metrics,
            quota: q,
            sent: 0,
            completed_since_partition: 0,
            arm_seed: self.rng.next_u64(),
        };
        self.partition_and_deploy(wf, &mut state)?;
        self.workflows.insert(wf, state);
        self.names.insert(workflow.name.clone(), wf);
        self.metrics.insert(wf, WorkflowMetrics::default());

        // Kick off the client.
        match client {
            ClientConfig::ClosedLoop { .. } => {
                self.schedule_arrival(self.queue.now(), wf);
            }
            ClientConfig::OpenLoop { per_minute, .. } => {
                let gap = self.rng.exp_f64(60.0 / per_minute);
                let at = self.queue.now() + SimDuration::from_secs_f64(gap);
                self.schedule_arrival(at, wf);
            }
            ClientConfig::Manual => {}
        }
        Ok(wf)
    }

    /// The id of a registered workflow.
    pub fn workflow_id(&self, name: &str) -> Option<WorkflowId> {
        self.names.get(name).copied()
    }

    /// The current placement of a workflow (Figure 15).
    ///
    /// # Panics
    ///
    /// Panics if `wf` is unknown.
    pub fn distribution(&self, wf: WorkflowId) -> Vec<DistributionRow> {
        let ws = &self.workflows[&wf];
        let (_, assignment) = ws.deployment.current().expect("workflow deployed");
        assignment
            .distribution(&ws.dag)
            .into_iter()
            .map(|(worker, groups, functions)| DistributionRow {
                worker,
                groups,
                functions,
            })
            .collect()
    }

    /// Replaces a workflow's client with an open loop at `per_minute`
    /// sending `invocations` further invocations. Call only when the
    /// previous client has drained (e.g. after a closed-loop warm-up and
    /// [`Cluster::run_until_idle`]) — the §5.4 methodology warms containers
    /// closed-loop, then measures open-loop.
    ///
    /// # Panics
    ///
    /// Panics if `wf` is unknown or `per_minute` is not positive.
    pub fn switch_to_open_loop(&mut self, wf: WorkflowId, per_minute: f64, invocations: u32) {
        assert!(
            per_minute.is_finite() && per_minute > 0.0,
            "open-loop rate must be positive"
        );
        let state = self.workflows.get_mut(&wf).expect("unknown workflow");
        state.client = ClientConfig::OpenLoop {
            per_minute,
            invocations: state.sent + invocations,
        };
        let gap = self.rng.exp_f64(60.0 / per_minute);
        let at = self.queue.now() + SimDuration::from_secs_f64(gap);
        self.schedule_arrival(at, wf);
    }

    /// Sends one invocation immediately (manual clients).
    ///
    /// # Panics
    ///
    /// Panics if `wf` is unknown.
    pub fn invoke_now(&mut self, wf: WorkflowId) {
        assert!(self.workflows.contains_key(&wf), "unknown workflow {wf}");
        self.schedule_arrival(self.queue.now(), wf);
    }

    /// Runs until no *work* remains: no live invocation and no pending
    /// client arrival. Maintenance timers (container keep-alive expiry)
    /// stay queued, so warm pools survive between measurement phases
    /// instead of the clock fast-forwarding 600 s to drain them.
    /// Returns the final simulated time.
    pub fn run_until_idle(&mut self) -> SimTime {
        while self.work_pending() {
            let Some((t, ev)) = self.queue.pop() else {
                break;
            };
            self.handle(t, ev);
        }
        self.queue.now()
    }

    /// True while an invocation is in flight or an arrival is scheduled.
    fn work_pending(&self) -> bool {
        self.pending_arrivals > 0 || !self.invocations.is_empty()
    }

    /// Schedules a client arrival, keeping the pending count in step.
    fn schedule_arrival(&mut self, at: SimTime, wf: WorkflowId) {
        self.pending_arrivals += 1;
        self.queue.schedule(at, Event::Arrival { wf });
    }

    /// Runs until the clock reaches `deadline` (events at the deadline are
    /// processed) or the queue drains.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            let (t, ev) = self.queue.pop().expect("peeked event exists");
            self.handle(t, ev);
        }
    }

    /// Wall-clock seconds spent in the graph partitioner (Figure 16) and
    /// the number of partition runs.
    pub fn partition_wall_time(&self) -> (f64, u32) {
        (self.partition_wall_secs, self.partition_runs)
    }

    /// Drains the recorded trace (empty unless `config.trace` is set).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.tracer.take()
    }

    /// Time-averaged and peak CPU/memory usage per worker, up to the
    /// current simulated instant (§5.6–5.7).
    pub fn utilization(&self) -> Vec<WorkerUtilization> {
        let now = self.queue.now();
        (0..self.config.workers as usize)
            .map(|w| WorkerUtilization {
                worker: self.config.worker_node(w as u32),
                cpu_mean_cores: self.cpu_util[w].mean(now),
                cpu_peak_cores: self.cpu_util[w].peak(),
                mem_mean_bytes: self.mem_util[w].mean(now),
                mem_peak_bytes: self.mem_util[w].peak(),
            })
            .collect()
    }

    /// Clears the per-workflow measurement histograms, keeping all cluster
    /// state (warm containers, deployments, in-flight work). Call after a
    /// warm-up phase so that one-time cold starts do not pollute the
    /// steady-state statistics — the paper's closed-loop methodology
    /// explicitly excludes cold-start effects from its latency numbers
    /// (§2.3).
    pub fn reset_metrics(&mut self) {
        for m in self.metrics.values_mut() {
            *m = WorkflowMetrics::default();
        }
    }

    /// Grants a workflow more client invocations (same client shape). Used
    /// by harnesses that warm up and then measure.
    ///
    /// # Panics
    ///
    /// Panics if `wf` is unknown.
    pub fn extend_client(&mut self, wf: WorkflowId, additional: u32) {
        let state = self.workflows.get_mut(&wf).expect("unknown workflow");
        // Whether the previous allotment already ran out — only then does
        // the arrival chain need re-arming (a live chain keeps itself
        // going; re-arming it would double the rate).
        let drained = state.sent >= state.client.total_invocations();
        match &mut state.client {
            ClientConfig::ClosedLoop { invocations }
            | ClientConfig::OpenLoop { invocations, .. } => {
                *invocations += additional;
            }
            ClientConfig::Manual => {}
        }
        if !drained {
            return;
        }
        match state.client {
            ClientConfig::ClosedLoop { .. } => {
                let no_inflight = !self.invocations.keys().any(|&(w, _)| w == wf);
                if no_inflight {
                    self.schedule_arrival(self.queue.now(), wf);
                }
            }
            ClientConfig::OpenLoop { per_minute, .. } => {
                let gap = self.rng.exp_f64(60.0 / per_minute);
                let at = self.queue.now() + SimDuration::from_secs_f64(gap);
                self.schedule_arrival(at, wf);
            }
            ClientConfig::Manual => {}
        }
    }

    /// Produces the aggregated run report.
    pub fn report(&mut self) -> RunReport {
        let mut workflows = BTreeMap::new();
        for (wf, metrics) in &mut self.metrics {
            let name = self.workflows[wf].name.clone();
            workflows.insert(name.clone(), metrics.snapshot(&name));
        }
        let now = self.queue.now();
        let sim_secs = now.as_secs_f64();
        let master_node = ClusterConfig::MASTER_NODE;
        let storage_node_bytes = self.net.bytes_delivered_to(master_node)
            + self.net.bytes_sent_from(master_node);
        let (mut syncs, mut local_updates) = (0u64, 0u64);
        for e in &self.worker_engines {
            syncs += e.stats().syncs_sent.get();
            local_updates += e.stats().local_updates.get();
        }
        let (mut cold, mut warm) = (0u64, 0u64);
        for c in &self.containers {
            cold += c.stats().cold_starts.get();
            warm += c.stats().warm_starts.get();
        }
        let faastore_local_bytes = self
            .faastores
            .iter()
            .map(|f| f.memstore().total_bytes_stored())
            .sum();
        let live_invocation_states = self
            .worker_engines
            .iter()
            .map(|e| e.live_invocations() as u64)
            .sum::<u64>()
            + self.master_engine.live_invocations() as u64;
        RunReport {
            workflows,
            sim_time_secs: sim_secs,
            master_busy_fraction: if sim_secs > 0.0 {
                self.master_busy_time.as_secs_f64() / sim_secs
            } else {
                0.0
            },
            master_tasks_assigned: self.master_engine.stats().tasks_assigned.get(),
            master_state_returns: self.master_engine.stats().state_returns.get(),
            worker_syncs: syncs,
            worker_local_updates: local_updates,
            cold_starts: cold,
            warm_starts: warm,
            storage_node_bytes,
            faastore_local_bytes,
            live_invocation_states,
            exec_retries: self.exec_retries,
        }
    }

    // ==================================================================
    // Partitioning / deployment
    // ==================================================================

    fn partition_and_deploy(
        &mut self,
        wf: WorkflowId,
        state: &mut WorkflowState,
    ) -> Result<(), ClusterError> {
        let workers: Vec<WorkerInfo> = (0..self.config.workers)
            .map(|i| WorkerInfo::new(self.config.worker_node(i), self.config.worker_capacity()))
            .collect();
        let start = std::time::Instant::now();
        let assignment = self.scheduler.partition(
            &state.dag,
            &workers,
            &state.prev_metrics,
            &state.contention,
            state.quota,
            &mut self.rng,
        )?;
        self.partition_wall_secs += start.elapsed().as_secs_f64();
        self.partition_runs += 1;

        let assignment = Arc::new(assignment);
        state.dag_arc = Arc::new(state.dag.clone());
        let (_version, _retired) = state.deployment.deploy((*assignment).clone());

        // Install on the engines and budget the memstores.
        match self.config.mode {
            ScheduleMode::WorkerSp => {
                for e in &mut self.worker_engines {
                    e.install(wf, state.dag_arc.clone(), assignment.clone(), state.arm_seed);
                }
            }
            ScheduleMode::MasterSp => {
                self.master_engine.install(
                    wf,
                    state.dag_arc.clone(),
                    assignment.clone(),
                    state.arm_seed,
                );
            }
        }
        for i in 0..self.config.workers as usize {
            let node = self.config.worker_node(i as u32);
            let members = assignment
                .groups
                .iter()
                .filter(|g| g.worker == node)
                .flat_map(|g| g.members.iter().copied());
            let budget = quota::subset_quota(&state.dag, members, self.config.mu);
            self.faastores[i].memstore_mut().set_budget(wf, budget);
        }
        Ok(())
    }

    fn maybe_repartition(&mut self, wf: WorkflowId, qos_violated: bool) {
        let due_by_count = match self.config.repartition_every {
            Some(period) => {
                self.workflows[&wf].completed_since_partition >= period
            }
            None => false,
        };
        // A QoS violation forces an iteration, but only if at least one
        // invocation completed since the last one (fresh feedback exists).
        let due_by_qos =
            qos_violated && self.workflows[&wf].completed_since_partition > 0;
        if !due_by_count && !due_by_qos {
            return;
        }
        let state = self.workflows.get_mut(&wf).expect("workflow exists");
        state.completed_since_partition = 0;
        let collector = std::mem::replace(&mut state.feedback, FeedbackCollector::new(&state.dag));
        let prev = state.prev_metrics.clone();
        state.prev_metrics = collector.finish(&mut state.dag, &prev);
        // Take the state out to satisfy the borrow checker, then reinsert.
        let mut state = self.workflows.remove(&wf).expect("workflow exists");
        let result = self.partition_and_deploy(wf, &mut state);
        self.workflows.insert(wf, state);
        if let Err(e) = result {
            // A repartition that no longer fits keeps the previous version.
            debug_assert!(false, "repartition failed: {e}");
        }
    }

    // ==================================================================
    // Event dispatch
    // ==================================================================

    fn handle(&mut self, now: SimTime, event: Event) {
        match event {
            Event::Arrival { wf } => self.on_arrival(now, wf),
            Event::DeliverBegin { worker, wf, inv } => {
                let actions = self.worker_engines[worker].begin_invocation(wf, inv);
                self.apply_worker_actions(now, worker, actions);
            }
            Event::DeliverSync {
                worker,
                wf,
                inv,
                completed,
            } => {
                if self.invocation_alive(wf, inv) {
                    let actions = self.worker_engines[worker].on_state_sync(wf, inv, completed);
                    self.apply_worker_actions(now, worker, actions);
                }
            }
            Event::DeliverAssign {
                worker,
                wf,
                inv,
                function,
            } => self.spawn_instances(now, worker, wf, inv, function),
            Event::DeliverExitReport { wf, inv } => self.on_exit_report(now, wf, inv),
            Event::MasterArrive { msg } => {
                self.master_inbox.push_back(msg);
                self.try_start_master(now);
            }
            Event::MasterDone => self.on_master_done(now),
            Event::VirtualDone {
                worker,
                wf,
                inv,
                function,
            } => {
                if self.invocation_alive(wf, inv) {
                    if let Some(state) = self.invocations.get_mut(&(wf, inv)) {
                        state.completed_nodes.insert(function);
                    }
                    let actions =
                        self.worker_engines[worker].on_instance_complete(wf, inv, function);
                    self.apply_worker_actions(now, worker, actions);
                }
            }
            Event::InstanceReady {
                worker,
                token,
                container,
                cold,
            } => self.on_instance_ready(now, worker, token, container, cold),
            Event::StartRemoteRead {
                worker,
                token,
                producer,
                bytes,
                started,
            } => {
                let dst = self.config.worker_node(worker as u32);
                self.net.start_flow(
                    ClusterConfig::MASTER_NODE,
                    dst,
                    bytes,
                    FlowTag::Read {
                        token,
                        producer,
                        started,
                        remote: true,
                    },
                    now,
                );
                self.reschedule_flow_timer(now);
            }
            Event::StartRemoteWrite {
                worker,
                token,
                bytes,
                started,
            } => {
                let src = self.config.worker_node(worker as u32);
                self.net.start_flow(
                    src,
                    ClusterConfig::MASTER_NODE,
                    bytes,
                    FlowTag::Write {
                        token,
                        started,
                        remote: true,
                    },
                    now,
                );
                self.reschedule_flow_timer(now);
            }
            Event::ExecDone { worker, token } => self.on_exec_done(now, worker, token),
            Event::WorkerInstanceDone { worker, token } => {
                if self.invocation_alive(token.workflow, token.invocation) {
                    let actions = self.worker_engines[worker].on_instance_complete(
                        token.workflow,
                        token.invocation,
                        token.function,
                    );
                    self.apply_worker_actions(now, worker, actions);
                }
            }
            Event::FlowTick => {
                self.flow_timer = None;
                let done = self.net.take_completed(now);
                for (_, flow) in done {
                    self.on_flow_done(now, flow.tag);
                }
                self.reschedule_flow_timer(now);
            }
            Event::ContainerExpiry { worker } => {
                self.expiry_timers[worker] = None;
                let admissions = self.containers[worker].evict_expired(now, &mut self.rng);
                self.schedule_admissions(worker, admissions);
                self.track_utilization(now, worker);
                self.reschedule_expiry(now, worker);
            }
            Event::Timeout { wf, inv } => self.on_timeout(now, wf, inv),
        }
    }

    fn invocation_alive(&self, wf: WorkflowId, inv: InvocationId) -> bool {
        self.invocations
            .get(&(wf, inv))
            .map(|s| !s.completed)
            .unwrap_or(false)
    }

    // ==================================================================
    // Client & invocation lifecycle
    // ==================================================================

    fn on_arrival(&mut self, now: SimTime, wf: WorkflowId) {
        self.pending_arrivals = self
            .pending_arrivals
            .checked_sub(1)
            .expect("arrival bookkeeping out of step");
        let state = self.workflows.get_mut(&wf).expect("workflow exists");
        if state.sent >= state.client.total_invocations() {
            return;
        }
        state.sent += 1;
        // Open-loop: schedule the next arrival independently of completion.
        let next_open_rate = match state.client {
            ClientConfig::OpenLoop { per_minute, .. }
                if state.sent < state.client.total_invocations() =>
            {
                Some(per_minute)
            }
            _ => None,
        };
        if let Some(per_minute) = next_open_rate {
            let gap = self.rng.exp_f64(60.0 / per_minute);
            let at = now + SimDuration::from_secs_f64(gap);
            self.schedule_arrival(at, wf);
        }
        let state = self.workflows.get_mut(&wf).expect("workflow exists");
        let inv = InvocationId::new(self.next_invocation);
        self.next_invocation += 1;
        self.tracer.record(|| TraceEvent::InvocationArrived {
            workflow: wf,
            invocation: inv,
            at: now,
        });
        let version = state.deployment.invocation_started();
        let assignment = Arc::new(
            state
                .deployment
                .assignment(version)
                .expect("current version has an assignment")
                .clone(),
        );
        let mut inv_state = InvState::new(version, state.dag_arc.clone(), assignment, now);
        let timeout_at = now + self.config.timeout;
        inv_state.timeout_event = Some(self.queue.schedule(timeout_at, Event::Timeout { wf, inv }));
        self.metrics.get_mut(&wf).expect("metrics exist").sent += 1;

        match self.config.mode {
            ScheduleMode::WorkerSp => {
                // Notify each worker hosting an entry node.
                let mut entry_workers: Vec<usize> = inv_state
                    .dag
                    .entry_nodes()
                    .iter()
                    .filter_map(|&e| {
                        self.config
                            .worker_index(inv_state.assignment.worker_of(e))
                    })
                    .collect();
                entry_workers.sort_unstable();
                entry_workers.dedup();
                self.invocations.insert((wf, inv), inv_state);
                for worker in entry_workers {
                    let delay = self.config.lan.latency(256, &mut self.rng);
                    self.queue
                        .schedule(now + delay, Event::DeliverBegin { worker, wf, inv });
                }
            }
            ScheduleMode::MasterSp => {
                self.invocations.insert((wf, inv), inv_state);
                self.queue.schedule(
                    now,
                    Event::MasterArrive {
                        msg: MasterInbox::Begin { wf, inv },
                    },
                );
            }
        }
    }

    fn on_timeout(&mut self, _now: SimTime, wf: WorkflowId, inv: InvocationId) {
        let Some(state) = self.invocations.get_mut(&(wf, inv)) else {
            return;
        };
        if state.completed {
            return;
        }
        state.timed_out = true;
        state.timeout_event = None;
        let critical = self.workflows[&wf].critical_exec;
        let metrics = self.metrics.get_mut(&wf).expect("metrics exist");
        metrics.timeouts += 1;
        let cap_ms = self.config.timeout.as_millis_f64();
        metrics.e2e.record(cap_ms);
        metrics
            .sched_overhead
            .record((self.config.timeout.saturating_sub(critical)).as_millis_f64());
    }

    fn on_exit_report(&mut self, now: SimTime, wf: WorkflowId, inv: InvocationId) {
        let Some(state) = self.invocations.get_mut(&(wf, inv)) else {
            return;
        };
        if state.completed {
            return;
        }
        state.exits_remaining = state.exits_remaining.saturating_sub(1);
        if state.exits_remaining == 0 {
            self.complete_invocation(now, wf, inv);
        }
    }

    fn complete_invocation(&mut self, now: SimTime, wf: WorkflowId, inv: InvocationId) {
        let mut state = self
            .invocations
            .remove(&(wf, inv))
            .expect("completing a live invocation");
        state.completed = true;
        if let Some(ev) = state.timeout_event.take() {
            self.queue.cancel(ev);
        }
        self.tracer.record(|| TraceEvent::InvocationCompleted {
            workflow: wf,
            invocation: inv,
            at: now,
            timed_out: state.timed_out,
        });

        // Metrics (skip latency if the timeout already recorded it).
        let ws = self.workflows.get_mut(&wf).expect("workflow exists");
        let metrics = self.metrics.get_mut(&wf).expect("metrics exist");
        metrics.completed += 1;
        let mut qos_violated = false;
        {
            let e2e = now - state.started;
            if let Some(target) = self.config.qos_target {
                qos_violated = state.timed_out || e2e > target;
            }
            if !state.timed_out {
                metrics.e2e.record(e2e.as_millis_f64());
                metrics
                    .sched_overhead
                    .record(e2e.saturating_sub(ws.critical_exec).as_millis_f64());
            }
        }
        metrics
            .transfer_total
            .record(state.ledger.total_latency.as_millis_f64());
        metrics
            .bytes_moved
            .record((state.ledger.remote_bytes + state.ledger.local_bytes) as f64);
        metrics.remote_bytes += state.ledger.remote_bytes;
        metrics.local_bytes += state.ledger.local_bytes;
        metrics.first_completion.get_or_insert(now);
        metrics.last_completion = Some(now);

        // Feedback: observed container scale and executor maps.
        for node in state.dag.nodes() {
            if !node.kind.is_function() {
                continue;
            }
            let worker = state.assignment.worker_of(node.id);
            if let Some(wi) = self.config.worker_index(worker) {
                let pool = self.containers[wi].pool_size((wf, node.id)).max(1);
                ws.feedback.observe_scale(node.id, pool);
                ws.feedback.observe_map(node.id, node.parallelism);
            }
        }
        ws.completed_since_partition += 1;

        // Release state everywhere (§4.2.1).
        match self.config.mode {
            ScheduleMode::WorkerSp => {
                for e in &mut self.worker_engines {
                    e.release_invocation(wf, inv);
                }
            }
            ScheduleMode::MasterSp => self.master_engine.release_invocation(wf, inv),
        }
        for fs in &mut self.faastores {
            fs.release_invocation(wf, inv);
        }
        self.remote.release_invocation(inv);
        let _retired = ws.deployment.invocation_finished(state.version);

        // Closed-loop client sends the next invocation on completion.
        if matches!(ws.client, ClientConfig::ClosedLoop { .. })
            && ws.sent < ws.client.total_invocations()
        {
            self.schedule_arrival(now, wf);
        }
        self.maybe_repartition(wf, qos_violated);
    }

    // ==================================================================
    // Master engine (MasterSP)
    // ==================================================================

    fn try_start_master(&mut self, now: SimTime) {
        if self.master_current.is_some() {
            return;
        }
        let Some(msg) = self.master_inbox.pop_front() else {
            return;
        };
        self.master_current = Some(msg);
        self.queue
            .schedule(now + self.config.master_task_cost, Event::MasterDone);
    }

    fn on_master_done(&mut self, now: SimTime) {
        self.master_busy_time += self.config.master_task_cost;
        let msg = self.master_current.take().expect("a message was processing");
        let actions = match msg {
            MasterInbox::Begin { wf, inv } => self.master_engine.begin_invocation(wf, inv),
            MasterInbox::StateReturn { wf, inv, function } => {
                if self.invocation_alive(wf, inv) {
                    self.master_engine.on_state_return(wf, inv, function)
                } else {
                    Vec::new()
                }
            }
        };
        self.apply_master_actions(now, actions);
        self.try_start_master(now);
    }

    fn apply_master_actions(&mut self, now: SimTime, actions: Vec<MasterAction>) {
        for action in actions {
            match action {
                MasterAction::AssignTask {
                    worker,
                    workflow,
                    invocation,
                    function,
                } => {
                    let wi = self
                        .config
                        .worker_index(worker)
                        .expect("assignments target workers");
                    let delay = self.config.lan.latency(512, &mut self.rng);
                    self.queue.schedule(
                        now + delay,
                        Event::DeliverAssign {
                            worker: wi,
                            wf: workflow,
                            inv: invocation,
                            function,
                        },
                    );
                }
                MasterAction::ExitComplete {
                    workflow,
                    invocation,
                    ..
                } => {
                    // The master engine is co-located with the client.
                    self.on_exit_report(now, workflow, invocation);
                }
            }
        }
    }

    // ==================================================================
    // Worker engines (WorkerSP)
    // ==================================================================

    fn apply_worker_actions(&mut self, now: SimTime, worker: usize, actions: Vec<WorkerAction>) {
        for action in actions {
            match action {
                WorkerAction::TriggerFunction {
                    workflow,
                    invocation,
                    function,
                } => {
                    let is_virtual = {
                        let Some(state) = self.invocations.get(&(workflow, invocation)) else {
                            continue;
                        };
                        !state.dag.node(function).kind.is_function()
                    };
                    if is_virtual {
                        self.queue.schedule(
                            now + self.config.worker_engine_cost,
                            Event::VirtualDone {
                                worker,
                                wf: workflow,
                                inv: invocation,
                                function,
                            },
                        );
                    } else {
                        self.spawn_instances(now, worker, workflow, invocation, function);
                    }
                }
                WorkerAction::SyncState {
                    to,
                    workflow,
                    invocation,
                    completed,
                } => {
                    let from = self.config.worker_node(worker as u32);
                    self.tracer.record(|| TraceEvent::StateSyncSent {
                        from,
                        to,
                        workflow,
                        invocation,
                        completed,
                        at: now,
                    });
                    let wi = self
                        .config
                        .worker_index(to)
                        .expect("syncs target workers");
                    let delay = self.config.lan.latency(256, &mut self.rng)
                        + self.config.worker_engine_cost;
                    self.queue.schedule(
                        now + delay,
                        Event::DeliverSync {
                            worker: wi,
                            wf: workflow,
                            inv: invocation,
                            completed,
                        },
                    );
                }
                WorkerAction::ExitComplete {
                    workflow,
                    invocation,
                    ..
                } => {
                    let delay = self.config.lan.latency(256, &mut self.rng);
                    self.queue.schedule(
                        now + delay,
                        Event::DeliverExitReport {
                            wf: workflow,
                            inv: invocation,
                        },
                    );
                }
            }
        }
    }

    // ==================================================================
    // Instance lifecycle
    // ==================================================================

    fn spawn_instances(
        &mut self,
        now: SimTime,
        worker: usize,
        wf: WorkflowId,
        inv: InvocationId,
        function: FunctionId,
    ) {
        let Some(state) = self.invocations.get_mut(&(wf, inv)) else {
            return;
        };
        let parallelism = state.dag.node(function).parallelism.max(1);
        state.instances_remaining.insert(function, parallelism);
        let worker_node = self.config.worker_node(worker as u32);
        self.tracer.record(|| TraceEvent::FunctionTriggered {
            workflow: wf,
            invocation: inv,
            function,
            worker: worker_node,
            at: now,
        });
        for instance in 0..parallelism {
            let token = InstanceToken {
                workflow: wf,
                invocation: inv,
                function,
                instance,
            };
            if let Some(adm) =
                self.containers[worker].request((wf, function), token, now, &mut self.rng)
            {
                self.schedule_admissions(worker, vec![adm]);
            }
        }
        self.track_utilization(now, worker);
        self.reschedule_expiry(now, worker);
    }

    fn schedule_admissions(&mut self, worker: usize, admissions: Vec<Admission<InstanceToken>>) {
        for adm in admissions {
            self.queue.schedule(
                adm.ready_at,
                Event::InstanceReady {
                    worker,
                    token: adm.token,
                    container: adm.container,
                    cold: adm.start == StartKind::Cold,
                },
            );
        }
    }

    fn on_instance_ready(
        &mut self,
        now: SimTime,
        worker: usize,
        token: InstanceToken,
        container: ContainerId,
        cold: bool,
    ) {
        // FaaStore memory reclamation (§4.3.2): shrink a fresh container's
        // cgroup limit to peak-history + μ. MicroVM sandboxes cannot
        // hot-unplug memory, so they keep the provisioned size.
        if cold && self.config.faastore && self.config.reclamation == ReclamationMode::CgroupLimit {
            if let Some(state) = self.invocations.get(&(token.workflow, token.invocation)) {
                if let NodeKind::Function(profile) = &state.dag.node(token.function).kind {
                    let target = profile.peak_mem_bytes + self.config.mu;
                    if target < profile.provisioned_mem_bytes {
                        let _ = self.containers[worker].set_memory_limit(container, target);
                    }
                }
            }
        }
        let Some(state) = self.invocations.get_mut(&(token.workflow, token.invocation)) else {
            // The invocation vanished (shouldn't happen while instances are
            // outstanding); release the container and move on.
            let admissions = self.containers[worker].release(container, now, &mut self.rng);
            self.schedule_admissions(worker, admissions);
            return;
        };
        state.instances.insert(
            token,
            InstanceState {
                container,
                worker,
                pending_inputs: 0,
                retries: 0,
            },
        );
        self.tracer.record(|| TraceEvent::InstanceStarted {
            workflow: token.workflow,
            invocation: token.invocation,
            function: token.function,
            instance: token.instance,
            container,
            cold,
            at: now,
        });
        let state = self
            .invocations
            .get_mut(&(token.workflow, token.invocation))
            .expect("inserted above");

        // Gather inputs: one transfer per producer that actually ran.
        let parallelism = state.dag.node(token.function).parallelism.max(1);
        let inputs: Vec<(FunctionId, u64)> = state
            .dag
            .data_inputs(token.function)
            .filter(|d| state.completed_nodes.contains(&d.producer))
            .map(|d| (d.producer, InvState::share(d.bytes, parallelism, token.instance)))
            .filter(|&(_, share)| share > 0)
            .collect();

        if inputs.is_empty() {
            self.start_exec(now, worker, token);
            return;
        }
        state
            .instances
            .get_mut(&token)
            .expect("inserted above")
            .pending_inputs = inputs.len() as u32;

        let node = self.config.worker_node(worker as u32);
        for (producer, share) in inputs {
            let key = DataKey::new(token.workflow, token.invocation, producer);
            if self.faastores[worker].read_local(key).is_some() {
                // Local memory read: loopback flow, no NIC consumption.
                self.net.start_flow(
                    node,
                    node,
                    share,
                    FlowTag::Read {
                        token,
                        producer,
                        started: now,
                        remote: false,
                    },
                    now,
                );
                self.reschedule_flow_timer(now);
            } else {
                // Remote read: server-side overhead, then a flow from the
                // storage node.
                let (_, overhead) = self
                    .remote
                    .read(key)
                    .expect("producer output must be in the remote store");
                self.queue.schedule(
                    now + overhead,
                    Event::StartRemoteRead {
                        worker,
                        token,
                        producer,
                        bytes: share,
                        started: now,
                    },
                );
            }
        }
    }

    fn start_exec(&mut self, now: SimTime, worker: usize, token: InstanceToken) {
        let Some(state) = self.invocations.get(&(token.workflow, token.invocation)) else {
            return;
        };
        let exec = match &state.dag.node(token.function).kind {
            NodeKind::Function(profile) => profile.sample_exec(&mut self.rng),
            _ => SimDuration::ZERO,
        };
        self.queue
            .schedule(now + exec, Event::ExecDone { worker, token });
    }

    fn on_exec_done(&mut self, now: SimTime, worker: usize, token: InstanceToken) {
        // Failure injection: a transient execution error re-runs the
        // instance in place (the container is already warm) up to the
        // retry budget, after which at-least-once semantics let it pass.
        if self.config.exec_failure_rate > 0.0 {
            let failed = self.rng.chance(self.config.exec_failure_rate);
            if failed {
                if let Some(state) =
                    self.invocations.get_mut(&(token.workflow, token.invocation))
                {
                    let inst = state
                        .instances
                        .get_mut(&token)
                        .expect("instance alive at exec completion");
                    if inst.retries < self.config.max_exec_retries {
                        inst.retries += 1;
                        self.exec_retries += 1;
                        self.start_exec(now, worker, token);
                        return;
                    }
                }
            }
        }
        let Some(state) = self.invocations.get_mut(&(token.workflow, token.invocation)) else {
            return;
        };
        let node = state.dag.node(token.function);
        let total_out = node
            .kind
            .profile()
            .map(|p| p.output_bytes)
            .unwrap_or(0);
        let parallelism = node.parallelism.max(1);
        let share = InvState::share(total_out, parallelism, token.instance);
        if share == 0 {
            self.finish_instance(now, worker, token);
            return;
        }
        // Placement decided once per node output (total bytes).
        let placement = match state.placements.get(&token.function) {
            Some(&p) => p,
            None => {
                let storage_type = if state.assignment.storage_local[token.function.index()] {
                    StorageType::Mem
                } else {
                    StorageType::Db
                };
                let producer_node = state.assignment.worker_of(token.function);
                let consumers: Vec<NodeId> = state
                    .dag
                    .data_outputs(token.function)
                    .map(|d| state.assignment.worker_of(d.consumer))
                    .collect();
                let key = DataKey::new(token.workflow, token.invocation, token.function);
                let p = self.faastores[worker].decide_put(
                    key,
                    total_out,
                    storage_type,
                    producer_node,
                    &consumers,
                );
                if p == Placement::Remote {
                    self.remote.put(key, total_out);
                }
                state.placements.insert(token.function, p);
                p
            }
        };
        let node_id = self.config.worker_node(worker as u32);
        match placement {
            Placement::LocalMem => {
                self.net.start_flow(
                    node_id,
                    node_id,
                    share,
                    FlowTag::Write {
                        token,
                        started: now,
                        remote: false,
                    },
                    now,
                );
                self.reschedule_flow_timer(now);
            }
            Placement::Remote => {
                let overhead = self.config.remote_store.put_overhead;
                self.queue.schedule(
                    now + overhead,
                    Event::StartRemoteWrite {
                        worker,
                        token,
                        bytes: share,
                        started: now,
                    },
                );
            }
        }
    }

    fn on_flow_done(&mut self, now: SimTime, tag: FlowTag) {
        match tag {
            FlowTag::Read {
                token,
                producer,
                started,
                remote,
            } => {
                let latency = now - started;
                let share;
                {
                    let Some(state) =
                        self.invocations.get_mut(&(token.workflow, token.invocation))
                    else {
                        return;
                    };
                    let parallelism = state.dag.node(token.function).parallelism.max(1);
                    let total = state
                        .dag
                        .data_inputs(token.function)
                        .find(|d| d.producer == producer)
                        .map(|d| d.bytes)
                        .unwrap_or(0);
                    share = InvState::share(total, parallelism, token.instance);
                    state.ledger.total_latency += latency;
                    if remote {
                        state.ledger.remote_bytes += share;
                    } else {
                        state.ledger.local_bytes += share;
                    }
                    let inst = state
                        .instances
                        .get_mut(&token)
                        .expect("instance alive while its flow runs");
                    inst.pending_inputs -= 1;
                    if inst.pending_inputs > 0 {
                        // More inputs outstanding; nothing else to do yet.
                        self.record_edge_feedback(token.workflow, producer, latency);
                        return;
                    }
                }
                self.record_edge_feedback(token.workflow, producer, latency);
                self.tracer.record(|| TraceEvent::Transferred {
                    workflow: token.workflow,
                    invocation: token.invocation,
                    function: token.function,
                    bytes: share,
                    remote,
                    read: true,
                    at: now,
                });
                let worker = self.invocations[&(token.workflow, token.invocation)].instances
                    [&token]
                    .worker;
                self.start_exec(now, worker, token);
            }
            FlowTag::Write {
                token,
                started,
                remote,
            } => {
                let latency = now - started;
                let share;
                let worker;
                {
                    let Some(state) =
                        self.invocations.get_mut(&(token.workflow, token.invocation))
                    else {
                        return;
                    };
                    let parallelism = state.dag.node(token.function).parallelism.max(1);
                    let total = state
                        .dag
                        .node(token.function)
                        .kind
                        .profile()
                        .map(|p| p.output_bytes)
                        .unwrap_or(0);
                    share = InvState::share(total, parallelism, token.instance);
                    state.ledger.total_latency += latency;
                    if remote {
                        state.ledger.remote_bytes += share;
                    } else {
                        state.ledger.local_bytes += share;
                    }
                    worker = state
                        .instances
                        .get(&token)
                        .expect("instance alive while its flow runs")
                        .worker;
                }
                self.tracer.record(|| TraceEvent::Transferred {
                    workflow: token.workflow,
                    invocation: token.invocation,
                    function: token.function,
                    bytes: share,
                    remote,
                    read: false,
                    at: now,
                });
                self.finish_instance(now, worker, token);
            }
        }
    }

    fn record_edge_feedback(&mut self, wf: WorkflowId, producer: FunctionId, latency: SimDuration) {
        let Some(ws) = self.workflows.get_mut(&wf) else {
            return;
        };
        let edges: Vec<_> = ws
            .dag
            .edges()
            .iter()
            .filter(|e| e.from == producer)
            .map(|e| e.id)
            .collect();
        for eid in edges {
            ws.feedback.observe_edge(eid, latency);
        }
    }

    fn finish_instance(&mut self, now: SimTime, worker: usize, token: InstanceToken) {
        // Release the container.
        let container = {
            let Some(state) = self.invocations.get_mut(&(token.workflow, token.invocation))
            else {
                return;
            };
            let inst = state
                .instances
                .remove(&token)
                .expect("instance finishes once");
            // Track node completion on the core side.
            let remaining = state
                .instances_remaining
                .get_mut(&token.function)
                .expect("spawned node tracked");
            *remaining -= 1;
            let node_done = *remaining == 0;
            if node_done {
                state.completed_nodes.insert(token.function);
            }
            if node_done {
                self.tracer.record(|| TraceEvent::NodeCompleted {
                    workflow: token.workflow,
                    invocation: token.invocation,
                    function: token.function,
                    at: now,
                });
            }
            inst.container
        };
        let admissions = self.containers[worker].release(container, now, &mut self.rng);
        self.schedule_admissions(worker, admissions);
        self.track_utilization(now, worker);
        self.reschedule_expiry(now, worker);

        match self.config.mode {
            ScheduleMode::WorkerSp => {
                self.queue.schedule(
                    now + self.config.worker_engine_cost,
                    Event::WorkerInstanceDone { worker, token },
                );
            }
            ScheduleMode::MasterSp => {
                let delay = self.config.lan.latency(512, &mut self.rng);
                self.queue.schedule(
                    now + delay,
                    Event::MasterArrive {
                        msg: MasterInbox::StateReturn {
                            wf: token.workflow,
                            inv: token.invocation,
                            function: token.function,
                        },
                    },
                );
            }
        }
    }

    // ==================================================================
    // Timers
    // ==================================================================

    fn reschedule_flow_timer(&mut self, now: SimTime) {
        if let Some(ev) = self.flow_timer.take() {
            self.queue.cancel(ev);
        }
        if let Some(t) = self.net.next_completion() {
            let at = t.max(now);
            self.flow_timer = Some(self.queue.schedule(at, Event::FlowTick));
        }
    }

    /// Refreshes the time-weighted CPU/memory trackers of one worker after
    /// any container-state change.
    fn track_utilization(&mut self, now: SimTime, worker: usize) {
        let stats = self.containers[worker].stats();
        self.cpu_util[worker].update(now, stats.cores_busy.get() as f64);
        self.mem_util[worker].update(now, stats.mem_resident.get() as f64);
    }

    fn reschedule_expiry(&mut self, now: SimTime, worker: usize) {
        if let Some(ev) = self.expiry_timers[worker].take() {
            self.queue.cancel(ev);
        }
        if let Some(t) = self.containers[worker].next_expiry() {
            let at = t.max(now);
            self.expiry_timers[worker] =
                Some(self.queue.schedule(at, Event::ContainerExpiry { worker }));
        }
    }
}
