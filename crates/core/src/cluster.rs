//! The cluster simulation: the world that wires engines, containers,
//! stores, and the network into one deterministic discrete-event system.
//!
//! Topology (matching the artifact, §A.4): node 0 is the master/storage
//! node — it runs the Graph Scheduler, generates invocations, and hosts the
//! remote store (and, under MasterSP, the central workflow engine). Nodes
//! `1..=workers` are workers, each running a container manager, a FaaStore
//! instance, and (under WorkerSP) a per-worker workflow engine.
//!
//! Every latency of the real system maps to a simulated cost:
//!
//! | real mechanism | model |
//! |---|---|
//! | task assignment / state return / state sync (TCP) | [`faasflow_net::MessageModel`] latency |
//! | master engine trigger checks | single-server CPU queue, `master_task_cost` per message |
//! | worker engine event handling | fixed `worker_engine_cost` |
//! | container cold/warm start, keep-alive, caps | [`ContainerManager`] |
//! | remote store reads/writes | per-op overhead + max-min fair flow through the storage NIC |
//! | FaaStore local passing | loopback flow (no NIC usage) |

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use faasflow_container::{Admission, ContainerManager, StartKind};
use faasflow_engine::{MasterAction, MasterEngine, WorkerAction, WorkerEngine};
use faasflow_net::{Flow, FlowId, FlowNet, LinkFaultTable, LinkQuality, NicSpec};
use faasflow_scheduler::{
    ContentionSet, DeploymentManager, FeedbackCollector, GraphScheduler, PartitionConfig,
    RuntimeMetrics, ScheduleError, WorkerInfo, WorkerLoad,
};
use faasflow_sim::{
    ContainerId, EventId, EventQueue, FunctionId, InvocationId, NodeId, SimDuration, SimRng,
    SimTime, WorkflowId,
};
use faasflow_store::{
    quota, BreakerDecision, BreakerState, CircuitBreaker, DataKey, FaaStore, Placement,
    RemoteStore, StorageType,
};
use faasflow_wdl::{DagParser, NodeKind, ParserConfig, Workflow, WorkflowDag};

use crate::config::{ClientConfig, ClusterConfig, ReclamationMode, ScheduleMode};
use crate::degrade::{AdmitDecision, DegradeController, DegradeTransition};
use crate::error::ClusterError;
use crate::fault::{DeadLetterReason, EngineTarget, GrayFaultKind, StorageFaultKind};
use crate::health::{HealthDetector, HealthReport, HealthTransition};
use crate::invocation::{InstanceState, InstanceToken, InvState};
use crate::journal::{Journal, JournalRecord, TerminalOutcome};
use crate::metrics::{
    DistributionRow, FaultReport, LoopProfile, OverloadReport, PlacementReport, RecoveryReport,
    RunReport, WorkerUtilization, WorkflowMetrics,
};
use crate::overload::{AdmissionConfig, BackpressureConfig, P2Quantile, ShedPolicy};
use crate::sample::{ClusterSample, NodeSample, NodeSeries, ResourceSeriesReport, Ring};
use crate::slo::{SloMonitor, SloTransition};
use crate::trace::{TraceEvent, Tracer};

/// How an invocation is being abandoned — decides the accounting in
/// `abandon_invocation`.
#[derive(Debug, Clone, Copy)]
enum AbandonKind {
    /// Fault-path dead letter, attributed to a reason.
    DeadLetter(DeadLetterReason),
    /// Queue-overflow load shed on a worker (overload accounting).
    Shed { worker: usize },
    /// Refused at the degradation gate before dispatch (degrade
    /// accounting; deliberately *not* fed back into the SLO monitor).
    DegradeShed { worker: usize },
}

/// Tag attached to every network flow.
#[derive(Debug, Clone, Copy)]
enum FlowTag {
    /// An instance reading one producer's output.
    Read {
        token: InstanceToken,
        producer: FunctionId,
        started: SimTime,
        remote: bool,
    },
    /// An instance writing its output share.
    Write {
        token: InstanceToken,
        started: SimTime,
        remote: bool,
    },
}

/// Messages the master CPU processes one at a time.
#[derive(Debug, Clone, Copy)]
enum MasterInbox {
    Begin {
        wf: WorkflowId,
        inv: InvocationId,
    },
    StateReturn {
        wf: WorkflowId,
        inv: InvocationId,
        function: FunctionId,
    },
    /// Backpressure bounced an assignment off a saturated worker; the
    /// master re-queues it centrally (costing central-plane CPU — the
    /// §2.3 asymmetry under overload).
    Requeue {
        worker: usize,
        wf: WorkflowId,
        inv: InvocationId,
        function: FunctionId,
        epoch: u32,
        attempt: u32,
    },
}

/// Lifecycle of one speculative (hedged) execution. Keyed by the primary
/// instance's token in `Cluster::hedges`; at most one hedge per instance.
#[derive(Debug, Clone, Copy)]
struct HedgeState {
    /// Worker running the hedge.
    worker: usize,
    /// The hedge's container.
    container: ContainerId,
    /// The hedge's own admission sequence number (fences its events).
    seq: u64,
    /// The hedge container finished booting and its exec is in flight.
    ready: bool,
    /// The primary won while the hedge was still booting; `HedgeReady`
    /// releases the container and drops the entry.
    cancelled: bool,
}

/// Simulation events.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// A client sends an invocation of `wf`.
    Arrival { wf: WorkflowId },
    /// WorkerSP: the begin notification reaches a worker engine.
    DeliverBegin {
        worker: usize,
        wf: WorkflowId,
        inv: InvocationId,
        epoch: u32,
    },
    /// WorkerSP: a state-sync message reaches a worker engine.
    DeliverSync {
        worker: usize,
        wf: WorkflowId,
        inv: InvocationId,
        completed: FunctionId,
        epoch: u32,
    },
    /// MasterSP: a task assignment reaches a worker.
    DeliverAssign {
        worker: usize,
        wf: WorkflowId,
        inv: InvocationId,
        function: FunctionId,
    },
    /// An exit-node completion report reaches the master/client.
    DeliverExitReport {
        wf: WorkflowId,
        inv: InvocationId,
        epoch: u32,
        function: FunctionId,
    },
    /// A message arrives in the master engine's inbox. `gen` fences
    /// pre-crash messages: a recovery bumps the engine generation, so
    /// anything stamped with an older one is dropped as stale.
    MasterArrive { msg: MasterInbox, gen: u64 },
    /// The master engine finishes processing its current message. Fenced by
    /// `gen` like `MasterArrive` (an engine crash aborts the in-service
    /// message).
    MasterDone { gen: u64 },
    /// WorkerSP: a virtual node completes on a worker.
    VirtualDone {
        worker: usize,
        wf: WorkflowId,
        inv: InvocationId,
        function: FunctionId,
        epoch: u32,
    },
    /// A container finished booting/dispatching; the instance starts
    /// fetching inputs.
    InstanceReady {
        worker: usize,
        token: InstanceToken,
        container: ContainerId,
        cold: bool,
    },
    /// Remote-store read begins after the server-side overhead.
    StartRemoteRead {
        worker: usize,
        token: InstanceToken,
        producer: FunctionId,
        bytes: u64,
        started: SimTime,
    },
    /// Remote-store write begins after the server-side overhead.
    StartRemoteWrite {
        worker: usize,
        token: InstanceToken,
        bytes: u64,
        started: SimTime,
    },
    /// An instance's compute finished; write the output.
    ExecDone {
        worker: usize,
        token: InstanceToken,
        seq: u64,
    },
    /// WorkerSP: the worker engine processes an instance completion.
    /// `gen` fences completions sent before the engine's last recovery
    /// (replay already seeded them from cluster-side counts).
    WorkerInstanceDone {
        worker: usize,
        token: InstanceToken,
        gen: u64,
    },
    /// The earliest network flow completes.
    FlowTick,
    /// A worker's earliest container keep-alive expires.
    ContainerExpiry { worker: usize },
    /// An invocation exceeded the timeout.
    Timeout { wf: WorkflowId, inv: InvocationId },
    /// Fault plan: worker `node_crashes[idx]` dies.
    WorkerCrash { idx: usize },
    /// Fault plan: a crashed worker comes back (empty).
    WorkerRestart { worker: usize },
    /// The failure detector gives up on a worker's heartbeats and starts
    /// recovery of everything that was running there.
    LeaseExpired { worker: usize },
    /// Fault plan: `storage_faults[idx]` window opens.
    StorageFaultStart { idx: usize },
    /// Fault plan: `storage_faults[idx]` window closes.
    StorageFaultEnd { idx: usize },
    /// Fault plan: `net_faults[idx]` window opens.
    NetFaultStart { idx: usize },
    /// Fault plan: `net_faults[idx]` window closes.
    NetFaultEnd { idx: usize },
    /// A remote read backed off during a storage blackout; try again.
    RetryRemoteRead {
        worker: usize,
        token: InstanceToken,
        producer: FunctionId,
        bytes: u64,
        started: SimTime,
        attempt: u32,
    },
    /// A remote write backed off during a storage blackout; try again.
    RetryRemoteWrite {
        worker: usize,
        token: InstanceToken,
        bytes: u64,
        started: SimTime,
        attempt: u32,
    },
    /// An invocation hit unrecoverable-in-place state (e.g. a producer
    /// output vanished with a crashed node); restart it under a new epoch.
    RecoverInvocation {
        wf: WorkflowId,
        inv: InvocationId,
        epoch: u32,
    },
    /// Resource-sampling tick (self-rescheduling; only scheduled when
    /// `ClusterConfig::sample_every` is set). The handler reads gauges and
    /// draws no randomness, so it cannot perturb other events.
    Sample,
    /// The hedge delay elapsed on a still-running exec; speculatively
    /// re-dispatch the instance to another worker.
    HedgeFire {
        worker: usize,
        token: InstanceToken,
        seq: u64,
    },
    /// A hedge container finished booting; its exec starts.
    HedgeReady { token: InstanceToken, seq: u64 },
    /// A hedge's compute finished; first-winner resolution.
    HedgeExecDone { token: InstanceToken, seq: u64 },
    /// A backpressure-deferred dispatch retries (or proceeds).
    BackpressureRetry {
        worker: usize,
        wf: WorkflowId,
        inv: InvocationId,
        function: FunctionId,
        epoch: u32,
        attempt: u32,
    },
    /// Fault plan: `engine_crashes[idx]` kills its scheduling engine.
    EngineCrash { idx: usize },
    /// The supervisor restarts a crashed engine (`target: None` = the
    /// central MasterSP engine, `Some(w)` = worker `w`'s engine): attempt
    /// to read the journal back, backing off while the store is blacked
    /// out. `era` fences chains orphaned by a second crash mid-recovery.
    EngineRestart {
        target: Option<usize>,
        attempt: u32,
        era: u32,
    },
    /// Journal replay finished; the engine reconciles with cluster-visible
    /// progress and resumes.
    EngineRecovered { target: Option<usize>, era: u32 },
    /// Fault plan: `gray_faults[idx]` window opens.
    GrayFaultStart { idx: usize },
    /// Fault plan: `gray_faults[idx]` window closes.
    GrayFaultEnd { idx: usize },
    /// A quarantined worker's cooldown elapsed; the health detector
    /// half-opens it. `at` fences reopen events scheduled before a relapse
    /// re-quarantined the worker.
    HealthReopen { worker: usize, at: SimTime },
}

#[cfg(feature = "loop-profile")]
impl Event {
    /// Variant name for the per-type loop profile.
    fn name(&self) -> &'static str {
        match self {
            Event::Arrival { .. } => "Arrival",
            Event::DeliverBegin { .. } => "DeliverBegin",
            Event::DeliverSync { .. } => "DeliverSync",
            Event::DeliverAssign { .. } => "DeliverAssign",
            Event::DeliverExitReport { .. } => "DeliverExitReport",
            Event::MasterArrive { .. } => "MasterArrive",
            Event::MasterDone { .. } => "MasterDone",
            Event::VirtualDone { .. } => "VirtualDone",
            Event::InstanceReady { .. } => "InstanceReady",
            Event::StartRemoteRead { .. } => "StartRemoteRead",
            Event::StartRemoteWrite { .. } => "StartRemoteWrite",
            Event::ExecDone { .. } => "ExecDone",
            Event::WorkerInstanceDone { .. } => "WorkerInstanceDone",
            Event::FlowTick => "FlowTick",
            Event::ContainerExpiry { .. } => "ContainerExpiry",
            Event::Timeout { .. } => "Timeout",
            Event::WorkerCrash { .. } => "WorkerCrash",
            Event::WorkerRestart { .. } => "WorkerRestart",
            Event::LeaseExpired { .. } => "LeaseExpired",
            Event::StorageFaultStart { .. } => "StorageFaultStart",
            Event::StorageFaultEnd { .. } => "StorageFaultEnd",
            Event::NetFaultStart { .. } => "NetFaultStart",
            Event::NetFaultEnd { .. } => "NetFaultEnd",
            Event::RetryRemoteRead { .. } => "RetryRemoteRead",
            Event::RetryRemoteWrite { .. } => "RetryRemoteWrite",
            Event::RecoverInvocation { .. } => "RecoverInvocation",
            Event::Sample => "Sample",
            Event::HedgeFire { .. } => "HedgeFire",
            Event::HedgeReady { .. } => "HedgeReady",
            Event::HedgeExecDone { .. } => "HedgeExecDone",
            Event::BackpressureRetry { .. } => "BackpressureRetry",
            Event::EngineCrash { .. } => "EngineCrash",
            Event::EngineRestart { .. } => "EngineRestart",
            Event::EngineRecovered { .. } => "EngineRecovered",
            Event::GrayFaultStart { .. } => "GrayFaultStart",
            Event::GrayFaultEnd { .. } => "GrayFaultEnd",
            Event::HealthReopen { .. } => "HealthReopen",
        }
    }
}

/// Per-workflow cluster state. The workflow's name lives in the cluster's
/// interned name table, keyed by the dense workflow id.
struct WorkflowState {
    /// Mutable master copy of the DAG (edge weights evolve with feedback).
    dag: WorkflowDag,
    /// Snapshot deployed to engines for the current version.
    dag_arc: Arc<WorkflowDag>,
    deployment: DeploymentManager,
    client: ClientConfig,
    contention: ContentionSet,
    feedback: FeedbackCollector,
    prev_metrics: RuntimeMetrics,
    quota: u64,
    critical_exec: SimDuration,
    sent: u32,
    completed_since_partition: u32,
    arm_seed: u64,
}

/// The FaaSFlow cluster simulation.
///
/// ```
/// use faasflow_core::{Cluster, ClusterConfig, ClientConfig};
/// use faasflow_wdl::{Workflow, Step, FunctionProfile};
///
/// let mut cluster = Cluster::new(ClusterConfig::default())?;
/// let wf = Workflow::steps(
///     "hello",
///     Step::task("hi", FunctionProfile::with_millis(10, 0)),
/// );
/// cluster.register(&wf, ClientConfig::ClosedLoop { invocations: 3 })?;
/// cluster.run_until_idle();
/// let report = cluster.report();
/// assert_eq!(report.workflow("hello").completed, 3);
/// # Ok::<(), faasflow_core::ClusterError>(())
/// ```
/// Reusable buffers for the hot-path sweeps. Each user takes the buffer
/// with `mem::take`, fills it, and puts it back cleared, so the steady
/// state of the event loop performs no heap allocation. Distinct fields
/// exist for sweeps that nest (a crash sweep dead-letters invocations,
/// which tears down flows).
#[derive(Debug, Default)]
struct ClusterScratch {
    /// Completed flows drained out of the network on each `FlowTick`.
    flows_done: Vec<(FlowId, Flow<FlowTag>)>,
    /// Input transfers gathered when an instance becomes ready.
    inputs: Vec<(FunctionId, u64)>,
    /// Flow ids doomed by a crash or an invocation teardown.
    flow_ids: Vec<FlowId>,
    /// Instance tokens orphaned by a crash.
    tokens: Vec<InstanceToken>,
    /// Invocation keys swept during recovery.
    inv_keys: Vec<(WorkflowId, InvocationId)>,
    /// Workflow ids swept during a redeploy.
    wf_ids: Vec<WorkflowId>,
    /// Instances torn down when an invocation restarts or dead-letters.
    stale: Vec<(InstanceToken, InstanceState)>,
    /// Hedge tokens swept during crashes and teardowns (nests inside the
    /// `tokens` sweep, so it needs its own buffer).
    hedge_tokens: Vec<InstanceToken>,
}

/// Live state of the resource sampler (see [`crate::sample`]); present
/// only when `ClusterConfig::sample_every` is set.
#[derive(Debug)]
struct SampleCollector {
    /// Sampling cadence on the sim clock.
    every: SimDuration,
    /// One bounded series per node (0 = master/storage).
    node_rings: Vec<Ring<NodeSample>>,
    /// Cluster-wide series (queue depth, in-flight invocations).
    cluster_ring: Ring<ClusterSample>,
    /// Scratch per-node flow rates (tx/rx bytes per second), reused each
    /// tick so sampling allocates nothing in steady state.
    tx: Vec<f64>,
    rx: Vec<f64>,
}

pub struct Cluster {
    config: ClusterConfig,
    queue: EventQueue<Event>,
    rng: SimRng,
    net: FlowNet<FlowTag>,
    flow_timer: Option<EventId>,
    containers: Vec<ContainerManager<InstanceToken>>,
    expiry_timers: Vec<Option<EventId>>,
    faastores: Vec<FaaStore>,
    remote: RemoteStore,
    worker_engines: Vec<WorkerEngine>,
    master_engine: MasterEngine,
    master_inbox: VecDeque<MasterInbox>,
    master_current: Option<MasterInbox>,
    master_busy_time: SimDuration,
    workflows: HashMap<WorkflowId, WorkflowState>,
    /// Interned-name lookup; `&str` queries hit it without allocating.
    names: HashMap<Arc<str>, WorkflowId>,
    /// Interned names indexed by `WorkflowId` (ids are dense).
    name_table: Vec<Arc<str>>,
    invocations: HashMap<(WorkflowId, InvocationId), InvState>,
    metrics: HashMap<WorkflowId, WorkflowMetrics>,
    next_workflow: u32,
    next_invocation: u32,
    scheduler: GraphScheduler,
    /// Wall-clock seconds spent inside `GraphScheduler::partition`.
    partition_wall_secs: f64,
    partition_runs: u32,
    /// Arrival events scheduled but not yet handled (keeps the run loop
    /// alive while clients still owe invocations).
    pending_arrivals: u32,
    /// Instance executions that failed and were retried.
    exec_retries: u64,
    /// Feedback repartitions/redeploys that failed and kept the previous
    /// deployment.
    repartition_failures: u64,
    /// Fault-injection and recovery accounting.
    faults: FaultReport,
    /// Liveness of each worker (false while crashed).
    worker_alive: Vec<bool>,
    /// Whether the failure detector has declared a worker down (lags
    /// `worker_alive` by the lease detection delay).
    worker_detected_down: Vec<bool>,
    /// Instant each worker last (re)started — invocations begun before it
    /// lost any engine/store state the worker held for them.
    worker_up_since: Vec<SimTime>,
    /// Admissions requested but not yet `InstanceReady`, by token. Crash
    /// recovery uses this to find instances that were still booting or
    /// queued when their worker died.
    inflight_spawns: HashMap<InstanceToken, usize>,
    /// Instances lost to each worker's crash, awaiting lease expiry.
    orphans: Vec<Vec<InstanceToken>>,
    /// MasterSP task assignments that reached a dead-but-undetected worker;
    /// replayed on detection or restart, whichever comes first.
    spooled_assigns: Vec<Vec<(WorkflowId, InvocationId, FunctionId)>>,
    /// Current per-node control-link quality (fault windows).
    link_faults: LinkFaultTable,
    /// Remote store blackout in progress.
    storage_down: bool,
    /// Remote store overhead multiplier (brownout windows; 1.0 nominally).
    storage_slowdown: f64,
    /// Monotonic admission counter fencing stale `ExecDone` events.
    next_instance_seq: u64,
    /// Circuit breaker guarding the remote store (None when disabled).
    breaker: Option<CircuitBreaker>,
    /// In-flight speculative executions, keyed by the primary's token.
    hedges: HashMap<InstanceToken, HedgeState>,
    /// Streaming exec-latency quantile per function (adaptive hedge delay).
    /// Only touched when `hedge.adaptive` is set, so fixed-delay and
    /// hedge-off runs are bit-identical to builds without it.
    hedge_estimators: HashMap<(WorkflowId, FunctionId), P2Quantile>,
    /// MasterSP central engine liveness (false between a crash and the end
    /// of recovery). Messages reaching a down engine are lost.
    master_engine_down: bool,
    /// Master engine generation: bumped at each completed recovery; stale
    /// stamps fence pre-recovery messages.
    master_engine_gen: u64,
    /// Master engine era: bumped at each crash; fences restart/recovery
    /// chains orphaned by a second crash mid-recovery.
    master_engine_era: u32,
    /// Instant the master engine went down (downtime accounting).
    master_down_since: SimTime,
    /// The master journal could not be read back during the last recovery.
    master_journal_unreadable: bool,
    /// The central engine's write-ahead journal (MasterSP; also witnesses
    /// gateway-side admissions and terminal outcomes in both modes).
    master_journal: Journal,
    /// Per-worker engine liveness/fencing mirrors of the master fields.
    worker_engine_down: Vec<bool>,
    worker_engine_gen: Vec<u64>,
    worker_engine_era: Vec<u32>,
    worker_down_since: Vec<SimTime>,
    worker_journal_unreadable: Vec<bool>,
    /// Per-worker engine journals (WorkerSP).
    worker_journals: Vec<Journal>,
    /// Engine-crash/recovery accounting (journal sums are folded in at
    /// report time).
    recovery: RecoveryReport,
    /// Overload-protection accounting (sheds, breaker, hedges,
    /// backpressure).
    overload: OverloadReport,
    /// Placement-layer accounting (load-aware partitions, fallbacks,
    /// incremental rebalances).
    placement: PlacementReport,
    /// Online SLO burn-rate monitor (`None` unless `config.slo` is set).
    slo: Option<SloMonitor>,
    /// SLO-driven degradation controller (`None` unless `config.degrade`
    /// is set).
    degrade: Option<DegradeController>,
    /// Online gray-failure detector (`None` unless `config.health` is
    /// set). Pure observer of completion samples: it never draws from the
    /// RNG, so detector-off runs are bit-identical to pre-detector builds.
    health: Option<HealthDetector>,
    /// Gray-failure accounting held by the cluster: the injection counters
    /// (`zombie_fenced`, `stalled_flows`, `stuck_deferrals`,
    /// `quarantine_orphans`) tick here whether or not a detector is
    /// watching; `report()` merges the detector's own counters in.
    health_stats: HealthReport,
    /// Workers the detector currently holds in quarantine: excluded from
    /// the partition target set and from hedge candidate rings.
    quarantined: Vec<bool>,
    /// Per-worker exec slowdown multiplier (gray windows; 1.0 nominally).
    gray_slowdown: Vec<f64>,
    /// Per-worker stuck-executor window end: completions inside the window
    /// defer to its closing edge.
    gray_stuck_until: Vec<Option<SimTime>>,
    /// Per-worker injected exec failure rate (gray windows; 0.0 nominally).
    gray_flaky: Vec<f64>,
    /// Per-worker asymmetric data-plane partition: `Some(true)` drops
    /// flows toward the worker's node, `Some(false)` drops flows from it.
    gray_partition: Vec<Option<bool>>,
    /// Count of open asymmetric-partition windows (fast path for the
    /// per-flow block check).
    gray_partitions_active: u32,
    /// Workers whose lease was force-expired while they were still alive:
    /// their late completions die on the admission fences and are counted
    /// as fenced zombies.
    gray_zombie: Vec<bool>,
    /// Data-plane payloads stalled by an asymmetric partition, keyed by
    /// the partitioned worker; replayed when its window lifts.
    gray_stalled: Vec<(usize, FlowTag)>,
    /// Streaming p99 of end-to-end latency per worker, attributed to every
    /// worker an invocation's placement touched. Only fed when the
    /// placement layer is enabled, so legacy runs are bit-identical.
    worker_p99: Vec<P2Quantile>,
    /// Completions since the last skew check (rebalancer cooldown).
    completions_since_skew_check: u32,
    tracer: Tracer,
    /// Resource time-series collector (`None` unless sampling is on).
    samples: Option<SampleCollector>,
    /// Events dispatched by the run loops (wall-clock self-profile).
    loop_events: u64,
    /// Wall-clock seconds spent inside the run loops.
    loop_wall_secs: f64,
    /// Per-event-type handler timing (count, total seconds), keyed by
    /// variant name. Only maintained under the `loop-profile` feature.
    #[cfg(feature = "loop-profile")]
    loop_event_stats: BTreeMap<&'static str, (u64, f64)>,
    /// Time-weighted busy cores per worker.
    cpu_util: Vec<faasflow_sim::stats::TimeWeighted>,
    /// Time-weighted resident container memory per worker.
    mem_util: Vec<faasflow_sim::stats::TimeWeighted>,
    /// Reusable sweep buffers (see [`ClusterScratch`]).
    scratch: ClusterScratch,
}

impl Cluster {
    /// Builds the cluster.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidConfig`] when the configuration is
    /// inconsistent.
    pub fn new(config: ClusterConfig) -> Result<Self, ClusterError> {
        config.validate().map_err(ClusterError::InvalidConfig)?;
        let mut rng = SimRng::seed_from(config.seed);
        let mut nics = Vec::with_capacity(config.node_count());
        nics.push(NicSpec::symmetric(config.storage_bandwidth)); // master/storage
        for _ in 0..config.workers {
            nics.push(NicSpec::symmetric(config.worker_bandwidth));
        }
        let containers = (0..config.workers)
            .map(|_| ContainerManager::new(config.node_caps, config.container))
            .collect();
        let faastores = (0..config.workers)
            .map(|_| FaaStore::new(config.faastore))
            .collect();
        let worker_engines = (0..config.workers)
            .map(|i| WorkerEngine::new(NodeId::new(i + 1)))
            .collect();
        let _ = rng.next_u64(); // decorrelate from the seed value itself
        let mut cluster = Cluster {
            queue: EventQueue::new(),
            rng,
            net: FlowNet::new(nics),
            flow_timer: None,
            containers,
            expiry_timers: vec![None; config.workers as usize],
            faastores,
            remote: RemoteStore::new(config.remote_store),
            worker_engines,
            master_engine: MasterEngine::new(),
            master_inbox: VecDeque::new(),
            master_current: None,
            master_busy_time: SimDuration::ZERO,
            workflows: HashMap::new(),
            names: HashMap::new(),
            name_table: Vec::new(),
            invocations: HashMap::new(),
            metrics: HashMap::new(),
            next_workflow: 0,
            next_invocation: 0,
            scheduler: GraphScheduler::new(PartitionConfig {
                placement: config.placement,
                placement_config: config.placement_config,
                ..PartitionConfig::default()
            }),
            partition_wall_secs: 0.0,
            partition_runs: 0,
            pending_arrivals: 0,
            exec_retries: 0,
            repartition_failures: 0,
            faults: FaultReport::default(),
            worker_alive: vec![true; config.workers as usize],
            worker_detected_down: vec![false; config.workers as usize],
            worker_up_since: vec![SimTime::ZERO; config.workers as usize],
            inflight_spawns: HashMap::new(),
            orphans: vec![Vec::new(); config.workers as usize],
            spooled_assigns: vec![Vec::new(); config.workers as usize],
            link_faults: LinkFaultTable::new(config.node_count()),
            storage_down: false,
            storage_slowdown: 1.0,
            next_instance_seq: 0,
            breaker: config.overload.breaker.map(CircuitBreaker::new),
            hedges: HashMap::new(),
            hedge_estimators: HashMap::new(),
            master_engine_down: false,
            master_engine_gen: 0,
            master_engine_era: 0,
            master_down_since: SimTime::ZERO,
            master_journal_unreadable: false,
            master_journal: Journal::new(config.journal),
            worker_engine_down: vec![false; config.workers as usize],
            worker_engine_gen: vec![0; config.workers as usize],
            worker_engine_era: vec![0; config.workers as usize],
            worker_down_since: vec![SimTime::ZERO; config.workers as usize],
            worker_journal_unreadable: vec![false; config.workers as usize],
            worker_journals: (0..config.workers)
                .map(|_| Journal::new(config.journal))
                .collect(),
            recovery: RecoveryReport::default(),
            overload: OverloadReport::default(),
            placement: PlacementReport::default(),
            slo: config.slo.as_ref().map(SloMonitor::new),
            degrade: config.degrade.map(DegradeController::new),
            health: config
                .health
                .map(|h| HealthDetector::new(h, config.workers)),
            health_stats: HealthReport::default(),
            quarantined: vec![false; config.workers as usize],
            gray_slowdown: vec![1.0; config.workers as usize],
            gray_stuck_until: vec![None; config.workers as usize],
            gray_flaky: vec![0.0; config.workers as usize],
            gray_partition: vec![None; config.workers as usize],
            gray_partitions_active: 0,
            gray_zombie: vec![false; config.workers as usize],
            gray_stalled: Vec::new(),
            worker_p99: (0..config.workers).map(|_| P2Quantile::new(0.99)).collect(),
            completions_since_skew_check: 0,
            tracer: Tracer::new(config.trace, config.trace_capacity),
            samples: config.sample_every.map(|every| SampleCollector {
                every,
                node_rings: (0..config.node_count())
                    .map(|_| Ring::new(config.sample_capacity))
                    .collect(),
                cluster_ring: Ring::new(config.sample_capacity),
                tx: vec![0.0; config.node_count()],
                rx: vec![0.0; config.node_count()],
            }),
            loop_events: 0,
            loop_wall_secs: 0.0,
            #[cfg(feature = "loop-profile")]
            loop_event_stats: BTreeMap::new(),
            cpu_util: vec![faasflow_sim::stats::TimeWeighted::new(); config.workers as usize],
            mem_util: vec![faasflow_sim::stats::TimeWeighted::new(); config.workers as usize],
            scratch: ClusterScratch::default(),
            config,
        };
        cluster.schedule_fault_plan();
        if let Some(every) = cluster.config.sample_every {
            cluster.queue.schedule(SimTime::ZERO + every, Event::Sample);
        }
        Ok(cluster)
    }

    /// Turns the declarative [`crate::FaultPlan`] into scheduled events.
    /// All instants are absolute offsets from the start of the simulation.
    fn schedule_fault_plan(&mut self) {
        for (idx, c) in self.config.fault.node_crashes.iter().enumerate() {
            self.queue
                .schedule(SimTime::ZERO + c.at, Event::WorkerCrash { idx });
        }
        for (idx, s) in self.config.fault.storage_faults.iter().enumerate() {
            self.queue
                .schedule(SimTime::ZERO + s.at, Event::StorageFaultStart { idx });
            self.queue.schedule(
                SimTime::ZERO + s.at + s.duration,
                Event::StorageFaultEnd { idx },
            );
        }
        for (idx, n) in self.config.fault.net_faults.iter().enumerate() {
            self.queue
                .schedule(SimTime::ZERO + n.at, Event::NetFaultStart { idx });
            self.queue.schedule(
                SimTime::ZERO + n.at + n.duration,
                Event::NetFaultEnd { idx },
            );
        }
        for (idx, c) in self.config.fault.engine_crashes.iter().enumerate() {
            self.queue
                .schedule(SimTime::ZERO + c.at, Event::EngineCrash { idx });
        }
        for (idx, g) in self.config.fault.gray_faults.iter().enumerate() {
            self.queue
                .schedule(SimTime::ZERO + g.at, Event::GrayFaultStart { idx });
            self.queue.schedule(
                SimTime::ZERO + g.at + g.duration,
                Event::GrayFaultEnd { idx },
            );
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Registers a workflow and its driving client.
    ///
    /// # Errors
    ///
    /// Propagates WDL validation and scheduling failures.
    pub fn register(
        &mut self,
        workflow: &Workflow,
        client: ClientConfig,
    ) -> Result<WorkflowId, ClusterError> {
        self.register_with_contention(workflow, client, ContentionSet::default())
    }

    /// Registers a workflow with declared contention pairs (`cont(G)`).
    ///
    /// # Errors
    ///
    /// Propagates WDL validation and scheduling failures.
    pub fn register_with_contention(
        &mut self,
        workflow: &Workflow,
        client: ClientConfig,
        contention: ContentionSet,
    ) -> Result<WorkflowId, ClusterError> {
        client.validate().map_err(ClusterError::InvalidClient)?;
        if self.names.contains_key(workflow.name.as_str()) {
            return Err(ClusterError::DuplicateWorkflow(workflow.name.clone()));
        }
        let parser = DagParser::new(ParserConfig {
            reference_bandwidth: self.config.storage_bandwidth,
            ..ParserConfig::default()
        });
        let dag = parser.parse(workflow)?;
        let wf = WorkflowId::new(self.next_workflow);
        self.next_workflow += 1;

        let q = quota::workflow_quota(&dag, self.config.mu);
        let prev_metrics = RuntimeMetrics::initial(&dag);
        // Intern the name once; every later use (lookups, reports) shares
        // this allocation.
        let name: Arc<str> = Arc::from(workflow.name.as_str());
        let mut state = WorkflowState {
            feedback: FeedbackCollector::new(&dag),
            critical_exec: dag.critical_path_exec(),
            dag_arc: Arc::new(dag.clone()),
            dag,
            deployment: DeploymentManager::new(),
            client,
            contention,
            prev_metrics,
            quota: q,
            sent: 0,
            completed_since_partition: 0,
            arm_seed: self.rng.next_u64(),
        };
        self.partition_and_deploy(wf, &mut state)?;
        self.workflows.insert(wf, state);
        if let Some(slo) = &mut self.slo {
            slo.bind(workflow.name.as_str(), wf);
            // The degradation controller only tracks workflows that carry
            // an objective: untracked workflows pass the gate untouched.
            if slo.has_objective_for(workflow.name.as_str()) {
                if let Some(degrade) = &mut self.degrade {
                    degrade.track(workflow.name.as_str(), wf);
                }
            }
        }
        debug_assert_eq!(self.name_table.len(), wf.index());
        self.name_table.push(name.clone());
        self.names.insert(name, wf);
        self.metrics.insert(wf, WorkflowMetrics::default());

        // Kick off the client.
        match client {
            ClientConfig::ClosedLoop { .. } => {
                self.schedule_arrival(self.queue.now(), wf);
            }
            ClientConfig::OpenLoop { per_minute, .. } => {
                let gap = self.rng.exp_f64(60.0 / per_minute);
                let at = self.queue.now() + SimDuration::from_secs_f64(gap);
                self.schedule_arrival(at, wf);
            }
            ClientConfig::Manual => {}
        }
        Ok(wf)
    }

    /// The id of a registered workflow.
    pub fn workflow_id(&self, name: &str) -> Option<WorkflowId> {
        self.names.get(name).copied()
    }

    /// The name of a registered workflow (inverse of [`Cluster::workflow_id`]).
    pub fn workflow_name(&self, wf: WorkflowId) -> Option<&str> {
        self.name_table.get(wf.index()).map(|n| n.as_ref())
    }

    /// The current placement of a workflow (Figure 15).
    ///
    /// # Panics
    ///
    /// Panics if `wf` is unknown.
    pub fn distribution(&self, wf: WorkflowId) -> Vec<DistributionRow> {
        let ws = &self.workflows[&wf];
        let (_, assignment) = ws.deployment.current().expect("workflow deployed");
        assignment
            .distribution(&ws.dag)
            .into_iter()
            .map(|(worker, groups, functions)| DistributionRow {
                worker,
                groups,
                functions,
            })
            .collect()
    }

    /// Live per-worker load exactly as the placement layer sees it,
    /// alongside each worker engine's own load report — the surface behind
    /// the per-worker load gauges in `faasflow-obs`.
    pub fn worker_load_snapshot(&self) -> Vec<(NodeId, WorkerLoad, faasflow_engine::EngineLoad)> {
        let loads = self.worker_loads();
        (0..self.config.workers as usize)
            .map(|w| {
                (
                    self.config.worker_node(w as u32),
                    loads[w],
                    self.worker_engines[w].load(),
                )
            })
            .collect()
    }

    /// Replaces a workflow's client with an open loop at `per_minute`
    /// sending `invocations` further invocations. Call only when the
    /// previous client has drained (e.g. after a closed-loop warm-up and
    /// [`Cluster::run_until_idle`]) — the §5.4 methodology warms containers
    /// closed-loop, then measures open-loop.
    ///
    /// # Panics
    ///
    /// Panics if `wf` is unknown or `per_minute` is not positive.
    pub fn switch_to_open_loop(&mut self, wf: WorkflowId, per_minute: f64, invocations: u32) {
        assert!(
            per_minute.is_finite() && per_minute > 0.0,
            "open-loop rate must be positive"
        );
        let state = self.workflows.get_mut(&wf).expect("unknown workflow");
        state.client = ClientConfig::OpenLoop {
            per_minute,
            invocations: state.sent + invocations,
        };
        let gap = self.rng.exp_f64(60.0 / per_minute);
        let at = self.queue.now() + SimDuration::from_secs_f64(gap);
        self.schedule_arrival(at, wf);
    }

    /// Sends one invocation immediately (manual clients).
    ///
    /// # Panics
    ///
    /// Panics if `wf` is unknown.
    pub fn invoke_now(&mut self, wf: WorkflowId) {
        assert!(self.workflows.contains_key(&wf), "unknown workflow {wf}");
        self.schedule_arrival(self.queue.now(), wf);
    }

    /// Runs until no *work* remains: no live invocation and no pending
    /// client arrival. Maintenance timers (container keep-alive expiry)
    /// stay queued, so warm pools survive between measurement phases
    /// instead of the clock fast-forwarding 600 s to drain them.
    /// Returns the final simulated time.
    pub fn run_until_idle(&mut self) -> SimTime {
        let wall = std::time::Instant::now();
        while self.work_pending() {
            let Some((t, ev)) = self.queue.pop() else {
                break;
            };
            self.dispatch(t, ev);
        }
        self.loop_wall_secs += wall.elapsed().as_secs_f64();
        self.queue.now()
    }

    /// True while an invocation is in flight or an arrival is scheduled.
    fn work_pending(&self) -> bool {
        self.pending_arrivals > 0 || !self.invocations.is_empty()
    }

    /// Schedules a client arrival, keeping the pending count in step.
    fn schedule_arrival(&mut self, at: SimTime, wf: WorkflowId) {
        self.pending_arrivals += 1;
        self.queue.schedule(at, Event::Arrival { wf });
    }

    /// Runs until the clock reaches `deadline` (events at the deadline are
    /// processed) or the queue drains.
    pub fn run_until(&mut self, deadline: SimTime) {
        let wall = std::time::Instant::now();
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            let (t, ev) = self.queue.pop().expect("peeked event exists");
            self.dispatch(t, ev);
        }
        self.loop_wall_secs += wall.elapsed().as_secs_f64();
    }

    /// Dispatches one event through [`Self::handle`], maintaining the
    /// wall-clock self-profile of the loop.
    #[inline]
    fn dispatch(&mut self, t: SimTime, ev: Event) {
        self.loop_events += 1;
        #[cfg(feature = "loop-profile")]
        {
            let name = ev.name();
            let start = std::time::Instant::now();
            self.handle(t, ev);
            let entry = self.loop_event_stats.entry(name).or_insert((0, 0.0));
            entry.0 += 1;
            entry.1 += start.elapsed().as_secs_f64();
        }
        #[cfg(not(feature = "loop-profile"))]
        self.handle(t, ev);
    }

    /// Wall-clock self-profile of the event loop: events dispatched,
    /// seconds inside the run loops (events/sec via
    /// [`LoopProfile::events_per_sec`]), and — with the `loop-profile`
    /// cargo feature — per-event-type handler timing. Deliberately *not*
    /// part of [`RunReport`]: wall-clock numbers differ run to run while
    /// the report must stay bit-identical for a given seed.
    pub fn loop_profile(&self) -> LoopProfile {
        LoopProfile {
            events_processed: self.loop_events,
            wall_secs: self.loop_wall_secs,
            #[cfg(feature = "loop-profile")]
            per_event: self
                .loop_event_stats
                .iter()
                .map(
                    |(&name, &(count, total_secs))| crate::metrics::EventTypeProfile {
                        name: name.to_string(),
                        count,
                        total_secs,
                    },
                )
                .collect(),
            #[cfg(not(feature = "loop-profile"))]
            per_event: Vec::new(),
        }
    }

    /// Wall-clock seconds spent in the graph partitioner (Figure 16) and
    /// the number of partition runs.
    pub fn partition_wall_time(&self) -> (f64, u32) {
        (self.partition_wall_secs, self.partition_runs)
    }

    /// Drains the recorded trace (empty unless `config.trace` is set).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.tracer.take()
    }

    /// The recorded trace without draining it (empty unless `config.trace`
    /// is set) — lets callers both assemble a span forest and later export
    /// the raw stream without cloning.
    pub fn trace(&self) -> &[TraceEvent] {
        self.tracer.events()
    }

    /// The static critical-path execution time of a registered workflow's
    /// DAG — the `dag.critical_path_exec()` lower bound every observed
    /// critical path is measured against.
    pub fn critical_exec(&self, wf: WorkflowId) -> Option<SimDuration> {
        self.workflows.get(&wf).map(|ws| ws.critical_exec)
    }

    /// Feeds one terminal outcome to the SLO monitor (no-op when
    /// `config.slo` is unset), traces any alert transitions, and drives
    /// the degradation controller off the monitor's verdict. `probe`
    /// marks invocations admitted as degradation recovery probes.
    fn slo_evaluate(
        &mut self,
        now: SimTime,
        wf: WorkflowId,
        e2e: SimDuration,
        bad_outcome: bool,
        probe: bool,
    ) {
        // Without a monitor there is no controller either (validated).
        let Some(slo) = &mut self.slo else { return };
        let verdict = slo.evaluate(now, wf, e2e, bad_outcome);
        for transition in &verdict.transitions {
            self.tracer.record(|| match *transition {
                SloTransition::Fired {
                    workflow,
                    fast_burn,
                    slow_burn,
                } => TraceEvent::SloAlertFired {
                    workflow,
                    fast_burn,
                    slow_burn,
                    at: now,
                },
                SloTransition::Resolved { workflow } => {
                    TraceEvent::SloAlertResolved { workflow, at: now }
                }
            });
        }
        let Some(degrade) = &mut self.degrade else {
            return;
        };
        let mut changes: Vec<DegradeTransition> = Vec::new();
        // The terminal outcome first: it frees the inflight slot and — for
        // probes — decides restore vs relapse before any alert edge from
        // this same completion advances the state machine.
        if verdict.evaluated {
            changes.extend(degrade.on_terminal(now, wf, probe, verdict.bad));
        }
        let mut resolved = false;
        for transition in &verdict.transitions {
            match *transition {
                SloTransition::Fired { workflow, .. } => {
                    changes.extend(degrade.on_fired(now, workflow));
                }
                SloTransition::Resolved { workflow } => resolved |= workflow == wf,
            }
        }
        if resolved && !verdict.alert_active {
            // Recovery starts only once *every* objective of the workflow
            // has stopped alerting, not on the first partial resolve.
            changes.extend(degrade.on_resolved(now, wf));
        }
        if verdict.alert_active {
            changes.extend(degrade.on_alert_active(now, wf));
        }
        for change in changes {
            self.tracer.record(|| match change {
                DegradeTransition::Degraded {
                    workflow,
                    level,
                    cap,
                } => TraceEvent::WorkflowDegraded {
                    workflow,
                    level,
                    cap,
                    at: now,
                },
                DegradeTransition::Restored { workflow } => {
                    TraceEvent::WorkflowRestored { workflow, at: now }
                }
            });
        }
    }

    /// Time-averaged and peak CPU/memory usage per worker, up to the
    /// current simulated instant (§5.6–5.7).
    pub fn utilization(&self) -> Vec<WorkerUtilization> {
        let now = self.queue.now();
        (0..self.config.workers as usize)
            .map(|w| WorkerUtilization {
                worker: self.config.worker_node(w as u32),
                cpu_mean_cores: self.cpu_util[w].mean(now),
                cpu_peak_cores: self.cpu_util[w].peak(),
                mem_mean_bytes: self.mem_util[w].mean(now),
                mem_peak_bytes: self.mem_util[w].peak(),
            })
            .collect()
    }

    /// Clears the per-workflow measurement histograms, keeping all cluster
    /// state (warm containers, deployments, in-flight work). Call after a
    /// warm-up phase so that one-time cold starts do not pollute the
    /// steady-state statistics — the paper's closed-loop methodology
    /// explicitly excludes cold-start effects from its latency numbers
    /// (§2.3).
    pub fn reset_metrics(&mut self) {
        for m in self.metrics.values_mut() {
            *m = WorkflowMetrics::default();
        }
    }

    /// Grants a workflow more client invocations (same client shape). Used
    /// by harnesses that warm up and then measure.
    ///
    /// # Panics
    ///
    /// Panics if `wf` is unknown.
    pub fn extend_client(&mut self, wf: WorkflowId, additional: u32) {
        let state = self.workflows.get_mut(&wf).expect("unknown workflow");
        // Whether the previous allotment already ran out — only then does
        // the arrival chain need re-arming (a live chain keeps itself
        // going; re-arming it would double the rate).
        let drained = state.sent >= state.client.total_invocations();
        match &mut state.client {
            ClientConfig::ClosedLoop { invocations }
            | ClientConfig::OpenLoop { invocations, .. } => {
                *invocations += additional;
            }
            ClientConfig::Manual => {}
        }
        if !drained {
            return;
        }
        match state.client {
            ClientConfig::ClosedLoop { .. } => {
                let no_inflight = !self.invocations.keys().any(|&(w, _)| w == wf);
                if no_inflight {
                    self.schedule_arrival(self.queue.now(), wf);
                }
            }
            ClientConfig::OpenLoop { per_minute, .. } => {
                let gap = self.rng.exp_f64(60.0 / per_minute);
                let at = self.queue.now() + SimDuration::from_secs_f64(gap);
                self.schedule_arrival(at, wf);
            }
            ClientConfig::Manual => {}
        }
    }

    /// Produces the aggregated run report.
    pub fn report(&mut self) -> RunReport {
        let mut workflows = BTreeMap::new();
        // The name table is indexed by dense workflow id; the only string
        // allocations here are the ones owned by the report itself.
        for (idx, name) in self.name_table.iter().enumerate() {
            let wf = WorkflowId::new(idx as u32);
            let metrics = self.metrics.get_mut(&wf).expect("metrics exist");
            workflows.insert(name.to_string(), metrics.snapshot(name));
        }
        let now = self.queue.now();
        let sim_secs = now.as_secs_f64();
        let master_node = ClusterConfig::MASTER_NODE;
        let storage_node_bytes =
            self.net.bytes_delivered_to(master_node) + self.net.bytes_sent_from(master_node);
        let (mut syncs, mut local_updates) = (0u64, 0u64);
        for e in &self.worker_engines {
            syncs += e.stats().syncs_sent.get();
            local_updates += e.stats().local_updates.get();
        }
        let (mut cold, mut warm) = (0u64, 0u64);
        for c in &self.containers {
            cold += c.stats().cold_starts.get();
            warm += c.stats().warm_starts.get();
        }
        let faastore_local_bytes = self
            .faastores
            .iter()
            .map(|f| f.memstore().total_bytes_stored())
            .sum();
        let live_invocation_states = self
            .worker_engines
            .iter()
            .map(|e| e.live_invocations() as u64)
            .sum::<u64>()
            + self.master_engine.live_invocations() as u64;
        let mut recovery = self.recovery;
        recovery.journal_appends = self.master_journal.append_count()
            + self
                .worker_journals
                .iter()
                .map(|j| j.append_count())
                .sum::<u64>();
        recovery.journal_lost_appends = self.master_journal.lost_count()
            + self
                .worker_journals
                .iter()
                .map(|j| j.lost_count())
                .sum::<u64>();
        recovery.journal_replays = self.master_journal.replay_count()
            + self
                .worker_journals
                .iter()
                .map(|j| j.replay_count())
                .sum::<u64>();
        recovery.journal_replayed_records = self.master_journal.replayed_record_count()
            + self
                .worker_journals
                .iter()
                .map(|j| j.replayed_record_count())
                .sum::<u64>();
        // Engines still down at snapshot time contribute partial downtime.
        if self.master_engine_down {
            recovery.engine_downtime_secs += (now - self.master_down_since).as_secs_f64();
        }
        for w in 0..self.worker_engine_down.len() {
            if self.worker_engine_down[w] {
                recovery.engine_downtime_secs += (now - self.worker_down_since[w]).as_secs_f64();
            }
        }
        RunReport {
            workflows,
            sim_time_secs: sim_secs,
            master_busy_fraction: if sim_secs > 0.0 {
                self.master_busy_time.as_secs_f64() / sim_secs
            } else {
                0.0
            },
            master_tasks_assigned: self.master_engine.stats().tasks_assigned.get(),
            master_state_returns: self.master_engine.stats().state_returns.get(),
            worker_syncs: syncs,
            worker_local_updates: local_updates,
            cold_starts: cold,
            warm_starts: warm,
            storage_node_bytes,
            faastore_local_bytes,
            live_invocation_states,
            exec_retries: self.exec_retries,
            repartition_failures: self.repartition_failures,
            faults: self.faults,
            overload: self.overload,
            placement: self.placement,
            recovery,
            slo: self
                .slo
                .as_ref()
                .map(SloMonitor::report)
                .unwrap_or_default(),
            degrade: self
                .degrade
                .as_ref()
                .map(DegradeController::report)
                .unwrap_or_default(),
            health: {
                let mut health = self.health_stats.clone();
                if let Some(h) = self.health.as_ref() {
                    h.snapshot_into(&mut health);
                }
                health
            },
            trace_dropped: self.tracer.dropped(),
            resources: self.resources_snapshot(),
        }
    }

    // ==================================================================
    // Partitioning / deployment
    // ==================================================================

    /// Live per-worker load fed into load-aware placement: container queue
    /// depth, booting + running instances, resident memstore bytes, and the
    /// recently observed end-to-end tail.
    fn worker_loads(&self) -> Vec<WorkerLoad> {
        let n = self.config.workers as usize;
        let mut loads = vec![WorkerLoad::default(); n];
        for (w, load) in loads.iter_mut().enumerate() {
            load.queued = self.containers[w].queue_len() as u32;
            let ms = self.faastores[w].memstore();
            for wf_idx in 0..self.name_table.len() {
                load.mem_used_bytes += ms.used(WorkflowId::new(wf_idx as u32));
            }
            load.recent_p99_ms = self.worker_p99[w]
                .estimate()
                .map_or(0, |p| p.round().max(0.0) as u32);
        }
        for state in self.invocations.values() {
            for inst in state.instances.values() {
                loads[inst.worker].running += 1;
            }
        }
        // Admissions still booting; skip tokens already counted above.
        for (t, &w) in &self.inflight_spawns {
            let counted = self
                .invocations
                .get(&(t.workflow, t.invocation))
                .is_some_and(|s| s.instances.contains_key(t));
            if !counted {
                loads[w].running += 1;
            }
        }
        loads
    }

    /// The partition target set: alive, non-quarantined workers, at
    /// residual capacity (nominal minus live instances) when the placement
    /// layer is enabled, at nominal capacity otherwise. Quarantine zeroes
    /// a worker's share without declaring it dead: its running work keeps
    /// completing, it just gets nothing new.
    fn placement_workers(&self, residual: bool, loads: &[WorkerLoad]) -> Vec<WorkerInfo> {
        (0..self.config.workers)
            .filter(|&i| self.worker_alive[i as usize] && !self.quarantined[i as usize])
            .map(|i| {
                let mut info =
                    WorkerInfo::new(self.config.worker_node(i), self.config.worker_capacity());
                if let Some(load) = loads.get(i as usize) {
                    if residual {
                        info.capacity = info.capacity.saturating_sub(load.busy());
                    }
                    info = info.with_load(*load);
                }
                info
            })
            .collect()
    }

    fn partition_and_deploy(
        &mut self,
        wf: WorkflowId,
        state: &mut WorkflowState,
    ) -> Result<(), ClusterError> {
        // Only live workers take part: a crash shrinks the partition target
        // set and recovery redeploys onto the survivors.
        let enabled = self.config.placement_config.enabled;
        let loads = if enabled {
            self.worker_loads()
        } else {
            Vec::new()
        };
        let workers = self.placement_workers(enabled, &loads);
        let start = std::time::Instant::now();
        let mut result = self.scheduler.partition(
            &state.dag,
            &workers,
            &state.prev_metrics,
            &state.contention,
            state.quota,
            &mut self.rng,
        );
        if enabled {
            self.placement.load_aware_partitions += 1;
            if matches!(result, Err(ScheduleError::InsufficientCapacity { .. })) {
                // Residual capacity can transiently under-report (a burst of
                // live instances); fall back to nominal so a workflow that
                // used to fit still deploys.
                self.placement.capacity_fallbacks += 1;
                let workers = self.placement_workers(false, &loads);
                result = self.scheduler.partition(
                    &state.dag,
                    &workers,
                    &state.prev_metrics,
                    &state.contention,
                    state.quota,
                    &mut self.rng,
                );
            }
        }
        let assignment = result?;
        self.partition_wall_secs += start.elapsed().as_secs_f64();
        self.partition_runs += 1;

        let assignment = Arc::new(assignment);
        state.dag_arc = Arc::new(state.dag.clone());
        let (_version, _retired) = state.deployment.deploy(assignment.clone());

        // Install on the engines and budget the memstores.
        match self.config.mode {
            ScheduleMode::WorkerSp => {
                for e in &mut self.worker_engines {
                    e.install(
                        wf,
                        state.dag_arc.clone(),
                        assignment.clone(),
                        state.arm_seed,
                    );
                }
            }
            ScheduleMode::MasterSp => {
                self.master_engine.install(
                    wf,
                    state.dag_arc.clone(),
                    assignment.clone(),
                    state.arm_seed,
                );
            }
        }
        for i in 0..self.config.workers as usize {
            let node = self.config.worker_node(i as u32);
            let members = assignment
                .groups
                .iter()
                .filter(|g| g.worker == node)
                .flat_map(|g| g.members.iter().copied());
            let budget = quota::subset_quota(&state.dag, members, self.config.mu);
            self.faastores[i].memstore_mut().set_budget(wf, budget);
        }
        Ok(())
    }

    fn maybe_repartition(&mut self, wf: WorkflowId, qos_violated: bool) {
        let due_by_count = match self.config.repartition_every {
            Some(period) => self.workflows[&wf].completed_since_partition >= period,
            None => false,
        };
        // A QoS violation forces an iteration, but only if at least one
        // invocation completed since the last one (fresh feedback exists).
        let due_by_qos = qos_violated && self.workflows[&wf].completed_since_partition > 0;
        if !due_by_count && !due_by_qos {
            return;
        }
        let state = self.workflows.get_mut(&wf).expect("workflow exists");
        state.completed_since_partition = 0;
        let collector = std::mem::replace(&mut state.feedback, FeedbackCollector::new(&state.dag));
        let prev = state.prev_metrics.clone();
        state.prev_metrics = collector.finish(&mut state.dag, &prev);
        // Take the state out to satisfy the borrow checker, then reinsert.
        let mut state = self.workflows.remove(&wf).expect("workflow exists");
        let result = self.partition_and_deploy(wf, &mut state);
        self.workflows.insert(wf, state);
        if let Err(e) = result {
            // A repartition that no longer fits keeps the previous version —
            // counted, not silently swallowed. Capacity misses are a
            // legitimate runtime condition (scale feedback can raise a
            // node's demand past what the cluster holds); anything else
            // (stale metrics, no workers) is a bug.
            self.repartition_failures += 1;
            debug_assert!(
                matches!(
                    e,
                    ClusterError::Schedule(ScheduleError::InsufficientCapacity { .. })
                ),
                "repartition failed: {e}"
            );
        }
    }

    // ==================================================================
    // Event dispatch
    // ==================================================================

    fn handle(&mut self, now: SimTime, event: Event) {
        match event {
            Event::Arrival { wf } => self.on_arrival(now, wf),
            Event::DeliverBegin {
                worker,
                wf,
                inv,
                epoch,
            } => {
                if self.worker_engine_down[worker] {
                    self.recovery.messages_lost += 1;
                } else if self.worker_alive[worker] && self.epoch_alive(wf, inv, epoch) {
                    self.pin_engine_invocation(worker, wf, inv);
                    let actions = self.worker_engines[worker].begin_invocation(wf, inv);
                    self.apply_worker_actions(now, worker, actions);
                }
            }
            Event::DeliverSync {
                worker,
                wf,
                inv,
                completed,
                epoch,
            } => {
                if self.worker_engine_down[worker] {
                    self.recovery.messages_lost += 1;
                } else if self.worker_alive[worker] && self.epoch_alive(wf, inv, epoch) {
                    self.pin_engine_invocation(worker, wf, inv);
                    let actions = self.worker_engines[worker].on_state_sync(wf, inv, completed);
                    self.apply_worker_actions(now, worker, actions);
                }
            }
            Event::DeliverAssign {
                worker,
                wf,
                inv,
                function,
            } => {
                if !self.invocation_alive(wf, inv) {
                    // Dropped: the invocation finished or was dead-lettered.
                } else if self.worker_alive[worker] {
                    self.spawn_instances(now, worker, wf, inv, function);
                } else if self.worker_detected_down[worker] {
                    // The master knows this worker is gone: re-dispatch the
                    // lost call to a survivor.
                    if let Some(target) = self.pick_alive_worker(worker) {
                        self.faults.crash_redispatches += 1;
                        self.spawn_instances(now, target, wf, inv, function);
                    } else {
                        self.dead_letter_invocation(now, wf, inv, DeadLetterReason::CrashOrphan);
                    }
                } else {
                    // Dead but undetected: the assignment sails into the
                    // void until the lease expires (or the node restarts).
                    self.spooled_assigns[worker].push((wf, inv, function));
                }
            }
            Event::DeliverExitReport {
                wf,
                inv,
                epoch,
                function,
            } => {
                if self.epoch_alive(wf, inv, epoch) {
                    self.on_exit_report(now, wf, inv, function);
                }
            }
            Event::MasterArrive { msg, gen } => {
                if self.master_engine_down || gen != self.master_engine_gen {
                    self.recovery.messages_lost += 1;
                } else {
                    self.master_inbox.push_back(msg);
                    self.try_start_master(now);
                }
            }
            Event::MasterDone { gen } => self.on_master_done(now, gen),
            Event::VirtualDone {
                worker,
                wf,
                inv,
                function,
                epoch,
            } => {
                if self.worker_engine_down[worker] {
                    self.recovery.messages_lost += 1;
                } else if self.worker_alive[worker] && self.epoch_alive(wf, inv, epoch) {
                    if let Some(state) = self.invocations.get_mut(&(wf, inv)) {
                        if !state.completed_nodes.insert(function) {
                            // Replay already re-derived this virtual node's
                            // completion; the pre-crash event is a duplicate.
                            self.recovery.duplicate_suppressions += 1;
                            return;
                        }
                    }
                    let was_done = self.worker_engines[worker].node_done(wf, inv, function);
                    let actions =
                        self.worker_engines[worker].on_instance_complete(wf, inv, function);
                    if !was_done && self.worker_engines[worker].node_done(wf, inv, function) {
                        self.journal_append_worker(
                            now,
                            worker,
                            JournalRecord::NodeDone {
                                workflow: wf,
                                invocation: inv,
                                function,
                            },
                        );
                    }
                    self.apply_worker_actions(now, worker, actions);
                }
            }
            Event::InstanceReady {
                worker,
                token,
                container,
                cold,
            } => self.on_instance_ready(now, worker, token, container, cold),
            Event::StartRemoteRead {
                worker,
                token,
                producer,
                bytes,
                started,
            } => {
                if self.instance_on(worker, token) {
                    let dst = self.config.worker_node(worker as u32);
                    self.net.start_flow(
                        ClusterConfig::MASTER_NODE,
                        dst,
                        bytes,
                        FlowTag::Read {
                            token,
                            producer,
                            started,
                            remote: true,
                        },
                        now,
                    );
                    self.reschedule_flow_timer(now);
                }
            }
            Event::StartRemoteWrite {
                worker,
                token,
                bytes,
                started,
            } => {
                if self.instance_on(worker, token) {
                    let src = self.config.worker_node(worker as u32);
                    self.net.start_flow(
                        src,
                        ClusterConfig::MASTER_NODE,
                        bytes,
                        FlowTag::Write {
                            token,
                            started,
                            remote: true,
                        },
                        now,
                    );
                    self.reschedule_flow_timer(now);
                }
            }
            Event::ExecDone { worker, token, seq } => self.on_exec_done(now, worker, token, seq),
            Event::WorkerInstanceDone { worker, token, gen } => {
                if self.worker_engine_down[worker] || gen != self.worker_engine_gen[worker] {
                    // Engine down or message predates the last recovery; the
                    // completion was already reflected in the cluster-side
                    // instance counts the replay seeded from.
                    self.recovery.messages_lost += 1;
                } else if self.worker_alive[worker]
                    && self.epoch_alive(token.workflow, token.invocation, token.epoch)
                {
                    let (wf, inv, function) = (token.workflow, token.invocation, token.function);
                    let was_done = self.worker_engines[worker].node_done(wf, inv, function);
                    let actions =
                        self.worker_engines[worker].on_instance_complete(wf, inv, function);
                    if !was_done && self.worker_engines[worker].node_done(wf, inv, function) {
                        self.journal_append_worker(
                            now,
                            worker,
                            JournalRecord::NodeDone {
                                workflow: wf,
                                invocation: inv,
                                function,
                            },
                        );
                    }
                    self.apply_worker_actions(now, worker, actions);
                }
            }
            Event::FlowTick => {
                self.flow_timer = None;
                let mut done = std::mem::take(&mut self.scratch.flows_done);
                self.net.take_completed_into(now, &mut done);
                for (_, flow) in done.drain(..) {
                    self.on_flow_done(now, flow.tag);
                }
                self.scratch.flows_done = done;
                self.reschedule_flow_timer(now);
            }
            Event::ContainerExpiry { worker } => {
                self.expiry_timers[worker] = None;
                let admissions = self.containers[worker].evict_expired(now, &mut self.rng);
                self.schedule_admissions(worker, admissions);
                self.track_utilization(now, worker);
                self.reschedule_expiry(now, worker);
            }
            Event::Timeout { wf, inv } => self.on_timeout(now, wf, inv),
            Event::WorkerCrash { idx } => self.on_worker_crash(now, idx),
            Event::WorkerRestart { worker } => self.on_worker_restart(now, worker),
            Event::LeaseExpired { worker } => self.on_lease_expired(now, worker),
            Event::StorageFaultStart { idx } => self.on_storage_fault(idx, true),
            Event::StorageFaultEnd { idx } => self.on_storage_fault(idx, false),
            Event::NetFaultStart { idx } => self.on_net_fault(now, idx, true),
            Event::NetFaultEnd { idx } => self.on_net_fault(now, idx, false),
            Event::RetryRemoteRead {
                worker,
                token,
                producer,
                bytes,
                started,
                attempt,
            } => self.schedule_remote_read(now, worker, token, producer, bytes, started, attempt),
            Event::RetryRemoteWrite {
                worker,
                token,
                bytes,
                started,
                attempt,
            } => self.schedule_remote_write(now, worker, token, bytes, started, attempt),
            Event::RecoverInvocation { wf, inv, epoch } => {
                if self.epoch_alive(wf, inv, epoch) {
                    match self.config.mode {
                        ScheduleMode::WorkerSp => self.restart_invocation(now, wf, inv),
                        // The master-side baseline has no partition to fall
                        // back on once in-place recovery fails.
                        ScheduleMode::MasterSp => {
                            self.dead_letter_invocation(now, wf, inv, DeadLetterReason::CrashOrphan)
                        }
                    }
                }
            }
            Event::Sample => {
                self.take_sample(now);
                // Self-reschedule; the chain does not keep `run_until_idle`
                // alive because sampling is not "work" (`work_pending`).
                if let Some(every) = self.samples.as_ref().map(|c| c.every) {
                    self.queue.schedule(now + every, Event::Sample);
                }
            }
            Event::HedgeFire { worker, token, seq } => self.on_hedge_fire(now, worker, token, seq),
            Event::HedgeReady { token, seq } => self.on_hedge_ready(now, token, seq),
            Event::HedgeExecDone { token, seq } => self.on_hedge_exec_done(now, token, seq),
            Event::BackpressureRetry {
                worker,
                wf,
                inv,
                function,
                epoch,
                attempt,
            } => self.on_backpressure_retry(now, worker, wf, inv, function, epoch, attempt),
            Event::EngineCrash { idx } => self.on_engine_crash(now, idx),
            Event::EngineRestart {
                target,
                attempt,
                era,
            } => self.on_engine_restart(now, target, attempt, era),
            Event::EngineRecovered { target, era } => self.on_engine_recovered(now, target, era),
            Event::GrayFaultStart { idx } => self.on_gray_fault_start(now, idx),
            Event::GrayFaultEnd { idx } => self.on_gray_fault_end(now, idx),
            Event::HealthReopen { worker, at } => self.on_health_reopen(now, worker, at),
        }
    }

    /// Reads every per-node gauge into the sample rings. Pure observation:
    /// no RNG draws, no state mutation outside the collector, so a sampled
    /// run executes identically to an unsampled one.
    fn take_sample(&mut self, now: SimTime) {
        let Some(collector) = self.samples.as_mut() else {
            return;
        };
        let at_secs = now.as_secs_f64();
        // Instantaneous NIC rates from the live max-min fair shares.
        // Loopback flows (FaaStore local passing) consume no NIC.
        for r in collector.tx.iter_mut() {
            *r = 0.0;
        }
        for r in collector.rx.iter_mut() {
            *r = 0.0;
        }
        for (_, flow) in self.net.iter() {
            if flow.src == flow.dst {
                continue;
            }
            let rate = flow.rate();
            collector.tx[flow.src.index()] += rate;
            collector.rx[flow.dst.index()] += rate;
        }
        let node_count = collector.node_rings.len();
        for node_idx in 0..node_count {
            let (containers, busy, queued, ms_used, ms_budget) = if node_idx == 0 {
                // The master/storage node runs no containers or memstore;
                // its interesting signal is the NIC (the §5.4 bottleneck).
                (0, 0, 0, 0, 0)
            } else {
                let w = node_idx - 1;
                let cm = &self.containers[w];
                let ms = self.faastores[w].memstore();
                let (mut used, mut budget) = (0u64, 0u64);
                for wf_idx in 0..self.name_table.len() {
                    let wf = WorkflowId::new(wf_idx as u32);
                    used += ms.used(wf);
                    budget += ms.budget(wf);
                }
                (
                    cm.container_count() as u64,
                    cm.stats().cores_busy.get(),
                    cm.queue_len() as u64,
                    used,
                    budget,
                )
            };
            collector.node_rings[node_idx].push(NodeSample {
                at_secs,
                containers,
                busy,
                queued_admissions: queued,
                memstore_used_bytes: ms_used,
                memstore_budget_bytes: ms_budget,
                nic_tx_bytes_per_sec: collector.tx[node_idx],
                nic_rx_bytes_per_sec: collector.rx[node_idx],
            });
        }
        collector.cluster_ring.push(ClusterSample {
            at_secs,
            pending_events: self.queue.len() as u64,
            inflight_invocations: self.invocations.len() as u64,
        });
    }

    /// Snapshot of the sampled series for [`RunReport::resources`].
    fn resources_snapshot(&self) -> Option<ResourceSeriesReport> {
        let c = self.samples.as_ref()?;
        let mut dropped = c.cluster_ring.evicted();
        let nodes = c
            .node_rings
            .iter()
            .enumerate()
            .map(|(i, ring)| {
                dropped += ring.evicted();
                NodeSeries {
                    node: NodeId::new(i as u32),
                    samples: ring.snapshot(),
                }
            })
            .collect();
        Some(ResourceSeriesReport {
            sample_every_secs: c.every.as_secs_f64(),
            dropped_samples: dropped,
            nodes,
            cluster: c.cluster_ring.snapshot(),
        })
    }

    fn invocation_alive(&self, wf: WorkflowId, inv: InvocationId) -> bool {
        self.invocations
            .get(&(wf, inv))
            .map(|s| !s.completed)
            .unwrap_or(false)
    }

    /// Alive *and* still in the given recovery epoch — the fence that makes
    /// every pre-crash in-flight message harmless after a restart.
    fn epoch_alive(&self, wf: WorkflowId, inv: InvocationId, epoch: u32) -> bool {
        self.invocations
            .get(&(wf, inv))
            .map(|s| !s.completed && s.epoch == epoch)
            .unwrap_or(false)
    }

    /// `true` while `token`'s instance is currently admitted on `worker`.
    fn instance_on(&self, worker: usize, token: InstanceToken) -> bool {
        self.invocations
            .get(&(token.workflow, token.invocation))
            .and_then(|s| s.instances.get(&token))
            .map(|i| i.worker == worker)
            .unwrap_or(false)
    }

    // ==================================================================
    // Client & invocation lifecycle
    // ==================================================================

    fn on_arrival(&mut self, now: SimTime, wf: WorkflowId) {
        self.pending_arrivals = self
            .pending_arrivals
            .checked_sub(1)
            .expect("arrival bookkeeping out of step");
        let state = self.workflows.get_mut(&wf).expect("workflow exists");
        if state.sent >= state.client.total_invocations() {
            return;
        }
        state.sent += 1;
        // Open-loop: schedule the next arrival independently of completion.
        let next_open_rate = match state.client {
            ClientConfig::OpenLoop { per_minute, .. }
                if state.sent < state.client.total_invocations() =>
            {
                Some(per_minute)
            }
            _ => None,
        };
        if let Some(per_minute) = next_open_rate {
            let gap = self.rng.exp_f64(60.0 / per_minute);
            let at = now + SimDuration::from_secs_f64(gap);
            self.schedule_arrival(at, wf);
        }
        let state = self.workflows.get_mut(&wf).expect("workflow exists");
        let inv = InvocationId::new(self.next_invocation);
        self.next_invocation += 1;
        self.tracer.record(|| TraceEvent::InvocationArrived {
            workflow: wf,
            invocation: inv,
            at: now,
        });
        let version = state.deployment.invocation_started();
        let assignment = state
            .deployment
            .assignment_arc(version)
            .expect("current version has an assignment");
        let mut inv_state = InvState::new(version, state.dag_arc.clone(), assignment, now);
        let timeout_at = now + self.config.timeout;
        inv_state.timeout_event = Some(self.queue.schedule(timeout_at, Event::Timeout { wf, inv }));
        self.metrics.get_mut(&wf).expect("metrics exist").sent += 1;
        self.overload.admitted += 1;

        // Degradation gate: a Throttled/Shedding workflow may have this
        // arrival refused before any dispatch work happens. The arrival is
        // still accepted into the system (`sent`/`admitted` tick, the
        // conservation invariants hold) and then shed with explicit
        // accounting. Admissions during recovery may be marked as probes.
        let decision = match &mut self.degrade {
            Some(degrade) => degrade.admit(wf),
            None => AdmitDecision::ADMIT,
        };
        inv_state.degrade_probe = decision.probe;

        match self.config.mode {
            ScheduleMode::WorkerSp => {
                self.invocations.insert((wf, inv), inv_state);
                if !decision.admitted {
                    let worker = self.degrade_shed_worker(wf, inv);
                    self.abandon_invocation(now, wf, inv, AbandonKind::DegradeShed { worker });
                    return;
                }
                self.begin_invocation_dispatch(now, wf, inv);
            }
            ScheduleMode::MasterSp => {
                self.invocations.insert((wf, inv), inv_state);
                // Write-ahead: the admission is durable before the engine
                // sees it, so an engine crash before the Begin drains still
                // leaves a recoverable journal record.
                self.journal_append_master(
                    now,
                    JournalRecord::Admitted {
                        workflow: wf,
                        invocation: inv,
                    },
                );
                if !decision.admitted {
                    // Admitted is already durable, so the journal replays
                    // the pair Admitted → Terminal(Shed) consistently.
                    let worker = self.degrade_shed_worker(wf, inv);
                    self.abandon_invocation(now, wf, inv, AbandonKind::DegradeShed { worker });
                    return;
                }
                self.queue.schedule(
                    now,
                    Event::MasterArrive {
                        msg: MasterInbox::Begin { wf, inv },
                        gen: self.master_engine_gen,
                    },
                );
            }
        }
    }

    /// The worker a degradation-gate shed is attributed to: the first
    /// entry node's worker (where dispatch would have begun), falling back
    /// to worker 0 for degenerate placements.
    fn degrade_shed_worker(&self, wf: WorkflowId, inv: InvocationId) -> usize {
        let state = &self.invocations[&(wf, inv)];
        state
            .dag
            .entry_nodes()
            .iter()
            .filter_map(|&e| self.config.worker_index(state.assignment.worker_of(e)))
            .min()
            .unwrap_or(0)
    }

    /// WorkerSP: pins the invocation's engine-side context to its
    /// cluster-side pinned deployment before the first `begin`/`sync`
    /// event is processed there. Without this, an incremental rebalance
    /// landing between an invocation's arrival and a delayed sync would
    /// make the receiving engine route the live invocation by the *new*
    /// assignment — stranding successors and breaking the data-placement
    /// contract (a `LocalMem` put whose consumer moved elsewhere).
    fn pin_engine_invocation(&mut self, worker: usize, wf: WorkflowId, inv: InvocationId) {
        let Some(state) = self.invocations.get(&(wf, inv)) else {
            return;
        };
        let Some(ws) = self.workflows.get(&wf) else {
            return;
        };
        self.worker_engines[worker].ensure_invocation(
            wf,
            inv,
            state.dag.clone(),
            state.assignment.clone(),
            ws.arm_seed,
        );
    }

    /// WorkerSP: notify each worker hosting an entry node of the
    /// invocation's pinned assignment. Used on arrival and again after a
    /// crash-recovery restart (under the bumped epoch).
    fn begin_invocation_dispatch(&mut self, now: SimTime, wf: WorkflowId, inv: InvocationId) {
        let state = &self.invocations[&(wf, inv)];
        let epoch = state.epoch;
        let mut entry_workers: Vec<usize> = state
            .dag
            .entry_nodes()
            .iter()
            .filter_map(|&e| self.config.worker_index(state.assignment.worker_of(e)))
            .collect();
        entry_workers.sort_unstable();
        entry_workers.dedup();
        for worker in entry_workers {
            self.journal_append_worker(
                now,
                worker,
                JournalRecord::Admitted {
                    workflow: wf,
                    invocation: inv,
                },
            );
            let node = self.config.worker_node(worker as u32);
            let delay = self.control_delay(256, ClusterConfig::MASTER_NODE, node);
            self.queue.schedule(
                now + delay,
                Event::DeliverBegin {
                    worker,
                    wf,
                    inv,
                    epoch,
                },
            );
        }
    }

    /// Latency of one control-plane message, including link-fault effects:
    /// a degraded endpoint stretches the latency and may lose the message,
    /// which costs a backoff plus a retransmission per loss. On clean links
    /// this is exactly one `MessageModel` draw — bit-identical to the
    /// pre-fault behaviour.
    fn control_delay(&mut self, bytes: u64, src: NodeId, dst: NodeId) -> SimDuration {
        let delay = self.config.lan.latency(bytes, &mut self.rng);
        let quality = self.link_faults.path(src, dst);
        if quality.is_clean() {
            return delay;
        }
        let mut total = delay.mul_f64(quality.latency_factor);
        let mut attempt = 0u32;
        while quality.loss > 0.0
            && attempt < self.config.fault.backoff.max_attempts
            && self.rng.chance(quality.loss)
        {
            self.faults.message_retransmits += 1;
            total += self.config.fault.backoff.delay(attempt, &mut self.rng)
                + self
                    .config
                    .lan
                    .latency(bytes, &mut self.rng)
                    .mul_f64(quality.latency_factor);
            attempt += 1;
        }
        total
    }

    fn on_timeout(&mut self, _now: SimTime, wf: WorkflowId, inv: InvocationId) {
        let Some(state) = self.invocations.get_mut(&(wf, inv)) else {
            return;
        };
        if state.completed {
            return;
        }
        state.timed_out = true;
        state.timeout_event = None;
        let critical = self.workflows[&wf].critical_exec;
        let metrics = self.metrics.get_mut(&wf).expect("metrics exist");
        metrics.timeouts += 1;
        let cap_ms = self.config.timeout.as_millis_f64();
        metrics.e2e.record(cap_ms);
        metrics
            .sched_overhead
            .record((self.config.timeout.saturating_sub(critical)).as_millis_f64());
    }

    fn on_exit_report(
        &mut self,
        now: SimTime,
        wf: WorkflowId,
        inv: InvocationId,
        function: FunctionId,
    ) {
        let Some(state) = self.invocations.get_mut(&(wf, inv)) else {
            return;
        };
        if state.completed {
            return;
        }
        if !state.reported_exits.insert(function) {
            // Engine-crash replay re-emitted this exit's completion; the
            // invocation's exit count must only move once per exit node.
            self.recovery.duplicate_suppressions += 1;
            return;
        }
        state.exits_remaining = state.exits_remaining.saturating_sub(1);
        if state.exits_remaining == 0 {
            self.complete_invocation(now, wf, inv);
        }
    }

    fn complete_invocation(&mut self, now: SimTime, wf: WorkflowId, inv: InvocationId) {
        let mut state = self
            .invocations
            .remove(&(wf, inv))
            .expect("completing a live invocation");
        state.completed = true;
        if let Some(ev) = state.timeout_event.take() {
            self.queue.cancel(ev);
        }
        // Terminal outcomes are journaled gateway-side in both modes: the
        // exactly-once guarantee is that each invocation gets one (and only
        // one) Terminal record.
        self.journal_append_master(
            now,
            JournalRecord::Terminal {
                workflow: wf,
                invocation: inv,
                outcome: TerminalOutcome::Completed,
            },
        );
        self.tracer.record(|| TraceEvent::InvocationCompleted {
            workflow: wf,
            invocation: inv,
            at: now,
            timed_out: state.timed_out,
        });
        self.slo_evaluate(
            now,
            wf,
            now - state.started,
            state.timed_out,
            state.degrade_probe,
        );

        // Metrics (skip latency if the timeout already recorded it).
        let ws = self.workflows.get_mut(&wf).expect("workflow exists");
        let metrics = self.metrics.get_mut(&wf).expect("metrics exist");
        metrics.completed += 1;
        let mut qos_violated = false;
        {
            let e2e = now - state.started;
            if let Some(target) = self.config.qos_target {
                qos_violated = state.timed_out || e2e > target;
            }
            if !state.timed_out {
                metrics.e2e.record(e2e.as_millis_f64());
                metrics
                    .sched_overhead
                    .record(e2e.saturating_sub(ws.critical_exec).as_millis_f64());
            }
        }
        if self.config.placement_config.enabled {
            // Feed the per-worker tail estimate every worker this
            // invocation's placement touched (timeouts included: a timed-out
            // invocation is exactly the pain the signal should carry).
            let e2e_ms = (now - state.started).as_millis_f64();
            for w in 0..self.config.workers as usize {
                if state.assignment.involves(self.config.worker_node(w as u32)) {
                    self.worker_p99[w].observe(e2e_ms);
                }
            }
        }
        metrics
            .transfer_total
            .record(state.ledger.total_latency.as_millis_f64());
        metrics
            .bytes_moved
            .record((state.ledger.remote_bytes + state.ledger.local_bytes) as f64);
        metrics.remote_bytes += state.ledger.remote_bytes;
        metrics.local_bytes += state.ledger.local_bytes;
        metrics.first_completion.get_or_insert(now);
        metrics.last_completion = Some(now);

        // Feedback: observed container scale and executor maps.
        for node in state.dag.nodes() {
            if !node.kind.is_function() {
                continue;
            }
            let worker = state.assignment.worker_of(node.id);
            if let Some(wi) = self.config.worker_index(worker) {
                let pool = self.containers[wi].pool_size((wf, node.id)).max(1);
                ws.feedback.observe_scale(node.id, pool);
                ws.feedback.observe_map(node.id, node.parallelism);
            }
        }
        ws.completed_since_partition += 1;

        // Release state everywhere (§4.2.1).
        match self.config.mode {
            ScheduleMode::WorkerSp => {
                for e in &mut self.worker_engines {
                    e.release_invocation(wf, inv);
                }
            }
            ScheduleMode::MasterSp => self.master_engine.release_invocation(wf, inv),
        }
        for fs in &mut self.faastores {
            fs.release_invocation(wf, inv);
        }
        self.remote.release_invocation(inv);
        let _retired = ws.deployment.invocation_finished(state.version);

        // Closed-loop client sends the next invocation on completion.
        if matches!(ws.client, ClientConfig::ClosedLoop { .. })
            && ws.sent < ws.client.total_invocations()
        {
            self.schedule_arrival(now, wf);
        }
        self.maybe_repartition(wf, qos_violated);
        self.maybe_rebalance_on_skew();
    }

    // ==================================================================
    // Incremental rebalancing (placement layer)
    // ==================================================================

    /// Per-worker placed-group counts over every workflow's current
    /// deployment (order-independent sums, so map iteration is fine).
    fn placed_group_counts(&self) -> Vec<u64> {
        let mut groups = vec![0u64; self.config.workers as usize];
        for ws in self.workflows.values() {
            let Some((_, asg)) = ws.deployment.current() else {
                continue;
            };
            for g in &asg.groups {
                if let Some(w) = self.config.worker_index(g.worker) {
                    groups[w] += 1;
                }
            }
        }
        groups
    }

    /// The alive worker holding the most placed groups (first index wins
    /// ties — deterministic), or `None` when nothing is placed.
    fn most_loaded_worker(&self) -> Option<(usize, u64, u64)> {
        let groups = self.placed_group_counts();
        let mut best: Option<(usize, u64)> = None;
        let mut total = 0u64;
        for (w, &count) in groups.iter().enumerate() {
            if !self.worker_alive[w] {
                continue;
            }
            total += count;
            if best.is_none_or(|(_, b)| count > b) {
                best = Some((w, count));
            }
        }
        let (hot, max) = best?;
        if max == 0 {
            return None;
        }
        Some((hot, max, total))
    }

    /// Skew trigger of the incremental rebalancer: every
    /// `rebalance_cooldown` completions, if the most-loaded alive worker
    /// holds more than `skew_threshold_pct`% of the mean per-worker
    /// placed-group count, re-place just the workflows contributing to it.
    fn maybe_rebalance_on_skew(&mut self) {
        let pcfg = self.config.placement_config;
        if !pcfg.enabled {
            return;
        }
        self.completions_since_skew_check += 1;
        if self.completions_since_skew_check < pcfg.rebalance_cooldown {
            return;
        }
        self.completions_since_skew_check = 0;
        let alive = self.worker_alive.iter().filter(|&&a| a).count() as u64;
        if alive < 2 {
            return;
        }
        let Some((hot, max, total)) = self.most_loaded_worker() else {
            return;
        };
        // max > (threshold_pct / 100) * (total / alive), in integers.
        let skewed = max >= 2
            && u128::from(max) * 100 * u128::from(alive)
                > u128::from(total) * u128::from(pcfg.skew_threshold_pct);
        if !skewed {
            return;
        }
        let node = self.config.worker_node(hot as u32);
        let moved = self.rebalance_workflows_on(node);
        if moved > 0 {
            self.placement.skew_rebalances += 1;
            self.placement.rebalanced_workflows += moved;
            let at = self.queue.now();
            self.tracer.record(|| TraceEvent::PlacementRebalanced {
                worker: node,
                workflows: moved,
                recovery: false,
                at,
            });
        }
    }

    /// Re-places only the workflows whose current deployment has a group on
    /// `node`, via the ordinary epoch-fenced red-black redeploy path.
    /// Returns how many workflows were re-placed.
    fn rebalance_workflows_on(&mut self, node: NodeId) -> u64 {
        let mut wfs = std::mem::take(&mut self.scratch.wf_ids);
        wfs.extend(self.workflows.iter().filter_map(|(&wf, ws)| {
            let (_, asg) = ws.deployment.current()?;
            asg.involves(node).then_some(wf)
        }));
        wfs.sort_unstable();
        let mut moved = 0u64;
        for &wf in &wfs {
            let mut state = self.workflows.remove(&wf).expect("workflow exists");
            let result = self.partition_and_deploy(wf, &mut state);
            self.workflows.insert(wf, state);
            match result {
                Ok(()) => moved += 1,
                Err(_) => self.repartition_failures += 1,
            }
        }
        wfs.clear();
        self.scratch.wf_ids = wfs;
        moved
    }

    // ==================================================================
    // Master engine (MasterSP)
    // ==================================================================

    fn try_start_master(&mut self, now: SimTime) {
        if self.master_current.is_some() {
            return;
        }
        let Some(msg) = self.master_inbox.pop_front() else {
            return;
        };
        self.master_current = Some(msg);
        self.queue.schedule(
            now + self.config.master_task_cost,
            Event::MasterDone {
                gen: self.master_engine_gen,
            },
        );
    }

    fn on_master_done(&mut self, now: SimTime, gen: u64) {
        if self.master_engine_down || gen != self.master_engine_gen {
            // The engine crashed while this task was processing; the work
            // (and the inbox slot it held) died with the volatile state.
            return;
        }
        self.master_busy_time += self.config.master_task_cost;
        let msg = self
            .master_current
            .take()
            .expect("a message was processing");
        let actions = match msg {
            MasterInbox::Begin { wf, inv } => {
                if self.invocation_alive(wf, inv) {
                    self.master_engine.begin_invocation(wf, inv)
                } else {
                    Vec::new()
                }
            }
            MasterInbox::StateReturn { wf, inv, function } => {
                if self.invocation_alive(wf, inv) {
                    let was_done = self.master_engine.node_done(wf, inv, function);
                    let actions = self.master_engine.on_state_return(wf, inv, function);
                    if !was_done && self.master_engine.node_done(wf, inv, function) {
                        self.journal_append_master(
                            now,
                            JournalRecord::NodeDone {
                                workflow: wf,
                                invocation: inv,
                                function,
                            },
                        );
                    }
                    actions
                } else {
                    Vec::new()
                }
            }
            MasterInbox::Requeue {
                worker,
                wf,
                inv,
                function,
                epoch,
                attempt,
            } => {
                // Central re-dispatch: the bounced assignment burned a
                // master CPU slot and now travels back to the worker.
                if self.epoch_alive(wf, inv, epoch) {
                    let bp = self
                        .config
                        .overload
                        .backpressure
                        .expect("requeues only occur with backpressure enabled");
                    let node = self.config.worker_node(worker as u32);
                    let delay = self.control_delay(512, ClusterConfig::MASTER_NODE, node);
                    self.queue.schedule(
                        now + delay + bp.defer_delay,
                        Event::BackpressureRetry {
                            worker,
                            wf,
                            inv,
                            function,
                            epoch,
                            attempt,
                        },
                    );
                }
                Vec::new()
            }
        };
        self.apply_master_actions(now, actions);
        self.try_start_master(now);
    }

    fn apply_master_actions(&mut self, now: SimTime, actions: Vec<MasterAction>) {
        for action in actions {
            match action {
                MasterAction::AssignTask {
                    worker,
                    workflow,
                    invocation,
                    function,
                } => {
                    let wi = self
                        .config
                        .worker_index(worker)
                        .expect("assignments target workers");
                    self.journal_append_master(
                        now,
                        JournalRecord::Dispatched {
                            workflow,
                            invocation,
                            function,
                        },
                    );
                    let delay = self.control_delay(512, ClusterConfig::MASTER_NODE, worker);
                    self.queue.schedule(
                        now + delay,
                        Event::DeliverAssign {
                            worker: wi,
                            wf: workflow,
                            inv: invocation,
                            function,
                        },
                    );
                }
                MasterAction::ExitComplete {
                    workflow,
                    invocation,
                    function,
                } => {
                    // The master engine is co-located with the client.
                    self.on_exit_report(now, workflow, invocation, function);
                }
            }
        }
    }

    // ==================================================================
    // Worker engines (WorkerSP)
    // ==================================================================

    fn apply_worker_actions(&mut self, now: SimTime, worker: usize, actions: Vec<WorkerAction>) {
        for action in actions {
            match action {
                WorkerAction::TriggerFunction {
                    workflow,
                    invocation,
                    function,
                } => {
                    let (is_virtual, epoch) = {
                        let Some(state) = self.invocations.get(&(workflow, invocation)) else {
                            continue;
                        };
                        (!state.dag.node(function).kind.is_function(), state.epoch)
                    };
                    if is_virtual {
                        self.queue.schedule(
                            now + self.config.worker_engine_cost,
                            Event::VirtualDone {
                                worker,
                                wf: workflow,
                                inv: invocation,
                                function,
                                epoch,
                            },
                        );
                    } else {
                        self.journal_append_worker(
                            now,
                            worker,
                            JournalRecord::Dispatched {
                                workflow,
                                invocation,
                                function,
                            },
                        );
                        self.spawn_instances(now, worker, workflow, invocation, function);
                    }
                }
                WorkerAction::SyncState {
                    to,
                    workflow,
                    invocation,
                    completed,
                } => {
                    self.journal_append_worker(
                        now,
                        worker,
                        JournalRecord::StateSynced {
                            workflow,
                            invocation,
                            function: completed,
                        },
                    );
                    let from = self.config.worker_node(worker as u32);
                    self.tracer.record(|| TraceEvent::StateSyncSent {
                        from,
                        to,
                        workflow,
                        invocation,
                        completed,
                        at: now,
                    });
                    let wi = self.config.worker_index(to).expect("syncs target workers");
                    let epoch = self
                        .invocations
                        .get(&(workflow, invocation))
                        .map(|s| s.epoch)
                        .unwrap_or(0);
                    let delay = self.control_delay(256, from, to) + self.config.worker_engine_cost;
                    self.queue.schedule(
                        now + delay,
                        Event::DeliverSync {
                            worker: wi,
                            wf: workflow,
                            inv: invocation,
                            completed,
                            epoch,
                        },
                    );
                }
                WorkerAction::ExitComplete {
                    workflow,
                    invocation,
                    function,
                } => {
                    let epoch = self
                        .invocations
                        .get(&(workflow, invocation))
                        .map(|s| s.epoch)
                        .unwrap_or(0);
                    let src = self.config.worker_node(worker as u32);
                    let delay = self.control_delay(256, src, ClusterConfig::MASTER_NODE);
                    self.queue.schedule(
                        now + delay,
                        Event::DeliverExitReport {
                            wf: workflow,
                            inv: invocation,
                            epoch,
                            function,
                        },
                    );
                }
            }
        }
    }

    // ==================================================================
    // Instance lifecycle
    // ==================================================================

    /// Dispatches a function's instances on `worker`, deferring first when
    /// backpressure is on and the worker's admission queue is saturated.
    fn spawn_instances(
        &mut self,
        now: SimTime,
        worker: usize,
        wf: WorkflowId,
        inv: InvocationId,
        function: FunctionId,
    ) {
        if let Some(bp) = self.config.overload.backpressure {
            if self.worker_alive[worker]
                && self.containers[worker].queue_len() >= bp.queue_threshold
            {
                self.defer_dispatch(now, worker, wf, inv, function, 0, bp);
                return;
            }
        }
        self.spawn_instances_now(now, worker, wf, inv, function);
    }

    /// Pushes a saturated dispatch back. WorkerSP absorbs the wait locally
    /// (a timer on the worker); MasterSP bounces the assignment through the
    /// central queue, re-spending master CPU — the central-bottleneck
    /// asymmetry the overload scenario measures.
    #[allow(clippy::too_many_arguments)]
    fn defer_dispatch(
        &mut self,
        now: SimTime,
        worker: usize,
        wf: WorkflowId,
        inv: InvocationId,
        function: FunctionId,
        attempt: u32,
        bp: BackpressureConfig,
    ) {
        let Some(state) = self.invocations.get(&(wf, inv)) else {
            return;
        };
        if state.completed {
            return;
        }
        let epoch = state.epoch;
        match self.config.mode {
            ScheduleMode::WorkerSp => {
                self.overload.backpressure_deferrals += 1;
                self.queue.schedule(
                    now + bp.defer_delay,
                    Event::BackpressureRetry {
                        worker,
                        wf,
                        inv,
                        function,
                        epoch,
                        attempt,
                    },
                );
            }
            ScheduleMode::MasterSp => {
                self.overload.master_requeues += 1;
                let src = self.config.worker_node(worker as u32);
                let delay = self.control_delay(512, src, ClusterConfig::MASTER_NODE);
                self.queue.schedule(
                    now + delay,
                    Event::MasterArrive {
                        msg: MasterInbox::Requeue {
                            worker,
                            wf,
                            inv,
                            function,
                            epoch,
                            attempt,
                        },
                        gen: self.master_engine_gen,
                    },
                );
            }
        }
    }

    /// A deferred dispatch comes due: defer again while the queue is still
    /// saturated (up to `max_defers`), otherwise dispatch — re-routing or
    /// dead-lettering if the worker died in the meantime.
    #[allow(clippy::too_many_arguments)]
    fn on_backpressure_retry(
        &mut self,
        now: SimTime,
        worker: usize,
        wf: WorkflowId,
        inv: InvocationId,
        function: FunctionId,
        epoch: u32,
        attempt: u32,
    ) {
        if !self.epoch_alive(wf, inv, epoch) {
            return;
        }
        let bp = self
            .config
            .overload
            .backpressure
            .expect("retries only occur with backpressure enabled");
        let next = attempt + 1;
        if self.worker_alive[worker]
            && self.containers[worker].queue_len() >= bp.queue_threshold
            && next < bp.max_defers
        {
            self.defer_dispatch(now, worker, wf, inv, function, next, bp);
            return;
        }
        if self.worker_alive[worker] {
            self.spawn_instances_now(now, worker, wf, inv, function);
        } else if self.config.mode == ScheduleMode::MasterSp {
            // Mirror `DeliverAssign`'s dead-worker handling.
            if self.worker_detected_down[worker] {
                if let Some(target) = self.pick_alive_worker(worker) {
                    self.faults.crash_redispatches += 1;
                    self.spawn_instances_now(now, target, wf, inv, function);
                } else {
                    self.dead_letter_invocation(now, wf, inv, DeadLetterReason::CrashOrphan);
                }
            } else {
                self.spooled_assigns[worker].push((wf, inv, function));
            }
        }
        // WorkerSP with a dead worker: partition recovery restarts the
        // invocation under a new epoch; this deferral is simply dropped.
    }

    fn spawn_instances_now(
        &mut self,
        now: SimTime,
        worker: usize,
        wf: WorkflowId,
        inv: InvocationId,
        function: FunctionId,
    ) {
        let Some(state) = self.invocations.get_mut(&(wf, inv)) else {
            return;
        };
        if state.completed {
            return;
        }
        if !state.dispatched.insert(function) {
            // Engine-crash replay re-issued a dispatch that already landed;
            // spawning twice would double-run (and double-count) the node.
            self.recovery.duplicate_suppressions += 1;
            return;
        }
        let epoch = state.epoch;
        let parallelism = state.dag.node(function).parallelism.max(1);
        state.instances_remaining.insert(function, parallelism);
        let worker_node = self.config.worker_node(worker as u32);
        self.tracer.record(|| TraceEvent::FunctionTriggered {
            workflow: wf,
            invocation: inv,
            function,
            worker: worker_node,
            at: now,
        });
        for instance in 0..parallelism {
            let token = InstanceToken {
                workflow: wf,
                invocation: inv,
                function,
                instance,
                epoch,
            };
            self.request_instance(now, worker, token);
        }
    }

    /// Asks `worker`'s container runtime to admit one instance, tracking
    /// the request so crash recovery can find admissions that never became
    /// `InstanceReady`.
    fn request_instance(&mut self, now: SimTime, worker: usize, token: InstanceToken) {
        debug_assert!(self.worker_alive[worker], "admitting on a dead worker");
        // An earlier instance of the same spawn loop may have overflowed
        // the admission queue and shed this very invocation.
        if !self.epoch_alive(token.workflow, token.invocation, token.epoch) {
            return;
        }
        self.inflight_spawns.insert(token, worker);
        if let Some(adm) = self.containers[worker].request(
            (token.workflow, token.function),
            token,
            now,
            &mut self.rng,
        ) {
            self.schedule_admissions(worker, vec![adm]);
        } else if let Some(adm_cfg) = self.config.overload.admission {
            if self.containers[worker].queue_len() > adm_cfg.queue_capacity {
                self.shed_overflow(now, worker, token, adm_cfg);
            }
        }
        self.track_utilization(now, worker);
        self.reschedule_expiry(now, worker);
    }

    /// The admission queue on `worker` just overflowed its bound: pick a
    /// victim per the shed policy and drop its whole invocation (the
    /// teardown purges the victim's queued entries on every worker, so one
    /// invocation is shed at most once).
    fn shed_overflow(
        &mut self,
        now: SimTime,
        worker: usize,
        newcomer: InstanceToken,
        cfg: AdmissionConfig,
    ) {
        let victim = match cfg.policy {
            ShedPolicy::RejectNewest => {
                self.containers[worker].remove_queued(|t| *t == newcomer);
                self.overload.shed_newest += 1;
                newcomer
            }
            ShedPolicy::RejectOldest => {
                let v = self.containers[worker]
                    .shed_oldest()
                    .expect("the queue overflowed, so it is non-empty");
                self.overload.shed_oldest += 1;
                v
            }
            ShedPolicy::DeadlineAware => {
                // Drop degradation-demoted workflows first (the SLO
                // offender takes the hit before innocent tenants); then
                // the lowest priority class; within a class, the
                // invocation with the earliest (= most hopeless) QoS
                // deadline. The newcomer is already queued, so the scan
                // covers it too. Ties break on ids for determinism. With
                // every function at the default class 0 and no degraded
                // workflow this degenerates to the legacy
                // earliest-deadline ordering.
                let qos = self.config.qos_target.expect("validated at build");
                let mut best: Option<(u8, u8, SimTime, InstanceToken)> = None;
                for &t in self.containers[worker].queued_tokens() {
                    let Some(s) = self.invocations.get(&(t.workflow, t.invocation)) else {
                        continue;
                    };
                    let demoted = self.degrade.as_ref().is_some_and(|d| d.demotes(t.workflow));
                    let prio = self
                        .workflows
                        .get(&t.workflow)
                        .and_then(|ws| ws.dag.node(t.function).kind.profile())
                        .map_or(0, |p| p.priority);
                    let key = (u8::from(!demoted), prio, s.started + qos, t);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
                let (demoted_rank, _, _, v) =
                    best.expect("the queue overflowed, so it is non-empty");
                if demoted_rank == 0 {
                    if let Some(degrade) = &mut self.degrade {
                        degrade.note_demoted_shed();
                    }
                }
                self.containers[worker].remove_queued(|t| *t == v);
                self.overload.shed_deadline += 1;
                v
            }
        };
        self.shed_invocation(now, worker, victim.workflow, victim.invocation);
    }

    fn schedule_admissions(&mut self, worker: usize, admissions: Vec<Admission<InstanceToken>>) {
        for adm in admissions {
            self.queue.schedule(
                adm.ready_at,
                Event::InstanceReady {
                    worker,
                    token: adm.token,
                    container: adm.container,
                    cold: adm.start == StartKind::Cold,
                },
            );
        }
    }

    fn on_instance_ready(
        &mut self,
        now: SimTime,
        worker: usize,
        token: InstanceToken,
        container: ContainerId,
        cold: bool,
    ) {
        // Freshness fence: the admission must belong to the current epoch,
        // on a live worker, with its container still admitted, and be the
        // admission crash recovery expects (a crash wipes the pool, so a
        // pre-crash container id can never be busy again — ids are not
        // reused — and `inflight_spawns` names the worker the *current*
        // admission of this token lives on).
        let fresh = self.worker_alive[worker]
            && self.containers[worker].is_busy(container)
            && self.inflight_spawns.get(&token) == Some(&worker)
            && self.epoch_alive(token.workflow, token.invocation, token.epoch);
        if !fresh {
            if self.inflight_spawns.get(&token) == Some(&worker) {
                self.inflight_spawns.remove(&token);
            }
            // A stale admission on a live worker still holds its container
            // (e.g. the invocation restarted or dead-lettered mid-boot).
            if self.worker_alive[worker] && self.containers[worker].is_busy(container) {
                let admissions = self.containers[worker].release(container, now, &mut self.rng);
                self.schedule_admissions(worker, admissions);
                self.track_utilization(now, worker);
                self.reschedule_expiry(now, worker);
            }
            return;
        }
        self.inflight_spawns.remove(&token);
        // FaaStore memory reclamation (§4.3.2): shrink a fresh container's
        // cgroup limit to peak-history + μ. MicroVM sandboxes cannot
        // hot-unplug memory, so they keep the provisioned size.
        if cold && self.config.faastore && self.config.reclamation == ReclamationMode::CgroupLimit {
            if let Some(state) = self.invocations.get(&(token.workflow, token.invocation)) {
                if let NodeKind::Function(profile) = &state.dag.node(token.function).kind {
                    let target = profile.peak_mem_bytes + self.config.mu;
                    if target < profile.provisioned_mem_bytes {
                        let _ = self.containers[worker].set_memory_limit(container, target);
                    }
                }
            }
        }
        let seq = self.next_instance_seq;
        self.next_instance_seq += 1;
        let state = self
            .invocations
            .get_mut(&(token.workflow, token.invocation))
            .expect("fenced above");
        state.instances.insert(
            token,
            InstanceState {
                container,
                worker,
                home: worker,
                pending_inputs: 0,
                retries: 0,
                seq,
                exec_done: false,
                exec_started: now,
            },
        );
        let worker_node = self.config.worker_node(worker as u32);
        self.tracer.record(|| TraceEvent::InstanceStarted {
            workflow: token.workflow,
            invocation: token.invocation,
            function: token.function,
            instance: token.instance,
            worker: worker_node,
            container,
            cold,
            at: now,
        });
        let mut inputs = std::mem::take(&mut self.scratch.inputs);
        let state = self
            .invocations
            .get_mut(&(token.workflow, token.invocation))
            .expect("inserted above");

        // Gather inputs: one transfer per producer that actually ran.
        let parallelism = state.dag.node(token.function).parallelism.max(1);
        inputs.extend(
            state
                .dag
                .data_inputs(token.function)
                .filter(|d| state.completed_nodes.contains(&d.producer))
                .map(|d| {
                    (
                        d.producer,
                        InvState::share(d.bytes, parallelism, token.instance),
                    )
                })
                .filter(|&(_, share)| share > 0),
        );

        if inputs.is_empty() {
            self.scratch.inputs = inputs;
            self.start_exec(now, worker, token);
            return;
        }
        state
            .instances
            .get_mut(&token)
            .expect("inserted above")
            .pending_inputs = inputs.len() as u32;

        let node = self.config.worker_node(worker as u32);
        let mut started_local = false;
        for &(producer, share) in &inputs {
            let key = DataKey::new(token.workflow, token.invocation, producer);
            if self.faastores[worker].read_local(key).is_some() {
                // Local memory read: loopback flow, no NIC consumption.
                self.net.start_flow(
                    node,
                    node,
                    share,
                    FlowTag::Read {
                        token,
                        producer,
                        started: now,
                        remote: false,
                    },
                    now,
                );
                started_local = true;
            } else {
                // Remote read: server-side overhead, then a flow from the
                // storage node (with blackout backoff when the store is
                // down).
                self.schedule_remote_read(now, worker, token, producer, share, now, 0);
            }
        }
        inputs.clear();
        self.scratch.inputs = inputs;
        if started_local {
            // One timer update covers every flow started above.
            self.reschedule_flow_timer(now);
        }
    }

    fn start_exec(&mut self, now: SimTime, worker: usize, token: InstanceToken) {
        let Some(state) = self
            .invocations
            .get_mut(&(token.workflow, token.invocation))
        else {
            return;
        };
        let Some(inst) = state.instances.get_mut(&token) else {
            return;
        };
        inst.exec_started = now;
        let seq = inst.seq;
        let attempt = inst.retries;
        let exec = match &state.dag.node(token.function).kind {
            NodeKind::Function(profile) => profile.sample_exec(&mut self.rng),
            _ => SimDuration::ZERO,
        };
        // A gray slowdown stretches the sampled compute without touching
        // the RNG draw sequence.
        let exec = if self.gray_slowdown[worker] != 1.0 {
            exec.mul_f64(self.gray_slowdown[worker])
        } else {
            exec
        };
        if let Some(h) = self.health.as_mut() {
            h.note_start(worker as u32, now);
        }
        let worker_node = self.config.worker_node(worker as u32);
        self.tracer.record(|| TraceEvent::ExecStarted {
            workflow: token.workflow,
            invocation: token.invocation,
            function: token.function,
            instance: token.instance,
            worker: worker_node,
            attempt,
            at: now,
        });
        self.queue
            .schedule(now + exec, Event::ExecDone { worker, token, seq });
        // Hedged retry: if the first attempt is still computing after the
        // hedge delay, re-dispatch it speculatively to another worker.
        // Retried attempts are never hedged (the container is already
        // warm locally and the failure was transient, not a straggler).
        if let Some(h) = self.config.overload.hedge {
            // Degraded workflows get no hedges: speculative re-dispatch
            // amplifies load exactly when the offender must be contained.
            if attempt == 0
                && self.config.workers > 1
                && !self.hedges.contains_key(&token)
                && !self
                    .degrade
                    .as_mut()
                    .is_some_and(|d| d.suppress_hedge(token.workflow))
            {
                // Adaptive delay: the per-function P² latency quantile once
                // warmed up, the configured fixed delay before that.
                let delay = match h.adaptive {
                    Some(a) => self
                        .hedge_estimators
                        .get(&(token.workflow, token.function))
                        .filter(|e| e.count() >= u64::from(a.warmup))
                        .and_then(|e| e.estimate())
                        .map(SimDuration::from_secs_f64)
                        .unwrap_or(h.delay),
                    None => h.delay,
                };
                self.queue
                    .schedule(now + delay, Event::HedgeFire { worker, token, seq });
            }
        }
    }

    fn on_exec_done(&mut self, now: SimTime, worker: usize, token: InstanceToken, seq: u64) {
        // A stuck executor accepts work but completes nothing: completions
        // inside the window defer to its closing edge (strictly before it,
        // so the re-fired event at the edge proceeds whatever the tie
        // order against `GrayFaultEnd`).
        if let Some(end) = self.gray_stuck_until[worker] {
            if now < end {
                self.health_stats.stuck_deferrals += 1;
                self.queue
                    .schedule(end, Event::ExecDone { worker, token, seq });
                return;
            }
        }
        // Stale-event fence: the instance must still be this admission on
        // this worker (a crash orphans instances; a restart re-admits the
        // same token under a fresh sequence number; an evacuation moves it
        // elsewhere — the old home's late completion is a zombie's).
        let attempt;
        let exec_started;
        {
            let Some(state) = self.invocations.get(&(token.workflow, token.invocation)) else {
                self.on_exec_fenced(now, worker, token);
                return;
            };
            let Some(inst) = state.instances.get(&token) else {
                self.on_exec_fenced(now, worker, token);
                return;
            };
            if inst.worker != worker || inst.seq != seq {
                self.on_exec_fenced(now, worker, token);
                return;
            }
            attempt = inst.retries;
            exec_started = inst.exec_started;
        }
        // Failure injection: a transient execution error re-runs the
        // instance in place (the container is already warm) up to the
        // retry budget, after which at-least-once semantics let it pass —
        // unless the fault plan dead-letters exhausted instances. The
        // short-circuit keeps the RNG draw sequence identical to builds
        // without the trace hook: one draw per completion iff the rate is
        // non-zero. A flaky-exec gray window raises the effective rate for
        // this worker only (and never changes the draw sequence outside
        // its window).
        let rate = if self.gray_flaky[worker] > 0.0 {
            self.config.exec_failure_rate.max(self.gray_flaky[worker])
        } else {
            self.config.exec_failure_rate
        };
        let failed = rate > 0.0 && self.rng.chance(rate);
        let worker_node = self.config.worker_node(worker as u32);
        self.tracer.record(|| TraceEvent::ExecFinished {
            workflow: token.workflow,
            invocation: token.invocation,
            function: token.function,
            instance: token.instance,
            worker: worker_node,
            attempt,
            failed,
            at: now,
        });
        // Sample the completion into the health detector, but apply its
        // transitions only after the completion itself is fully processed:
        // a quarantine drain must never tear state out from under the
        // handler that triggered it.
        let transitions = self
            .health
            .as_mut()
            .map(|h| h.note_complete(worker as u32, now - exec_started, failed, now));
        self.exec_outcome(now, worker, token, failed);
        if let Some(ts) = transitions {
            self.apply_health_transitions(now, ts);
        }
    }

    /// The outcome half of `ExecDone` handling, after the fences and the
    /// failure draw: retry, dead-letter, or proceed to the output write.
    fn exec_outcome(&mut self, now: SimTime, worker: usize, token: InstanceToken, failed: bool) {
        if failed {
            let state = self
                .invocations
                .get_mut(&(token.workflow, token.invocation))
                .expect("fenced above");
            let inst = state.instances.get_mut(&token).expect("fenced above");
            if inst.retries < self.config.max_exec_retries {
                inst.retries += 1;
                self.exec_retries += 1;
                self.start_exec(now, worker, token);
                return;
            }
            if self.config.fault.dead_letter_on_exhaustion {
                self.dead_letter_invocation(
                    now,
                    token.workflow,
                    token.invocation,
                    DeadLetterReason::RetriesExhausted,
                );
                return;
            }
        }
        // Adaptive hedge: sample the successful attempt's compute latency
        // into the per-function quantile estimator. Gated on the config so
        // fixed-delay runs never touch the estimator map.
        if let Some(a) = self.config.overload.hedge.and_then(|h| h.adaptive) {
            if let Some(inst) = self
                .invocations
                .get(&(token.workflow, token.invocation))
                .and_then(|s| s.instances.get(&token))
            {
                let secs = (now - inst.exec_started).as_secs_f64();
                self.hedge_estimators
                    .entry((token.workflow, token.function))
                    .or_insert_with(|| P2Quantile::new(a.quantile))
                    .observe(secs);
            }
        }
        self.exec_success(now, worker, token);
    }

    /// The compute phase of `token` succeeded on `worker`: resolve any
    /// outstanding hedge in the primary's favour and start the output
    /// write. Shared by the normal `ExecDone` path and hedge wins (where
    /// `worker` is the hedge's worker).
    fn exec_success(&mut self, now: SimTime, worker: usize, token: InstanceToken) {
        if let Some(inst) = self
            .invocations
            .get_mut(&(token.workflow, token.invocation))
            .and_then(|s| s.instances.get_mut(&token))
        {
            inst.exec_done = true;
        }
        self.cancel_hedge(now, token);
        let Some(state) = self
            .invocations
            .get_mut(&(token.workflow, token.invocation))
        else {
            return;
        };
        let node = state.dag.node(token.function);
        let total_out = node.kind.profile().map(|p| p.output_bytes).unwrap_or(0);
        let parallelism = node.parallelism.max(1);
        let share = InvState::share(total_out, parallelism, token.instance);
        if share == 0 {
            self.finish_instance(now, worker, token);
            return;
        }
        // Placement decided once per node output (total bytes).
        let placement = match state.placements.get(&token.function) {
            Some(&p) => p,
            None => {
                let storage_type = if state.assignment.storage_local[token.function.index()] {
                    StorageType::Mem
                } else {
                    StorageType::Db
                };
                let producer_node = state.assignment.worker_of(token.function);
                let consumers: Vec<NodeId> = state
                    .dag
                    .data_outputs(token.function)
                    .map(|d| state.assignment.worker_of(d.consumer))
                    .collect();
                let key = DataKey::new(token.workflow, token.invocation, token.function);
                let p = self.faastores[worker].decide_put(
                    key,
                    total_out,
                    storage_type,
                    producer_node,
                    &consumers,
                );
                if p == Placement::Remote {
                    self.remote.put(key, total_out);
                }
                state.placements.insert(token.function, p);
                p
            }
        };
        let node_id = self.config.worker_node(worker as u32);
        match placement {
            Placement::LocalMem => {
                self.net.start_flow(
                    node_id,
                    node_id,
                    share,
                    FlowTag::Write {
                        token,
                        started: now,
                        remote: false,
                    },
                    now,
                );
                self.reschedule_flow_timer(now);
            }
            Placement::Remote => {
                self.schedule_remote_write(now, worker, token, share, now, 0);
            }
        }
    }

    // ==================================================================
    // Hedged retries
    // ==================================================================

    /// The hedge delay elapsed. If the primary attempt is still computing,
    /// speculatively admit a copy on the first other live worker with
    /// immediate capacity (ring order from the primary; no queueing — a
    /// hedge that would wait is pointless).
    fn on_hedge_fire(&mut self, now: SimTime, worker: usize, token: InstanceToken, seq: u64) {
        if self.hedges.contains_key(&token) {
            return;
        }
        let still_running = self
            .invocations
            .get(&(token.workflow, token.invocation))
            .and_then(|s| s.instances.get(&token))
            .is_some_and(|i| i.worker == worker && i.seq == seq && !i.exec_done);
        if !still_running {
            return;
        }
        let n = self.config.workers as usize;
        let mut admitted = None;
        for cand in (worker + 1..n).chain(0..worker) {
            // Quarantined workers take no hedges: a speculative copy on a
            // gray worker is the straggler it was meant to beat.
            if !self.worker_alive[cand] || self.quarantined[cand] {
                continue;
            }
            if let Some(adm) = self.containers[cand].request_immediate(
                (token.workflow, token.function),
                token,
                now,
                &mut self.rng,
            ) {
                admitted = Some((cand, adm));
                break;
            }
        }
        let Some((target, adm)) = admitted else {
            return; // Nobody has spare capacity: the hedge silently lapses.
        };
        let hedge_seq = self.next_instance_seq;
        self.next_instance_seq += 1;
        self.hedges.insert(
            token,
            HedgeState {
                worker: target,
                container: adm.container,
                seq: hedge_seq,
                ready: false,
                cancelled: false,
            },
        );
        self.overload.hedges_launched += 1;
        let from_worker = self.config.worker_node(worker as u32);
        let to_worker = self.config.worker_node(target as u32);
        self.tracer.record(|| TraceEvent::HedgeLaunched {
            workflow: token.workflow,
            invocation: token.invocation,
            function: token.function,
            instance: token.instance,
            from_worker,
            to_worker,
            at: now,
        });
        self.queue.schedule(
            adm.ready_at,
            Event::HedgeReady {
                token,
                seq: hedge_seq,
            },
        );
        self.track_utilization(now, target);
        self.reschedule_expiry(now, target);
    }

    /// A hedge container finished booting: sample its exec (the hedge
    /// reads no inputs — it reuses the primary's already-fetched inputs,
    /// the straggler being the *compute*, not the data).
    fn on_hedge_ready(&mut self, now: SimTime, token: InstanceToken, seq: u64) {
        let Some(h) = self.hedges.get(&token) else {
            return;
        };
        if h.seq != seq {
            return;
        }
        let (hw, hc, cancelled) = (h.worker, h.container, h.cancelled);
        if cancelled {
            // The primary won while we were booting: drop the copy.
            self.hedges.remove(&token);
            self.release_hedge_container(now, hw, hc);
            return;
        }
        let exec = {
            let Some(state) = self.invocations.get(&(token.workflow, token.invocation)) else {
                // Torn down mid-boot (teardown cancels hedges, but be safe).
                self.hedges.remove(&token);
                self.release_hedge_container(now, hw, hc);
                return;
            };
            match &state.dag.node(token.function).kind {
                NodeKind::Function(profile) => profile.sample_exec(&mut self.rng),
                _ => SimDuration::ZERO,
            }
        };
        self.hedges.get_mut(&token).expect("checked above").ready = true;
        self.queue
            .schedule(now + exec, Event::HedgeExecDone { token, seq });
    }

    /// A hedge's compute finished: first-winner semantics. If the primary
    /// already finished, `cancel_hedge` removed this entry and the event is
    /// fenced off; otherwise the hedge takes over the instance and the
    /// primary's pending `ExecDone` dies on the sequence fence.
    fn on_hedge_exec_done(&mut self, now: SimTime, token: InstanceToken, seq: u64) {
        let Some(h) = self.hedges.get(&token) else {
            return;
        };
        if h.seq != seq || !h.ready || h.cancelled {
            return;
        }
        let (hw, hc) = (h.worker, h.container);
        let primary = self
            .invocations
            .get(&(token.workflow, token.invocation))
            .and_then(|s| s.instances.get(&token))
            .filter(|i| !i.exec_done)
            .map(|i| (i.worker, i.container));
        let Some((pw, pc)) = primary else {
            // The instance vanished under us; orphaned hedge, clean up.
            self.hedges.remove(&token);
            self.overload.hedge_losses += 1;
            self.release_hedge_container(now, hw, hc);
            return;
        };
        // Hedges are subject to the same transient-failure injection as any
        // attempt; a failed hedge simply loses (the primary keeps running).
        let failed =
            self.config.exec_failure_rate > 0.0 && self.rng.chance(self.config.exec_failure_rate);
        if failed {
            self.hedges.remove(&token);
            self.overload.hedge_losses += 1;
            self.tracer.record(|| TraceEvent::HedgeResolved {
                workflow: token.workflow,
                invocation: token.invocation,
                function: token.function,
                instance: token.instance,
                winner_is_hedge: false,
                at: now,
            });
            self.release_hedge_container(now, hw, hc);
            return;
        }
        self.hedges.remove(&token);
        self.overload.hedge_wins += 1;
        // Close the primary's exec span before handing the instance over
        // (its own `ExecDone` is about to be fenced off).
        let (attempt, pw_node) = {
            let inst = self
                .invocations
                .get(&(token.workflow, token.invocation))
                .and_then(|s| s.instances.get(&token))
                .expect("checked above");
            (inst.retries, self.config.worker_node(pw as u32))
        };
        self.tracer.record(|| TraceEvent::ExecFinished {
            workflow: token.workflow,
            invocation: token.invocation,
            function: token.function,
            instance: token.instance,
            worker: pw_node,
            attempt,
            failed: false,
            at: now,
        });
        self.tracer.record(|| TraceEvent::HedgeResolved {
            workflow: token.workflow,
            invocation: token.invocation,
            function: token.function,
            instance: token.instance,
            winner_is_hedge: true,
            at: now,
        });
        // Release the losing primary's container and transplant the
        // instance onto the hedge; output writes flow from the hedge's node.
        let admissions = self.containers[pw].release(pc, now, &mut self.rng);
        self.schedule_admissions(pw, admissions);
        self.track_utilization(now, pw);
        self.reschedule_expiry(now, pw);
        {
            let inst = self
                .invocations
                .get_mut(&(token.workflow, token.invocation))
                .and_then(|s| s.instances.get_mut(&token))
                .expect("checked above");
            inst.worker = hw;
            inst.container = hc;
            inst.seq = seq;
        }
        self.exec_success(now, hw, token);
    }

    /// Resolves an outstanding hedge in the primary's favour (or cleans it
    /// up on teardown). A booted hedge releases its container immediately;
    /// one still booting is flagged and `HedgeReady` cleans up.
    fn cancel_hedge(&mut self, now: SimTime, token: InstanceToken) {
        let Some(h) = self.hedges.get_mut(&token) else {
            return;
        };
        if h.cancelled {
            return;
        }
        self.overload.hedge_losses += 1;
        self.tracer.record(|| TraceEvent::HedgeResolved {
            workflow: token.workflow,
            invocation: token.invocation,
            function: token.function,
            instance: token.instance,
            winner_is_hedge: false,
            at: now,
        });
        let h = self.hedges.get_mut(&token).expect("present above");
        if h.ready {
            let (hw, hc) = (h.worker, h.container);
            self.hedges.remove(&token);
            self.release_hedge_container(now, hw, hc);
        } else {
            h.cancelled = true;
        }
    }

    /// Releases a hedge's container if its worker is still alive and the
    /// container still admitted (a crash wipes the pool wholesale).
    fn release_hedge_container(&mut self, now: SimTime, worker: usize, container: ContainerId) {
        if self.worker_alive[worker] && self.containers[worker].is_busy(container) {
            let admissions = self.containers[worker].release(container, now, &mut self.rng);
            self.schedule_admissions(worker, admissions);
            self.track_utilization(now, worker);
            self.reschedule_expiry(now, worker);
        }
    }

    fn on_flow_done(&mut self, now: SimTime, tag: FlowTag) {
        // Asymmetric partition: the network delivered the flow, but the
        // blocked direction drops the payload at the edge — it stalls
        // until the window lifts, while control traffic keeps flowing
        // (that asymmetry is what makes the failure gray).
        if self.gray_partitions_active > 0 {
            if let Some(w) = self.gray_partition_blocks(&tag) {
                self.health_stats.stalled_flows += 1;
                self.gray_stalled.push((w, tag));
                return;
            }
        }
        match tag {
            FlowTag::Read {
                token,
                producer,
                started,
                remote,
            } => {
                let latency = now - started;
                let share;
                let worker;
                let last_input;
                {
                    let Some(state) = self
                        .invocations
                        .get_mut(&(token.workflow, token.invocation))
                    else {
                        return;
                    };
                    let parallelism = state.dag.node(token.function).parallelism.max(1);
                    let total = state
                        .dag
                        .data_inputs(token.function)
                        .find(|d| d.producer == producer)
                        .map(|d| d.bytes)
                        .unwrap_or(0);
                    share = InvState::share(total, parallelism, token.instance);
                    state.ledger.total_latency += latency;
                    if remote {
                        state.ledger.remote_bytes += share;
                    } else {
                        state.ledger.local_bytes += share;
                    }
                    let Some(inst) = state.instances.get_mut(&token) else {
                        return;
                    };
                    worker = inst.worker;
                    inst.pending_inputs -= 1;
                    last_input = inst.pending_inputs == 0;
                }
                self.record_edge_feedback(token.workflow, producer, latency);
                // One event per completed input flow (the span model needs
                // each read's own `[started, now]` window).
                let worker_node = self.config.worker_node(worker as u32);
                self.tracer.record(|| TraceEvent::Transferred {
                    workflow: token.workflow,
                    invocation: token.invocation,
                    function: token.function,
                    instance: token.instance,
                    worker: worker_node,
                    bytes: share,
                    remote,
                    read: true,
                    started,
                    at: now,
                });
                if last_input {
                    self.start_exec(now, worker, token);
                }
            }
            FlowTag::Write {
                token,
                started,
                remote,
            } => {
                let latency = now - started;
                let share;
                let worker;
                {
                    let Some(state) = self
                        .invocations
                        .get_mut(&(token.workflow, token.invocation))
                    else {
                        return;
                    };
                    let parallelism = state.dag.node(token.function).parallelism.max(1);
                    let total = state
                        .dag
                        .node(token.function)
                        .kind
                        .profile()
                        .map(|p| p.output_bytes)
                        .unwrap_or(0);
                    share = InvState::share(total, parallelism, token.instance);
                    state.ledger.total_latency += latency;
                    if remote {
                        state.ledger.remote_bytes += share;
                    } else {
                        state.ledger.local_bytes += share;
                    }
                    let Some(inst) = state.instances.get(&token) else {
                        return;
                    };
                    worker = inst.worker;
                }
                let worker_node = self.config.worker_node(worker as u32);
                self.tracer.record(|| TraceEvent::Transferred {
                    workflow: token.workflow,
                    invocation: token.invocation,
                    function: token.function,
                    instance: token.instance,
                    worker: worker_node,
                    bytes: share,
                    remote,
                    read: false,
                    started,
                    at: now,
                });
                self.finish_instance(now, worker, token);
            }
        }
    }

    fn record_edge_feedback(&mut self, wf: WorkflowId, producer: FunctionId, latency: SimDuration) {
        let Some(ws) = self.workflows.get_mut(&wf) else {
            return;
        };
        // Split borrow: read the DAG while mutating the collector.
        let (dag, feedback) = (&ws.dag, &mut ws.feedback);
        for e in dag.edges().iter().filter(|e| e.from == producer) {
            feedback.observe_edge(e.id, latency);
        }
    }

    fn finish_instance(&mut self, now: SimTime, worker: usize, token: InstanceToken) {
        // Release the container.
        let (container, home) = {
            let Some(state) = self
                .invocations
                .get_mut(&(token.workflow, token.invocation))
            else {
                return;
            };
            let inst = state
                .instances
                .remove(&token)
                .expect("instance finishes once");
            // Track node completion on the core side.
            let remaining = state
                .instances_remaining
                .get_mut(&token.function)
                .expect("spawned node tracked");
            *remaining -= 1;
            let node_done = *remaining == 0;
            if node_done {
                state.completed_nodes.insert(token.function);
            }
            if node_done {
                self.tracer.record(|| TraceEvent::NodeCompleted {
                    workflow: token.workflow,
                    invocation: token.invocation,
                    function: token.function,
                    at: now,
                });
            }
            (inst.container, inst.home)
        };
        let admissions = self.containers[worker].release(container, now, &mut self.rng);
        self.schedule_admissions(worker, admissions);
        self.track_utilization(now, worker);
        self.reschedule_expiry(now, worker);

        match self.config.mode {
            ScheduleMode::WorkerSp => {
                // The engine tracking this node's state is the one that
                // triggered the instance (its `home`). Normally that is
                // `worker`, but a hedge win runs the instance elsewhere —
                // the completion must travel back to the home engine
                // (paying a LAN hop), or it would wait for the node forever.
                let mut delay = self.config.worker_engine_cost;
                if home != worker {
                    let src = self.config.worker_node(worker as u32);
                    let dst = self.config.worker_node(home as u32);
                    delay += self.control_delay(512, src, dst);
                }
                self.queue.schedule(
                    now + delay,
                    Event::WorkerInstanceDone {
                        worker: home,
                        token,
                        gen: self.worker_engine_gen[home],
                    },
                );
            }
            ScheduleMode::MasterSp => {
                let src = self.config.worker_node(worker as u32);
                let delay = self.control_delay(512, src, ClusterConfig::MASTER_NODE);
                self.queue.schedule(
                    now + delay,
                    Event::MasterArrive {
                        msg: MasterInbox::StateReturn {
                            wf: token.workflow,
                            inv: token.invocation,
                            function: token.function,
                        },
                        gen: self.master_engine_gen,
                    },
                );
            }
        }
    }

    // ==================================================================
    // Fault injection & recovery
    // ==================================================================

    /// A worker node dies: its bulk transfers are torn down, its warm pool,
    /// queued admissions and MemStore contents vanish, and (under WorkerSP)
    /// its engine process dies with it. Nothing is *recovered* here —
    /// detection waits for the lease to expire, like a real failure
    /// detector.
    fn on_worker_crash(&mut self, now: SimTime, idx: usize) {
        let crash = self.config.fault.node_crashes[idx];
        let w = crash.worker as usize;
        if !self.worker_alive[w] {
            return; // overlapping crash windows collapse into one
        }
        self.faults.worker_crashes += 1;
        self.worker_alive[w] = false;
        let node = self.config.worker_node(w as u32);
        self.tracer.record(|| TraceEvent::WorkerCrashed {
            worker: node,
            at: now,
        });
        // Kill every bulk transfer touching the node.
        let mut doomed = std::mem::take(&mut self.scratch.flow_ids);
        doomed.extend(
            self.net
                .iter()
                .filter(|(_, f)| f.src == node || f.dst == node)
                .map(|(id, _)| id),
        );
        doomed.sort_unstable();
        for &id in &doomed {
            if self.net.cancel_flow(id, now).is_some() {
                self.faults.flows_killed += 1;
            }
        }
        doomed.clear();
        self.scratch.flow_ids = doomed;
        self.reschedule_flow_timer(now);
        // Warm pool, queued admissions and resource gauges vanish.
        let _ = self.containers[w].crash();
        if let Some(ev) = self.expiry_timers[w].take() {
            self.queue.cancel(ev);
        }
        self.track_utilization(now, w);
        // In-memory store contents are gone with the node.
        let _ = self.faastores[w].crash();
        // WorkerSP: the engine process dies too. Node-crash recovery is the
        // partition-level path (lease expiry → redeploy → epoch-bump
        // restarts), not journal replay — but in-flight journal appends
        // from the dying engine are torn, and if an injected engine crash
        // already had the engine down, its pending restart chain is now
        // moot: bump the era to fence it (the node restart, if any, brings
        // the engine back).
        if self.config.mode == ScheduleMode::WorkerSp {
            self.worker_engines[w] = WorkerEngine::new(node);
            self.reinstall_worker_engine(w);
            let _torn = self.worker_journals[w].crash(now);
            if self.worker_engine_down[w] {
                self.worker_engine_era[w] += 1;
            }
        }
        // Orphan every instance the node was running, booting, or queueing.
        let mut orphaned = std::mem::take(&mut self.scratch.tokens);
        orphaned.extend(
            self.inflight_spawns
                .iter()
                .filter(|&(_, &ow)| ow == w)
                .map(|(&t, _)| t),
        );
        self.inflight_spawns.retain(|_, &mut ow| ow != w);
        // Map-iteration order is arbitrary; the sort+dedup below restores
        // determinism before anything observable consumes the tokens.
        for state in self.invocations.values_mut() {
            state.instances.retain(|&t, i| {
                if i.worker == w {
                    orphaned.push(t);
                    false
                } else {
                    true
                }
            });
        }
        orphaned.sort_unstable();
        orphaned.dedup();
        // Hedges die with the node too: speculative copies running *on* the
        // dead worker vanish with its pool; hedges whose primary died are
        // dropped (the orphaned primary restarts or recovers on its own).
        let mut hedge_tokens = std::mem::take(&mut self.scratch.hedge_tokens);
        hedge_tokens.extend(
            self.hedges
                .iter()
                .filter(|&(_, h)| h.worker == w)
                .map(|(&t, _)| t),
        );
        hedge_tokens.sort_unstable();
        for &t in &hedge_tokens {
            let h = self.hedges.remove(&t).expect("collected above");
            if !h.cancelled {
                self.overload.hedge_losses += 1;
                self.tracer.record(|| TraceEvent::HedgeResolved {
                    workflow: t.workflow,
                    invocation: t.invocation,
                    function: t.function,
                    instance: t.instance,
                    winner_is_hedge: false,
                    at: now,
                });
            }
        }
        hedge_tokens.clear();
        hedge_tokens.extend_from_slice(&orphaned);
        for &t in &hedge_tokens {
            self.cancel_hedge(now, t);
        }
        hedge_tokens.clear();
        self.scratch.hedge_tokens = hedge_tokens;
        self.orphans[w].append(&mut orphaned);
        self.scratch.tokens = orphaned;
        // A fail-stop crash supersedes any gray suspicion: the corpse is
        // not a zombie (its fenced events are ordinary crash cleanup), and
        // the differential detector hands the worker to the lease path.
        self.gray_zombie[w] = false;
        self.quarantined[w] = false;
        if let Some(h) = self.health.as_mut() {
            h.on_worker_crash(w as u32);
        }
        // Heartbeats stop now; the lease expires after the detection delay
        // (plus this worker's deterministic phase offset when heartbeat
        // staggering is on).
        self.queue.schedule(
            now + self.config.fault.lease_delay(w as u32),
            Event::LeaseExpired { worker: w },
        );
        if let Some(after) = crash.restart_after {
            self.queue
                .schedule(now + after, Event::WorkerRestart { worker: w });
        }
    }

    /// A crashed worker comes back cold: empty pools, empty MemStore, blank
    /// engine. Under WorkerSP the survivors' partitions are recomputed to
    /// fold it back in.
    fn on_worker_restart(&mut self, now: SimTime, w: usize) {
        if self.worker_alive[w] {
            return;
        }
        self.faults.worker_restarts += 1;
        self.worker_alive[w] = true;
        self.worker_detected_down[w] = false;
        self.worker_up_since[w] = now;
        let node = self.config.worker_node(w as u32);
        self.tracer.record(|| TraceEvent::WorkerRestarted {
            worker: node,
            at: now,
        });
        if self.config.mode == ScheduleMode::WorkerSp {
            if self.config.placement_config.enabled {
                // Incremental fold-in: re-place only the workflows squeezed
                // onto the most-crowded survivor; load-aware scoring pulls
                // them toward the idle reborn worker.
                if let Some((hot, _, _)) = self.most_loaded_worker() {
                    let hot_node = self.config.worker_node(hot as u32);
                    let moved = self.rebalance_workflows_on(hot_node);
                    if moved > 0 {
                        self.placement.recovery_rebalances += 1;
                        self.placement.rebalanced_workflows += moved;
                        self.tracer.record(|| TraceEvent::PlacementRebalanced {
                            worker: hot_node,
                            workflows: moved,
                            recovery: true,
                            at: now,
                        });
                    }
                }
            } else {
                self.redeploy_all();
            }
            // The node restart brings the engine process back with it.
            if self.worker_engine_down[w] {
                self.worker_engine_down[w] = false;
                self.worker_engine_gen[w] += 1;
                self.worker_engine_era[w] += 1;
                self.worker_journal_unreadable[w] = false;
                self.recovery.engine_recoveries += 1;
                self.recovery.engine_downtime_secs +=
                    (now - self.worker_down_since[w]).as_secs_f64();
            }
        }
        // MasterSP: assignments that arrived while the node was dead but
        // undetected replay locally on the reborn node.
        let spooled = std::mem::take(&mut self.spooled_assigns[w]);
        for (wf, inv, function) in spooled {
            if self.invocation_alive(wf, inv) {
                self.spawn_instances(now, w, wf, inv, function);
            }
        }
    }

    /// The failure detector declares the worker down and recovery begins.
    /// MasterSP re-dispatches the orphaned calls centrally; WorkerSP
    /// re-partitions onto the survivors and restarts impacted invocations
    /// there.
    fn on_lease_expired(&mut self, now: SimTime, w: usize) {
        self.faults.lease_expiries += 1;
        let node = self.config.worker_node(w as u32);
        self.tracer.record(|| TraceEvent::LeaseExpired {
            worker: node,
            at: now,
        });
        if !self.worker_alive[w] {
            self.worker_detected_down[w] = true;
        }
        // False suspicion: a force-expired lease on a live worker behind an
        // asymmetric partition. The master cannot tell a zombie from a
        // corpse, so it recovers as if the node died; the zombie's late
        // completions die on the fences.
        let suspected = self.worker_alive[w] && self.gray_zombie[w];
        match self.config.mode {
            ScheduleMode::MasterSp => {
                if suspected {
                    self.evacuate_worker(now, w, DeadLetterReason::CrashOrphan);
                } else {
                    self.recover_master_orphans(now, w);
                }
            }
            ScheduleMode::WorkerSp => self.recover_worker_partition(now, w, suspected),
        }
    }

    /// MasterSP crash recovery: the central engine re-dispatches every
    /// instance the dead worker owed to a surviving worker, reading inputs
    /// back from the remote store (the baseline always writes through it).
    fn recover_master_orphans(&mut self, now: SimTime, w: usize) {
        let mut orphans = std::mem::take(&mut self.orphans[w]);
        orphans.sort_unstable();
        orphans.dedup();
        // Bump per-invocation recovery budgets; exhausted ones dead-letter.
        let mut invs = std::mem::take(&mut self.scratch.inv_keys);
        invs.extend(orphans.iter().map(|t| (t.workflow, t.invocation)));
        invs.sort_unstable();
        invs.dedup();
        for &(wf, inv) in &invs {
            let Some(state) = self.invocations.get_mut(&(wf, inv)) else {
                continue;
            };
            if state.completed {
                continue;
            }
            state.recovery_attempts += 1;
            if state.recovery_attempts > self.config.fault.max_recovery_attempts {
                self.dead_letter_invocation(now, wf, inv, DeadLetterReason::RetriesExhausted);
            }
        }
        invs.clear();
        self.scratch.inv_keys = invs;
        for &token in &orphans {
            let Some(state) = self.invocations.get(&(token.workflow, token.invocation)) else {
                continue;
            };
            if state.completed
                || state.epoch != token.epoch
                || state.completed_nodes.contains(&token.function)
                || state.instances.contains_key(&token)
            {
                continue;
            }
            let Some(target) = self.pick_alive_worker(w) else {
                self.dead_letter_invocation(
                    now,
                    token.workflow,
                    token.invocation,
                    DeadLetterReason::CrashOrphan,
                );
                continue;
            };
            self.faults.crash_redispatches += 1;
            self.request_instance(now, target, token);
        }
        // Hand the (now empty) buffer's capacity back for the next crash.
        orphans.clear();
        self.orphans[w] = orphans;
        // Assignments that sailed into the void replay on survivors.
        let spooled = std::mem::take(&mut self.spooled_assigns[w]);
        for (wf, inv, function) in spooled {
            if !self.invocation_alive(wf, inv) {
                continue;
            }
            let Some(target) = self.pick_alive_worker(w) else {
                self.dead_letter_invocation(now, wf, inv, DeadLetterReason::CrashOrphan);
                continue;
            };
            self.faults.crash_redispatches += 1;
            self.spawn_instances(now, target, wf, inv, function);
        }
    }

    /// WorkerSP crash recovery: engines route by their installed
    /// assignment, so failover is a real redeploy — re-partition every
    /// workflow over the surviving workers, then restart each invocation
    /// that had incomplete work pinned to state the dead node lost.
    fn recover_worker_partition(&mut self, now: SimTime, w: usize, force: bool) {
        // Token-level orphans are superseded by invocation-level restarts.
        self.orphans[w].clear();
        let node = self.config.worker_node(w as u32);
        let mut impacted = std::mem::take(&mut self.scratch.inv_keys);
        for (&key, state) in &self.invocations {
            if state.completed {
                continue;
            }
            // A restarted worker kept nothing for invocations begun before
            // it came back; a still-dead worker kept nothing at all. A
            // false suspicion (`force`) distrusts the node wholesale even
            // though it is alive — everything pinned there restarts.
            let lost_state =
                force || !self.worker_alive[w] || state.started < self.worker_up_since[w];
            if !lost_state {
                continue;
            }
            let touches = state.dag.nodes().iter().any(|n| {
                !state.completed_nodes.contains(&n.id) && state.assignment.worker_of(n.id) == node
            });
            if touches {
                impacted.push(key);
            }
        }
        impacted.sort_unstable();
        if self.config.placement_config.enabled {
            // Incremental recovery: only workflows with a group on the dead
            // node need new placements; everyone else keeps their (still
            // valid) deployment instead of churning through a full sweep.
            let moved = self.rebalance_workflows_on(node);
            if moved > 0 {
                self.placement.recovery_rebalances += 1;
                self.placement.rebalanced_workflows += moved;
                self.tracer.record(|| TraceEvent::PlacementRebalanced {
                    worker: node,
                    workflows: moved,
                    recovery: true,
                    at: now,
                });
            }
        } else {
            self.redeploy_all();
        }
        for &(wf, inv) in &impacted {
            self.restart_invocation(now, wf, inv);
        }
        impacted.clear();
        self.scratch.inv_keys = impacted;
    }

    /// Recomputes every workflow's partition over the currently-alive
    /// workers. A workflow the survivors cannot fit keeps its previous
    /// deployment (counted in `repartition_failures`).
    fn redeploy_all(&mut self) {
        let mut wfs = std::mem::take(&mut self.scratch.wf_ids);
        wfs.extend(self.workflows.keys().copied());
        wfs.sort_unstable();
        for &wf in &wfs {
            let mut state = self.workflows.remove(&wf).expect("workflow exists");
            let result = self.partition_and_deploy(wf, &mut state);
            self.workflows.insert(wf, state);
            if result.is_err() {
                self.repartition_failures += 1;
            }
        }
        wfs.clear();
        self.scratch.wf_ids = wfs;
    }

    // ==================================================================
    // Engine crash injection & journaled recovery
    // ==================================================================

    /// Write-ahead append to the gateway/master journal, exposed to the
    /// remote store's fault state: a blackout loses the append outright, a
    /// brownout stretches its time-to-durable.
    fn journal_append_master(&mut self, now: SimTime, rec: JournalRecord) {
        if !self.master_journal.enabled() {
            return;
        }
        if self.storage_down {
            self.master_journal.append_lost();
        } else {
            self.master_journal.append(now, self.storage_slowdown, rec);
        }
    }

    /// Write-ahead append to one worker engine's journal (WorkerSP).
    fn journal_append_worker(&mut self, now: SimTime, w: usize, rec: JournalRecord) {
        if !self.worker_journals[w].enabled() {
            return;
        }
        if self.storage_down {
            self.worker_journals[w].append_lost();
        } else {
            self.worker_journals[w].append(now, self.storage_slowdown, rec);
        }
    }

    /// Re-registers every workflow's current deployment on a freshly wiped
    /// central engine. Workflow contexts are control-plane config (re-read
    /// at boot); only the per-invocation trigger trackers are volatile.
    fn reinstall_master_engine(&mut self) {
        let mut wfs: Vec<WorkflowId> = self.workflows.keys().copied().collect();
        wfs.sort_unstable();
        for wf in wfs {
            let ws = &self.workflows[&wf];
            let Some((version, _)) = ws.deployment.current() else {
                continue;
            };
            let assignment = ws
                .deployment
                .assignment_arc(version)
                .expect("current version has an assignment");
            let dag = ws.dag_arc.clone();
            let seed = ws.arm_seed;
            self.master_engine.install(wf, dag, assignment, seed);
        }
    }

    /// Worker-engine counterpart of [`Self::reinstall_master_engine`].
    fn reinstall_worker_engine(&mut self, w: usize) {
        let mut wfs: Vec<WorkflowId> = self.workflows.keys().copied().collect();
        wfs.sort_unstable();
        for wf in wfs {
            let ws = &self.workflows[&wf];
            let Some((version, _)) = ws.deployment.current() else {
                continue;
            };
            let assignment = ws
                .deployment
                .assignment_arc(version)
                .expect("current version has an assignment");
            let dag = ws.dag_arc.clone();
            let seed = ws.arm_seed;
            self.worker_engines[w].install(wf, dag, assignment, seed);
        }
    }

    /// Fault plan: a scheduling engine process dies. Volatile state — the
    /// trigger trackers, and for the master its inbox and in-service task —
    /// vanishes; in-flight journal appends that never became durable are
    /// torn. The node itself stays up: executing containers keep running
    /// and their completions keep updating cluster-side ground truth (they
    /// just can't reach the dead engine).
    fn on_engine_crash(&mut self, now: SimTime, idx: usize) {
        let crash = self.config.fault.engine_crashes[idx];
        match crash.target {
            EngineTarget::Master => {
                if self.master_engine_down {
                    return; // overlapping outages collapse into one
                }
                self.recovery.engine_crashes += 1;
                self.recovery.master_engine_crashes += 1;
                self.master_engine_down = true;
                self.master_down_since = now;
                self.master_engine_era += 1;
                let era = self.master_engine_era;
                self.master_inbox.clear();
                self.master_current = None;
                self.master_engine = MasterEngine::new();
                self.reinstall_master_engine();
                let _torn = self.master_journal.crash(now);
                self.tracer.record(|| TraceEvent::EngineCrashed {
                    worker: None,
                    at: now,
                });
                self.queue.schedule(
                    now + crash.restart_after,
                    Event::EngineRestart {
                        target: None,
                        attempt: 0,
                        era,
                    },
                );
            }
            EngineTarget::Worker(w) => {
                let w = w as usize;
                if self.worker_engine_down[w] || !self.worker_alive[w] {
                    return; // already down, or the whole node is dead
                }
                self.recovery.engine_crashes += 1;
                self.recovery.worker_engine_crashes += 1;
                self.worker_engine_down[w] = true;
                self.worker_down_since[w] = now;
                self.worker_engine_era[w] += 1;
                let era = self.worker_engine_era[w];
                let node = self.config.worker_node(w as u32);
                self.worker_engines[w] = WorkerEngine::new(node);
                self.reinstall_worker_engine(w);
                let _torn = self.worker_journals[w].crash(now);
                self.tracer.record(|| TraceEvent::EngineCrashed {
                    worker: Some(node),
                    at: now,
                });
                self.queue.schedule(
                    now + crash.restart_after,
                    Event::EngineRestart {
                        target: Some(w),
                        attempt: 0,
                        era,
                    },
                );
            }
        }
    }

    /// The crashed engine process comes back up and tries to read its
    /// journal. A blacked-out journal store pushes the replay into backoff
    /// (bounded by the plan's retry budget, after which the engine boots
    /// journal-blind); otherwise replay costs time proportional to the
    /// durable log. `era` fences chains orphaned by a second crash.
    fn on_engine_restart(&mut self, now: SimTime, target: Option<usize>, attempt: u32, era: u32) {
        match target {
            None => {
                if !self.master_engine_down || era != self.master_engine_era {
                    return;
                }
                if self.master_journal.enabled() && self.storage_down {
                    if attempt >= self.config.fault.backoff.max_attempts {
                        self.master_journal_unreadable = true;
                    } else {
                        self.recovery.replay_backoffs += 1;
                        let delay = self.config.fault.backoff.delay(attempt, &mut self.rng);
                        self.queue.schedule(
                            now + delay,
                            Event::EngineRestart {
                                target,
                                attempt: attempt + 1,
                                era,
                            },
                        );
                        return;
                    }
                }
                let cost = if self.master_journal.enabled() && !self.master_journal_unreadable {
                    self.master_journal.begin_replay(self.storage_slowdown)
                } else {
                    SimDuration::ZERO
                };
                self.queue
                    .schedule(now + cost, Event::EngineRecovered { target, era });
            }
            Some(w) => {
                if !self.worker_engine_down[w]
                    || era != self.worker_engine_era[w]
                    || !self.worker_alive[w]
                {
                    return;
                }
                if self.worker_journals[w].enabled() && self.storage_down {
                    if attempt >= self.config.fault.backoff.max_attempts {
                        self.worker_journal_unreadable[w] = true;
                    } else {
                        self.recovery.replay_backoffs += 1;
                        let delay = self.config.fault.backoff.delay(attempt, &mut self.rng);
                        self.queue.schedule(
                            now + delay,
                            Event::EngineRestart {
                                target,
                                attempt: attempt + 1,
                                era,
                            },
                        );
                        return;
                    }
                }
                let cost =
                    if self.worker_journals[w].enabled() && !self.worker_journal_unreadable[w] {
                        self.worker_journals[w].begin_replay(self.storage_slowdown)
                    } else {
                        SimDuration::ZERO
                    };
                self.queue
                    .schedule(now + cost, Event::EngineRecovered { target, era });
            }
        }
    }

    /// Replay finished: the engine rejoins under a bumped generation (so
    /// completion messages sent to the previous incarnation are fenced) and
    /// reconciles every live invocation.
    fn on_engine_recovered(&mut self, now: SimTime, target: Option<usize>, era: u32) {
        match target {
            None => {
                if !self.master_engine_down || era != self.master_engine_era {
                    return;
                }
                self.master_engine_down = false;
                self.master_engine_gen += 1;
                self.recovery.engine_recoveries += 1;
                self.recovery.engine_downtime_secs += (now - self.master_down_since).as_secs_f64();
                let replayed = if self.master_journal.enabled() && !self.master_journal_unreadable {
                    self.master_journal.durable_len() as u64
                } else {
                    0
                };
                self.tracer.record(|| TraceEvent::EngineRecovered {
                    worker: None,
                    replayed,
                    at: now,
                });
                self.recover_master_engine(now);
                self.master_journal_unreadable = false;
            }
            Some(w) => {
                if !self.worker_engine_down[w]
                    || era != self.worker_engine_era[w]
                    || !self.worker_alive[w]
                {
                    return;
                }
                self.worker_engine_down[w] = false;
                self.worker_engine_gen[w] += 1;
                self.recovery.engine_recoveries += 1;
                self.recovery.engine_downtime_secs +=
                    (now - self.worker_down_since[w]).as_secs_f64();
                let node = self.config.worker_node(w as u32);
                let replayed =
                    if self.worker_journals[w].enabled() && !self.worker_journal_unreadable[w] {
                        self.worker_journals[w].durable_len() as u64
                    } else {
                        0
                    };
                self.tracer.record(|| TraceEvent::EngineRecovered {
                    worker: Some(node),
                    replayed,
                    at: now,
                });
                self.recover_worker_engine(now, w);
                self.worker_journal_unreadable[w] = false;
            }
        }
    }

    /// Post-recovery reconciliation for the central engine. For each live
    /// invocation: if neither cluster-visible progress nor a durable
    /// journal record witnesses it, its `Begin` died in the volatile inbox
    /// — dead-letter it (exactly one terminal outcome). Otherwise rebuild
    /// the trigger tracker from worker-reported ground truth
    /// (`completed_nodes` / `instances_remaining` already reflect every
    /// completion, including those whose report messages are still in
    /// flight and will be generation-fenced) and re-issue dispatches; the
    /// receiver-side `dispatched` / `reported_exits` sets suppress
    /// anything that already landed, so nothing runs or counts twice.
    fn recover_master_engine(&mut self, now: SimTime) {
        let mut keys: Vec<(WorkflowId, InvocationId)> = self.invocations.keys().copied().collect();
        keys.sort_unstable();
        let journal_on = self.master_journal.enabled();
        let readable = journal_on && !self.master_journal_unreadable;
        for (wf, inv) in keys {
            let Some(state) = self.invocations.get(&(wf, inv)) else {
                continue;
            };
            if state.completed {
                continue;
            }
            let progress = !state.instances.is_empty()
                || !state.completed_nodes.is_empty()
                || !state.instances_remaining.is_empty()
                || !state.dispatched.is_empty();
            let mentioned = readable && self.master_journal.mentions(wf, inv);
            if !progress && !mentioned {
                let reason = if journal_on && self.master_journal_unreadable {
                    DeadLetterReason::JournalUnrecoverable
                } else {
                    DeadLetterReason::CrashOrphan
                };
                self.dead_letter_invocation(now, wf, inv, reason);
                continue;
            }
            let state = &self.invocations[&(wf, inv)];
            let mut completed: Vec<FunctionId> = state.completed_nodes.iter().copied().collect();
            completed.sort_unstable();
            let mut inflight: Vec<(FunctionId, u32)> = Vec::new();
            for (&f, &remaining) in &state.instances_remaining {
                if remaining > 0 && !state.completed_nodes.contains(&f) {
                    let parallelism = state.dag.node(f).parallelism.max(1);
                    inflight.push((f, parallelism - remaining));
                }
            }
            inflight.sort_unstable();
            let already_propagated: Vec<FunctionId> = completed
                .iter()
                .copied()
                .filter(|&f| readable && self.master_journal.node_done_recorded(wf, inv, f))
                .collect();
            let actions = self.master_engine.replay_invocation(
                wf,
                inv,
                &completed,
                &already_propagated,
                &inflight,
            );
            self.apply_master_actions(now, actions);
        }
    }

    /// Post-recovery reconciliation for one worker engine (WorkerSP). Only
    /// invocations whose pinned assignment routes work to this worker are
    /// considered, and the no-evidence dead-letter applies only when this
    /// worker hosts an entry node — a begun-elsewhere invocation with its
    /// `Begin` still in flight to a healthy peer must not be killed by an
    /// uninvolved engine's sweep.
    fn recover_worker_engine(&mut self, now: SimTime, w: usize) {
        let node = self.config.worker_node(w as u32);
        let journal_on = self.worker_journals[w].enabled();
        let readable = journal_on && !self.worker_journal_unreadable[w];
        let mut keys: Vec<(WorkflowId, InvocationId)> = self.invocations.keys().copied().collect();
        keys.sort_unstable();
        for (wf, inv) in keys {
            let Some(state) = self.invocations.get(&(wf, inv)) else {
                continue;
            };
            // Route by the *installed* deployment, not the invocation's
            // pinned assignment: the replaying engine was reinstalled with
            // the current version, and its replay actions follow it — a
            // sweep judging involvement by a stale pin would skip (or
            // kill) invocations the engine actually schedules.
            let Some((_, assignment)) = self
                .workflows
                .get(&wf)
                .and_then(|ws| ws.deployment.current())
            else {
                continue;
            };
            if state.completed || !assignment.involves(node) {
                continue;
            }
            let progress = !state.instances.is_empty()
                || !state.completed_nodes.is_empty()
                || !state.instances_remaining.is_empty()
                || !state.dispatched.is_empty();
            let mentioned = readable && self.worker_journals[w].mentions(wf, inv);
            if !progress && !mentioned {
                let hosts_entry = state
                    .dag
                    .entry_nodes()
                    .iter()
                    .any(|&e| assignment.worker_of(e) == node);
                if hosts_entry {
                    let reason = if journal_on && self.worker_journal_unreadable[w] {
                        DeadLetterReason::JournalUnrecoverable
                    } else {
                        DeadLetterReason::CrashOrphan
                    };
                    self.dead_letter_invocation(now, wf, inv, reason);
                }
                continue;
            }
            let state = &self.invocations[&(wf, inv)];
            let assignment = self
                .workflows
                .get(&wf)
                .and_then(|ws| ws.deployment.current())
                .expect("checked above")
                .1;
            let mut completed: Vec<FunctionId> = state.completed_nodes.iter().copied().collect();
            completed.sort_unstable();
            let mut inflight: Vec<(FunctionId, u32)> = Vec::new();
            for (&f, &remaining) in &state.instances_remaining {
                if remaining > 0
                    && !state.completed_nodes.contains(&f)
                    && assignment.worker_of(f) == node
                {
                    let parallelism = state.dag.node(f).parallelism.max(1);
                    inflight.push((f, parallelism - remaining));
                }
            }
            inflight.sort_unstable();
            let already_propagated: Vec<FunctionId> = completed
                .iter()
                .copied()
                .filter(|&f| readable && self.worker_journals[w].node_done_recorded(wf, inv, f))
                .collect();
            let actions = self.worker_engines[w].replay_invocation(
                wf,
                inv,
                &completed,
                &already_propagated,
                &inflight,
            );
            self.apply_worker_actions(now, w, actions);
        }
    }

    /// Restarts one invocation from its entry nodes under a bumped epoch:
    /// all partial state (instances, flows, placements, store objects) is
    /// torn down and the invocation re-pins to the current deployment. The
    /// original arrival instant is kept, so the measured latency includes
    /// the outage — faults cost latency, not accounting.
    fn restart_invocation(&mut self, now: SimTime, wf: WorkflowId, inv: InvocationId) {
        self.restart_invocation_as(now, wf, inv, DeadLetterReason::RetriesExhausted);
    }

    /// [`Self::restart_invocation`] with an explicit dead-letter reason
    /// for the budget-exhausted case (a quarantine drain accounts its
    /// casualties as quarantine orphans, not generic retry exhaustion).
    fn restart_invocation_as(
        &mut self,
        now: SimTime,
        wf: WorkflowId,
        inv: InvocationId,
        exhausted: DeadLetterReason,
    ) {
        let Some(state) = self.invocations.get_mut(&(wf, inv)) else {
            return;
        };
        if state.completed {
            return;
        }
        state.recovery_attempts += 1;
        if state.recovery_attempts > self.config.fault.max_recovery_attempts {
            self.dead_letter_invocation(now, wf, inv, exhausted);
            return;
        }
        state.epoch += 1;
        let epoch = state.epoch;
        self.tracer.record(|| TraceEvent::InvocationRestarted {
            workflow: wf,
            invocation: inv,
            epoch,
            at: now,
        });
        self.cancel_invocation_flows(now, wf, inv);
        let mut stale = std::mem::take(&mut self.scratch.stale);
        let state = self.invocations.get_mut(&(wf, inv)).expect("checked above");
        stale.extend(state.instances.drain());
        stale.sort_unstable_by_key(|&(t, _)| t);
        state.instances_remaining.clear();
        state.completed_nodes.clear();
        state.placements.clear();
        state.dispatched.clear();
        state.reported_exits.clear();
        state.exits_remaining = state.dag.exit_nodes().len();
        for &(_, inst) in &stale {
            if self.worker_alive[inst.worker] {
                let admissions =
                    self.containers[inst.worker].release(inst.container, now, &mut self.rng);
                self.schedule_admissions(inst.worker, admissions);
                self.track_utilization(now, inst.worker);
                self.reschedule_expiry(now, inst.worker);
            }
        }
        for &(t, _) in &stale {
            self.cancel_hedge(now, t);
        }
        stale.clear();
        self.scratch.stale = stale;
        self.inflight_spawns
            .retain(|t, _| !(t.workflow == wf && t.invocation == inv));
        for e in &mut self.worker_engines {
            e.release_invocation(wf, inv);
        }
        for fs in &mut self.faastores {
            let _ = fs.release_invocation(wf, inv);
        }
        let _ = self.remote.release_invocation(inv);
        // Re-pin to the current (post-recovery) deployment.
        let ws = self.workflows.get_mut(&wf).expect("workflow exists");
        let state = self.invocations.get_mut(&(wf, inv)).expect("checked above");
        let _ = ws.deployment.invocation_finished(state.version);
        let version = ws.deployment.invocation_started();
        let assignment = ws
            .deployment
            .assignment_arc(version)
            .expect("current version has an assignment");
        state.version = version;
        state.dag = ws.dag_arc.clone();
        state.assignment = assignment;
        // If the redeploy failed and the pinned partition still routes work
        // to a dead worker, the invocation cannot make progress.
        let routes_dead = state.dag.nodes().iter().any(|n| {
            self.config
                .worker_index(state.assignment.worker_of(n.id))
                .map(|wi| !self.worker_alive[wi])
                .unwrap_or(false)
        });
        if routes_dead {
            self.dead_letter_invocation(now, wf, inv, DeadLetterReason::CrashOrphan);
            return;
        }
        self.faults.crash_redispatches += 1;
        self.begin_invocation_dispatch(now, wf, inv);
    }

    /// Abandons one invocation with explicit accounting: every resource it
    /// holds is torn down, the dead-letter counters tick, and a closed-loop
    /// client moves on to its next invocation.
    fn dead_letter_invocation(
        &mut self,
        now: SimTime,
        wf: WorkflowId,
        inv: InvocationId,
        reason: DeadLetterReason,
    ) {
        self.abandon_invocation(now, wf, inv, AbandonKind::DeadLetter(reason));
    }

    /// Load-sheds one invocation: the same teardown as a dead letter, but
    /// accounted as an admission-control decision (`shed` counters, not
    /// fault counters) and traced against the overflowing worker.
    fn shed_invocation(&mut self, now: SimTime, worker: usize, wf: WorkflowId, inv: InvocationId) {
        self.abandon_invocation(now, wf, inv, AbandonKind::Shed { worker });
    }

    /// Common teardown for every abandonment path; `kind` decides the
    /// accounting (dead-letter vs overload shed vs degradation-gate shed).
    fn abandon_invocation(
        &mut self,
        now: SimTime,
        wf: WorkflowId,
        inv: InvocationId,
        kind: AbandonKind,
    ) {
        let Some(mut state) = self.invocations.remove(&(wf, inv)) else {
            return;
        };
        state.completed = true;
        if let Some(ev) = state.timeout_event.take() {
            self.queue.cancel(ev);
        }
        match kind {
            AbandonKind::DeadLetter(reason) => {
                self.faults.dead_letters += 1;
                match reason {
                    DeadLetterReason::RetriesExhausted => {
                        self.faults.dead_letter_retries_exhausted += 1
                    }
                    DeadLetterReason::CrashOrphan => self.faults.dead_letter_crash_orphan += 1,
                    DeadLetterReason::JournalUnrecoverable => {
                        self.faults.dead_letter_journal_unrecoverable += 1
                    }
                    DeadLetterReason::QuarantineOrphan => {
                        self.faults.dead_letter_quarantine_orphan += 1;
                        self.health_stats.quarantine_orphans += 1;
                    }
                }
                self.journal_append_master(
                    now,
                    JournalRecord::Terminal {
                        workflow: wf,
                        invocation: inv,
                        outcome: TerminalOutcome::DeadLettered,
                    },
                );
                self.metrics
                    .get_mut(&wf)
                    .expect("metrics exist")
                    .dead_lettered += 1;
                self.tracer.record(|| TraceEvent::DeadLettered {
                    workflow: wf,
                    invocation: inv,
                    at: now,
                });
            }
            AbandonKind::Shed { worker } | AbandonKind::DegradeShed { worker } => {
                if matches!(kind, AbandonKind::Shed { .. }) {
                    // Degradation-gate sheds are accounted in
                    // `DegradeReport::sheds`, not in the overload
                    // per-policy counters (which must keep summing to
                    // `overload.shed`).
                    self.overload.shed += 1;
                }
                self.journal_append_master(
                    now,
                    JournalRecord::Terminal {
                        workflow: wf,
                        invocation: inv,
                        outcome: TerminalOutcome::Shed,
                    },
                );
                self.metrics.get_mut(&wf).expect("metrics exist").shed += 1;
                let node = self.config.worker_node(worker as u32);
                self.tracer.record(|| TraceEvent::InvocationShed {
                    workflow: wf,
                    invocation: inv,
                    worker: node,
                    at: now,
                });
            }
        }
        // Abandoned invocations never completed: they always consume SLO
        // error budget, whatever their elapsed time was. Degradation-gate
        // sheds are the one exception: the refusal is the protection
        // layer's own decision, not a capacity failure — feeding it back
        // into the monitor would keep the alert firing forever.
        if !matches!(kind, AbandonKind::DegradeShed { .. }) {
            self.slo_evaluate(now, wf, now - state.started, true, state.degrade_probe);
        }
        self.cancel_invocation_flows(now, wf, inv);
        let mut stale = std::mem::take(&mut self.scratch.stale);
        stale.extend(state.instances.drain());
        stale.sort_unstable_by_key(|&(t, _)| t);
        for &(_, inst) in &stale {
            if self.worker_alive[inst.worker] {
                let admissions =
                    self.containers[inst.worker].release(inst.container, now, &mut self.rng);
                self.schedule_admissions(inst.worker, admissions);
                self.track_utilization(now, inst.worker);
                self.reschedule_expiry(now, inst.worker);
            }
        }
        for &(t, _) in &stale {
            self.cancel_hedge(now, t);
        }
        stale.clear();
        self.scratch.stale = stale;
        // Purge the invocation's queued admissions everywhere: leaving them
        // would hold bounded-queue slots for a dead invocation and let a
        // later overflow "shed" it a second time.
        for w in 0..self.config.workers as usize {
            while self.containers[w]
                .remove_queued(|t| t.workflow == wf && t.invocation == inv)
                .is_some()
            {}
        }
        self.inflight_spawns
            .retain(|t, _| !(t.workflow == wf && t.invocation == inv));
        match self.config.mode {
            ScheduleMode::WorkerSp => {
                for e in &mut self.worker_engines {
                    e.release_invocation(wf, inv);
                }
            }
            ScheduleMode::MasterSp => self.master_engine.release_invocation(wf, inv),
        }
        for fs in &mut self.faastores {
            let _ = fs.release_invocation(wf, inv);
        }
        let _ = self.remote.release_invocation(inv);
        let ws = self.workflows.get_mut(&wf).expect("workflow exists");
        let _ = ws.deployment.invocation_finished(state.version);
        // The closed-loop client still owes its remaining invocations.
        if matches!(ws.client, ClientConfig::ClosedLoop { .. })
            && ws.sent < ws.client.total_invocations()
        {
            self.schedule_arrival(now, wf);
        }
    }

    /// Cancels every bulk transfer belonging to one invocation, including
    /// payloads stalled behind an asymmetric partition.
    fn cancel_invocation_flows(&mut self, now: SimTime, wf: WorkflowId, inv: InvocationId) {
        if !self.gray_stalled.is_empty() {
            self.gray_stalled.retain(|&(_, tag)| {
                let t = match tag {
                    FlowTag::Read { token, .. } | FlowTag::Write { token, .. } => token,
                };
                !(t.workflow == wf && t.invocation == inv)
            });
        }
        let mut doomed = std::mem::take(&mut self.scratch.flow_ids);
        doomed.extend(
            self.net
                .iter()
                .filter(|(_, f)| {
                    let t = match f.tag {
                        FlowTag::Read { token, .. } | FlowTag::Write { token, .. } => token,
                    };
                    t.workflow == wf && t.invocation == inv
                })
                .map(|(id, _)| id),
        );
        doomed.sort_unstable();
        for &id in &doomed {
            if self.net.cancel_flow(id, now).is_some() {
                self.faults.flows_killed += 1;
            }
        }
        doomed.clear();
        self.scratch.flow_ids = doomed;
        self.reschedule_flow_timer(now);
    }

    /// The first live worker after `avoid` in ring order (falling back to
    /// `avoid` itself if it restarted), or `None` with no worker alive.
    fn pick_alive_worker(&self, avoid: usize) -> Option<usize> {
        let n = self.config.workers as usize;
        (avoid + 1..n)
            .chain(0..=avoid.min(n - 1))
            .find(|&w| self.worker_alive[w])
    }

    fn on_storage_fault(&mut self, idx: usize, start: bool) {
        match self.config.fault.storage_faults[idx].kind {
            StorageFaultKind::Blackout => self.storage_down = start,
            StorageFaultKind::Brownout { slowdown } => {
                self.storage_slowdown = if start { slowdown } else { 1.0 };
            }
        }
    }

    fn on_net_fault(&mut self, now: SimTime, idx: usize, start: bool) {
        let fault = self.config.fault.net_faults[idx];
        let node = self.config.worker_node(fault.worker);
        if start {
            self.link_faults.set(
                node,
                LinkQuality {
                    loss: fault.loss,
                    latency_factor: fault.latency_factor,
                },
            );
            self.net.set_nic(
                node,
                NicSpec::symmetric(self.config.worker_bandwidth * fault.bandwidth_factor),
                now,
            );
        } else {
            self.link_faults.clear(node);
            self.net
                .set_nic(node, NicSpec::symmetric(self.config.worker_bandwidth), now);
        }
        self.reschedule_flow_timer(now);
    }

    // ==================================================================
    // Gray failures & health detection
    // ==================================================================

    /// A gray-failure window opens. Unlike a crash, the worker keeps its
    /// lease: it accepts work and answers heartbeats while quietly
    /// misbehaving — exactly the failure class a liveness-only detector
    /// cannot see. The effect vectors are passive state consulted by the
    /// exec and flow paths, so a window over an idle worker changes
    /// nothing.
    fn on_gray_fault_start(&mut self, now: SimTime, idx: usize) {
        let g = self.config.fault.gray_faults[idx];
        let w = g.worker as usize;
        match g.kind {
            GrayFaultKind::ExecSlowdown { factor } => self.gray_slowdown[w] = factor,
            GrayFaultKind::StuckExecutor => {
                self.gray_stuck_until[w] = Some(SimTime::ZERO + g.at + g.duration);
            }
            GrayFaultKind::FlakyExec { failure_rate } => self.gray_flaky[w] = failure_rate,
            GrayFaultKind::AsymmetricPartition {
                inbound,
                expire_lease,
            } => {
                self.gray_partition[w] = Some(inbound);
                self.gray_partitions_active += 1;
                // The false-suspicion path: the master stops hearing from
                // the worker and force-expires its lease even though the
                // node is alive and still executing. Re-dispatched work
                // races the zombie; its late completions must be fenced.
                if expire_lease && self.worker_alive[w] {
                    self.gray_zombie[w] = true;
                    self.queue.schedule(
                        now + self.config.fault.lease_delay(g.worker),
                        Event::LeaseExpired { worker: w },
                    );
                }
            }
        }
    }

    /// A gray-failure window closes: effects lift, and payloads stalled
    /// behind an asymmetric partition finally deliver (heavily late — the
    /// latency cost of the outage, not an accounting reset).
    fn on_gray_fault_end(&mut self, now: SimTime, idx: usize) {
        let g = self.config.fault.gray_faults[idx];
        let w = g.worker as usize;
        match g.kind {
            GrayFaultKind::ExecSlowdown { .. } => self.gray_slowdown[w] = 1.0,
            GrayFaultKind::StuckExecutor => self.gray_stuck_until[w] = None,
            GrayFaultKind::FlakyExec { .. } => self.gray_flaky[w] = 0.0,
            GrayFaultKind::AsymmetricPartition { .. } => {
                self.gray_partition[w] = None;
                self.gray_partitions_active = self.gray_partitions_active.saturating_sub(1);
                self.gray_zombie[w] = false;
                let stalled = std::mem::take(&mut self.gray_stalled);
                for (sw, tag) in stalled {
                    if sw == w {
                        self.on_flow_done(now, tag);
                    } else {
                        self.gray_stalled.push((sw, tag));
                    }
                }
            }
        }
    }

    /// Whether an open asymmetric-partition window blocks this flow's
    /// payload: remote reads travel inbound to the instance's worker,
    /// remote writes outbound from it. Loopback flows never leave the
    /// node, so they always pass.
    fn gray_partition_blocks(&self, tag: &FlowTag) -> Option<usize> {
        let (token, remote, read) = match *tag {
            FlowTag::Read { token, remote, .. } => (token, remote, true),
            FlowTag::Write { token, remote, .. } => (token, remote, false),
        };
        if !remote {
            return None;
        }
        let w = self
            .invocations
            .get(&(token.workflow, token.invocation))
            .and_then(|s| s.instances.get(&token))
            .map(|i| i.worker)?;
        match self.gray_partition[w] {
            Some(inbound) if inbound == read => Some(w),
            _ => None,
        }
    }

    /// An `ExecDone` died on the admission fences: the completing attempt
    /// was superseded (crash recovery, restart, hedge win, evacuation).
    /// Balance the detector's in-flight gauge, and when the worker is a
    /// suspected-dead-but-alive zombie, count the rejection — fencing the
    /// zombie's late completions is the partition-tolerance property the
    /// report certifies.
    fn on_exec_fenced(&mut self, now: SimTime, worker: usize, token: InstanceToken) {
        if let Some(h) = self.health.as_mut() {
            h.note_fenced(worker as u32);
        }
        if !self.gray_zombie[worker] {
            return;
        }
        self.health_stats.zombie_fenced += 1;
        let node = self.config.worker_node(worker as u32);
        self.tracer.record(|| TraceEvent::ZombieFenced {
            worker: node,
            workflow: token.workflow,
            invocation: token.invocation,
            at: now,
        });
    }

    /// A quarantined worker's cooldown elapsed; the detector half-opens it
    /// (stale reopen events from before a relapse fence on `at`).
    fn on_health_reopen(&mut self, now: SimTime, w: usize, at: SimTime) {
        let Some(h) = self.health.as_mut() else {
            return;
        };
        if let Some(t) = h.on_reopen(w as u32, at) {
            self.apply_health_transitions(now, vec![t]);
        }
    }

    /// Turns detector transitions into cluster actions: quarantine pulls
    /// the worker out of the placement target set and hedge rings (and
    /// optionally drains it), reinstating restores its capacity for the
    /// half-open probes.
    fn apply_health_transitions(&mut self, now: SimTime, transitions: Vec<HealthTransition>) {
        for t in transitions {
            match t {
                HealthTransition::Quarantined {
                    worker,
                    score,
                    reopen_at,
                    relapse,
                } => {
                    let w = worker as usize;
                    self.quarantined[w] = true;
                    let node = self.config.worker_node(worker);
                    self.tracer.record(|| TraceEvent::WorkerQuarantined {
                        worker: node,
                        score,
                        relapse,
                        at: now,
                    });
                    self.queue.schedule(
                        reopen_at,
                        Event::HealthReopen {
                            worker: w,
                            at: reopen_at,
                        },
                    );
                    if self.config.health.is_some_and(|h| h.drain_on_quarantine) {
                        self.drain_quarantined_worker(now, w);
                    }
                }
                HealthTransition::Reinstating { worker } => {
                    self.quarantined[worker as usize] = false;
                }
                HealthTransition::Reinstated { worker } => {
                    let node = self.config.worker_node(worker);
                    self.tracer.record(|| TraceEvent::WorkerReinstated {
                        worker: node,
                        at: now,
                    });
                }
            }
        }
    }

    /// Steers work off a freshly quarantined worker without declaring it
    /// dead: placements recompute over the healthy set and the instances
    /// it was running re-run elsewhere, dead-lettering as quarantine
    /// orphans once an invocation's recovery budget is spent.
    fn drain_quarantined_worker(&mut self, now: SimTime, w: usize) {
        let node = self.config.worker_node(w as u32);
        match self.config.mode {
            ScheduleMode::MasterSp => {
                self.evacuate_worker(now, w, DeadLetterReason::QuarantineOrphan);
            }
            ScheduleMode::WorkerSp => {
                if self.config.placement_config.enabled {
                    let moved = self.rebalance_workflows_on(node);
                    if moved > 0 {
                        self.placement.recovery_rebalances += 1;
                        self.placement.rebalanced_workflows += moved;
                        self.tracer.record(|| TraceEvent::PlacementRebalanced {
                            worker: node,
                            workflows: moved,
                            recovery: true,
                            at: now,
                        });
                    }
                } else {
                    self.redeploy_all();
                }
                let mut impacted = std::mem::take(&mut self.scratch.inv_keys);
                for (&key, state) in &self.invocations {
                    if state.completed {
                        continue;
                    }
                    let touches = state.instances.values().any(|i| i.worker == w)
                        || state.dag.nodes().iter().any(|n| {
                            !state.completed_nodes.contains(&n.id)
                                && state.assignment.worker_of(n.id) == node
                        });
                    if touches {
                        impacted.push(key);
                    }
                }
                impacted.sort_unstable();
                for &(wf, inv) in &impacted {
                    self.restart_invocation_as(now, wf, inv, DeadLetterReason::QuarantineOrphan);
                }
                impacted.clear();
                self.scratch.inv_keys = impacted;
            }
        }
    }

    /// Pulls every admitted instance off a live-but-distrusted worker
    /// (MasterSP false suspicion, or a quarantine drain): each one is
    /// re-dispatched to another live worker under a fresh admission and
    /// the suspect's containers free up normally — its own late
    /// completions die on the sequence fences. Invocations whose recovery
    /// budget is spent dead-letter with `reason`.
    fn evacuate_worker(&mut self, now: SimTime, w: usize, reason: DeadLetterReason) {
        let mut tokens = std::mem::take(&mut self.scratch.tokens);
        for state in self.invocations.values() {
            tokens.extend(
                state
                    .instances
                    .iter()
                    .filter(|(_, i)| i.worker == w)
                    .map(|(&t, _)| t),
            );
        }
        tokens.sort_unstable();
        tokens.dedup();
        // Bump per-invocation recovery budgets; exhausted ones dead-letter.
        let mut invs = std::mem::take(&mut self.scratch.inv_keys);
        invs.extend(tokens.iter().map(|t| (t.workflow, t.invocation)));
        invs.sort_unstable();
        invs.dedup();
        for &(wf, inv) in &invs {
            let Some(state) = self.invocations.get_mut(&(wf, inv)) else {
                continue;
            };
            if state.completed {
                continue;
            }
            state.recovery_attempts += 1;
            if state.recovery_attempts > self.config.fault.max_recovery_attempts {
                self.dead_letter_invocation(now, wf, inv, reason);
            }
        }
        invs.clear();
        self.scratch.inv_keys = invs;
        for &token in &tokens {
            // Transfers in flight for the attempt (including payloads
            // stalled behind the partition) belong to the superseded copy.
            self.cancel_hedge(now, token);
            self.cancel_token_flows(now, token);
            let Some(state) = self
                .invocations
                .get_mut(&(token.workflow, token.invocation))
            else {
                continue;
            };
            if state.completed
                || state.epoch != token.epoch
                || state.completed_nodes.contains(&token.function)
            {
                continue;
            }
            let Some(inst) = state.instances.remove(&token) else {
                continue;
            };
            let admissions = self.containers[w].release(inst.container, now, &mut self.rng);
            self.schedule_admissions(w, admissions);
            self.track_utilization(now, w);
            self.reschedule_expiry(now, w);
            let Some(target) = self.pick_healthy_worker(w) else {
                self.dead_letter_invocation(now, token.workflow, token.invocation, reason);
                continue;
            };
            self.faults.crash_redispatches += 1;
            self.request_instance(now, target, token);
        }
        tokens.clear();
        self.scratch.tokens = tokens;
    }

    /// Cancels every bulk transfer belonging to one instance attempt,
    /// including payloads stalled behind an asymmetric partition.
    fn cancel_token_flows(&mut self, now: SimTime, token: InstanceToken) {
        let mut doomed = std::mem::take(&mut self.scratch.flow_ids);
        doomed.extend(
            self.net
                .iter()
                .filter(|(_, f)| {
                    let t = match f.tag {
                        FlowTag::Read { token: t, .. } | FlowTag::Write { token: t, .. } => t,
                    };
                    t == token
                })
                .map(|(id, _)| id),
        );
        doomed.sort_unstable();
        for &id in &doomed {
            if self.net.cancel_flow(id, now).is_some() {
                self.faults.flows_killed += 1;
            }
        }
        doomed.clear();
        self.scratch.flow_ids = doomed;
        self.gray_stalled.retain(|&(_, tag)| {
            let t = match tag {
                FlowTag::Read { token: t, .. } | FlowTag::Write { token: t, .. } => t,
            };
            t != token
        });
        self.reschedule_flow_timer(now);
    }

    /// [`Self::pick_alive_worker`], preferring workers not under
    /// quarantine (falling back to any live worker when every survivor is
    /// quarantined).
    fn pick_healthy_worker(&self, avoid: usize) -> Option<usize> {
        let n = self.config.workers as usize;
        (avoid + 1..n)
            .chain(0..=avoid.min(n - 1))
            .find(|&w| self.worker_alive[w] && !self.quarantined[w])
            .or_else(|| self.pick_alive_worker(avoid))
    }

    /// Issues (or re-issues) a remote read: during a blackout the request
    /// queues behind an exponential-backoff retry; a brownout stretches the
    /// server-side overhead; a missing key (its producer's output died with
    /// a crashed node) escalates to invocation recovery.
    #[allow(clippy::too_many_arguments)]
    fn schedule_remote_read(
        &mut self,
        now: SimTime,
        worker: usize,
        token: InstanceToken,
        producer: FunctionId,
        bytes: u64,
        started: SimTime,
        attempt: u32,
    ) {
        if !self.instance_on(worker, token) {
            return;
        }
        let key = DataKey::new(token.workflow, token.invocation, producer);
        let fast_fail = self.breaker_admit(now);
        if fast_fail {
            // Graceful degradation: while the breaker holds the store off,
            // serve the read from any live worker's FaaStore copy, shipping
            // worker-to-worker instead of through the storage node.
            if let Some(src) = self.find_local_copy(worker, key) {
                self.overload.breaker_local_serves += 1;
                let src_node = self.config.worker_node(src as u32);
                let dst = self.config.worker_node(worker as u32);
                self.net.start_flow(
                    src_node,
                    dst,
                    bytes,
                    FlowTag::Read {
                        token,
                        producer,
                        started,
                        remote: false,
                    },
                    now,
                );
                self.reschedule_flow_timer(now);
                return;
            }
            self.overload.breaker_fast_fails += 1;
        }
        if self.storage_down || fast_fail {
            if self.storage_down {
                self.faults.storage_backoff_waits += 1;
                // An admitted call hitting the blackout counts as a breaker
                // failure; fast-fails never reach the store, so they don't.
                if !fast_fail {
                    self.breaker_result(now, false, SimDuration::ZERO);
                }
            }
            if attempt >= self.config.fault.backoff.max_attempts {
                self.dead_letter_invocation(
                    now,
                    token.workflow,
                    token.invocation,
                    DeadLetterReason::RetriesExhausted,
                );
                return;
            }
            let delay = self.config.fault.backoff.delay(attempt, &mut self.rng);
            self.tracer.record(|| TraceEvent::StorageRetry {
                workflow: token.workflow,
                invocation: token.invocation,
                function: token.function,
                read: true,
                attempt,
                delay,
                at: now,
            });
            self.queue.schedule(
                now + delay,
                Event::RetryRemoteRead {
                    worker,
                    token,
                    producer,
                    bytes,
                    started,
                    attempt: attempt + 1,
                },
            );
            return;
        }
        match self.remote.read(key) {
            Some((_, overhead)) => {
                let overhead = if self.storage_slowdown != 1.0 {
                    overhead.mul_f64(self.storage_slowdown)
                } else {
                    overhead
                };
                self.breaker_result(now, true, overhead);
                self.queue.schedule(
                    now + overhead,
                    Event::StartRemoteRead {
                        worker,
                        token,
                        producer,
                        bytes,
                        started,
                    },
                );
            }
            None => {
                if self.config.fault.is_empty() {
                    panic!("producer output must be in the remote store");
                }
                let epoch = token.epoch;
                self.queue.schedule(
                    now,
                    Event::RecoverInvocation {
                        wf: token.workflow,
                        inv: token.invocation,
                        epoch,
                    },
                );
            }
        }
    }

    /// Issues (or re-issues) a remote write, with the same blackout backoff
    /// and brownout stretching as reads.
    fn schedule_remote_write(
        &mut self,
        now: SimTime,
        worker: usize,
        token: InstanceToken,
        bytes: u64,
        started: SimTime,
        attempt: u32,
    ) {
        if !self.instance_on(worker, token) {
            return;
        }
        // Writes have no local fallback (the placement decision already
        // chose the remote store): an open breaker pushes them into the
        // same backoff-retry path a blackout does.
        let fast_fail = self.breaker_admit(now);
        if fast_fail {
            self.overload.breaker_fast_fails += 1;
        }
        if self.storage_down || fast_fail {
            if self.storage_down {
                self.faults.storage_backoff_waits += 1;
                if !fast_fail {
                    self.breaker_result(now, false, SimDuration::ZERO);
                }
            }
            if attempt >= self.config.fault.backoff.max_attempts {
                self.dead_letter_invocation(
                    now,
                    token.workflow,
                    token.invocation,
                    DeadLetterReason::RetriesExhausted,
                );
                return;
            }
            let delay = self.config.fault.backoff.delay(attempt, &mut self.rng);
            self.tracer.record(|| TraceEvent::StorageRetry {
                workflow: token.workflow,
                invocation: token.invocation,
                function: token.function,
                read: false,
                attempt,
                delay,
                at: now,
            });
            self.queue.schedule(
                now + delay,
                Event::RetryRemoteWrite {
                    worker,
                    token,
                    bytes,
                    started,
                    attempt: attempt + 1,
                },
            );
            return;
        }
        let overhead = if self.storage_slowdown != 1.0 {
            self.config
                .remote_store
                .put_overhead
                .mul_f64(self.storage_slowdown)
        } else {
            self.config.remote_store.put_overhead
        };
        self.breaker_result(now, true, overhead);
        self.queue.schedule(
            now + overhead,
            Event::StartRemoteWrite {
                worker,
                token,
                bytes,
                started,
            },
        );
    }

    /// Consults the circuit breaker before a remote-store call. Returns
    /// `true` when the call must fail fast (breaker open). `Allow` and
    /// half-open `Probe` both proceed — probes are how the breaker learns
    /// the store recovered.
    fn breaker_admit(&mut self, now: SimTime) -> bool {
        let (fast_fail, transition) = match &mut self.breaker {
            Some(b) => {
                let (decision, tr) = b.admit(now);
                (decision == BreakerDecision::FastFail, tr)
            }
            None => (false, None),
        };
        if let Some(tr) = transition {
            self.note_breaker_transition(now, tr);
        }
        fast_fail
    }

    /// Feeds one remote-store call outcome to the breaker. `latency` is the
    /// server-side overhead (brownout-stretched), the signal the latency
    /// threshold judges.
    fn breaker_result(&mut self, now: SimTime, ok: bool, latency: SimDuration) {
        let transition = match &mut self.breaker {
            Some(b) => b.on_result(now, ok, latency, &mut self.rng),
            None => None,
        };
        if let Some(tr) = transition {
            self.note_breaker_transition(now, tr);
        }
    }

    fn note_breaker_transition(&mut self, now: SimTime, (from, to): (BreakerState, BreakerState)) {
        match to {
            BreakerState::Open => self.overload.breaker_opens += 1,
            BreakerState::HalfOpen => self.overload.breaker_half_opens += 1,
            BreakerState::Closed => self.overload.breaker_closes += 1,
        }
        self.tracer
            .record(|| TraceEvent::BreakerTransition { from, to, at: now });
    }

    /// The first live worker (the reader first, then ring order) whose
    /// FaaStore holds a local copy of `key`.
    fn find_local_copy(&mut self, reader: usize, key: DataKey) -> Option<usize> {
        let n = self.config.workers as usize;
        std::iter::once(reader)
            .chain((reader + 1..n).chain(0..reader))
            .find(|&w| self.worker_alive[w] && self.faastores[w].read_local(key).is_some())
    }

    // ==================================================================
    // Timers
    // ==================================================================

    fn reschedule_flow_timer(&mut self, now: SimTime) {
        if let Some(ev) = self.flow_timer.take() {
            self.queue.cancel(ev);
        }
        if let Some(t) = self.net.next_completion() {
            let at = t.max(now);
            self.flow_timer = Some(self.queue.schedule(at, Event::FlowTick));
        }
    }

    /// Refreshes the time-weighted CPU/memory trackers of one worker after
    /// any container-state change.
    fn track_utilization(&mut self, now: SimTime, worker: usize) {
        let stats = self.containers[worker].stats();
        self.cpu_util[worker].update(now, stats.cores_busy.get() as f64);
        self.mem_util[worker].update(now, stats.mem_resident.get() as f64);
    }

    fn reschedule_expiry(&mut self, now: SimTime, worker: usize) {
        if let Some(ev) = self.expiry_timers[worker].take() {
            self.queue.cancel(ev);
        }
        if let Some(t) = self.containers[worker].next_expiry() {
            let at = t.max(now);
            self.expiry_timers[worker] =
                Some(self.queue.schedule(at, Event::ContainerExpiry { worker }));
        }
    }
}
