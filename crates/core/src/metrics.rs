//! Run metrics and reports — the quantities the paper's figures plot.

use std::collections::BTreeMap;

use faasflow_sim::stats::{Histogram, Summary};
use faasflow_sim::{NodeId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::degrade::DegradeReport;
use crate::health::HealthReport;
use crate::slo::SloReport;

/// Per-workflow measurement accumulators (crate-internal mutable side).
#[derive(Debug, Clone, Default)]
pub(crate) struct WorkflowMetrics {
    /// End-to-end invocation latency (ms), timeouts recorded at the cap.
    pub e2e: Histogram,
    /// Scheduling overhead (ms): e2e minus critical-path execution (§2.3).
    pub sched_overhead: Histogram,
    /// Per-invocation sum of data transfer latencies over all edges (ms) —
    /// Table 4's quantity.
    pub transfer_total: Histogram,
    /// Per-invocation bytes moved through any store (remote or local).
    pub bytes_moved: Histogram,
    pub completed: u64,
    pub timeouts: u64,
    pub sent: u64,
    pub dead_lettered: u64,
    pub shed: u64,
    pub remote_bytes: u64,
    pub local_bytes: u64,
    pub first_completion: Option<SimTime>,
    pub last_completion: Option<SimTime>,
}

impl WorkflowMetrics {
    pub(crate) fn snapshot(&mut self, name: &str) -> WorkflowReport {
        WorkflowReport {
            name: name.to_string(),
            sent: self.sent,
            completed: self.completed,
            timeouts: self.timeouts,
            dead_lettered: self.dead_lettered,
            shed: self.shed,
            e2e: self.e2e.summary(),
            sched_overhead: self.sched_overhead.summary(),
            transfer_total: self.transfer_total.summary(),
            bytes_moved: self.bytes_moved.summary(),
            remote_bytes: self.remote_bytes,
            local_bytes: self.local_bytes,
            throughput_per_min: self.throughput_per_min(),
        }
    }

    fn throughput_per_min(&self) -> f64 {
        match (self.first_completion, self.last_completion) {
            (Some(a), Some(b)) if b > a && self.completed > 1 => {
                (self.completed - 1) as f64 / (b - a).as_secs_f64() * 60.0
            }
            _ => 0.0,
        }
    }
}

/// Immutable per-workflow report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowReport {
    /// Workflow name.
    pub name: String,
    /// Invocations sent.
    pub sent: u64,
    /// Invocations completed (timeouts included once they finish).
    pub completed: u64,
    /// Invocations that exceeded the timeout.
    pub timeouts: u64,
    /// Invocations abandoned by fault recovery (crash-recovery budget or
    /// storage-retry budget exhausted) with explicit accounting.
    pub dead_lettered: u64,
    /// Invocations shed by admission control (overload protection; 0
    /// unless [`crate::OverloadConfig`] enables bounded queues).
    pub shed: u64,
    /// End-to-end latency (ms).
    pub e2e: Summary,
    /// Scheduling overhead (ms).
    pub sched_overhead: Summary,
    /// Per-invocation total data-movement latency (ms) — Table 4.
    pub transfer_total: Summary,
    /// Per-invocation bytes moved.
    pub bytes_moved: Summary,
    /// Total bytes shipped through the remote store.
    pub remote_bytes: u64,
    /// Total bytes passed through local memory (FaaStore hits).
    pub local_bytes: u64,
    /// Completions per minute over the measurement window.
    pub throughput_per_min: f64,
}

/// Cluster-wide report produced by `Cluster::report`.
///
/// `Serialize`/`Deserialize` are hand-written (the vendored derive has no
/// `skip_serializing_if`): the `placement` block is omitted when all-zero
/// so legacy-mode reports — and the committed goldens — stay bit-identical
/// to builds that predate the placement layer.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Per-workflow results keyed by workflow name.
    pub workflows: BTreeMap<String, WorkflowReport>,
    /// Simulated time at report generation (s).
    pub sim_time_secs: f64,
    /// Master engine CPU busy fraction (MasterSP's bottleneck; ~0 under
    /// WorkerSP).
    pub master_busy_fraction: f64,
    /// Task assignments sent by the master engine (MasterSP).
    pub master_tasks_assigned: u64,
    /// Execution states returned to the master engine (MasterSP).
    pub master_state_returns: u64,
    /// Cross-worker state-sync messages (WorkerSP).
    pub worker_syncs: u64,
    /// In-process local state updates (WorkerSP).
    pub worker_local_updates: u64,
    /// Cold starts across all workers.
    pub cold_starts: u64,
    /// Warm starts across all workers.
    pub warm_starts: u64,
    /// Bytes that transited the storage node NIC (both directions).
    pub storage_node_bytes: u64,
    /// Bytes served by worker-local memory instead of the network.
    pub faastore_local_bytes: u64,
    /// Per-worker engine-state footprint: live invocation structures.
    pub live_invocation_states: u64,
    /// Instance executions that failed and were retried (failure
    /// injection; 0 unless `exec_failure_rate > 0`).
    pub exec_retries: u64,
    /// Feedback-driven repartitions that failed and kept the old
    /// deployment (previously silently swallowed).
    pub repartition_failures: u64,
    /// Fault-injection and recovery accounting (all zero when the
    /// [`crate::FaultPlan`] is empty).
    pub faults: FaultReport,
    /// Overload-protection accounting (all zero when the
    /// [`crate::OverloadConfig`] is empty).
    pub overload: OverloadReport,
    /// Engine-crash recovery and journal accounting (all zero when the
    /// plan schedules no engine crashes and journaling is off).
    pub recovery: RecoveryReport,
    /// Load- and locality-aware placement accounting (all zero when
    /// [`crate::ClusterConfig::placement_config`] stays legacy; omitted
    /// from serialized reports in that case so legacy goldens stay
    /// bit-identical).
    pub placement: PlacementReport,
    /// SLO burn-rate monitoring accounting (all zero when
    /// [`crate::ClusterConfig::slo`] is unset; omitted from serialized
    /// reports in that case so pre-SLO goldens stay bit-identical).
    pub slo: SloReport,
    /// SLO-driven degradation accounting (all zero when
    /// [`crate::ClusterConfig::degrade`] is unset; omitted from serialized
    /// reports in that case so pre-degradation goldens stay bit-identical).
    pub degrade: DegradeReport,
    /// Gray-failure injection and health-detector accounting (all zero
    /// when no [`crate::GrayFault`] fires and
    /// [`crate::ClusterConfig::health`] is unset; omitted from serialized
    /// reports in that case so pre-gray-failure goldens stay
    /// bit-identical).
    pub health: HealthReport,
    /// Trace events rejected by the `trace_capacity` cap (0 when tracing
    /// is off or the cap was never hit).
    pub trace_dropped: u64,
    /// Resource time-series sampled over the run (`None` unless
    /// [`crate::ClusterConfig::sample_every`] is set).
    pub resources: Option<crate::sample::ResourceSeriesReport>,
}

impl Serialize for RunReport {
    fn to_value(&self) -> serde::Value {
        let mut m: Vec<(String, serde::Value)> = Vec::new();
        macro_rules! put {
            ($field:ident) => {
                m.push((stringify!($field).to_string(), self.$field.to_value()))
            };
        }
        put!(workflows);
        put!(sim_time_secs);
        put!(master_busy_fraction);
        put!(master_tasks_assigned);
        put!(master_state_returns);
        put!(worker_syncs);
        put!(worker_local_updates);
        put!(cold_starts);
        put!(warm_starts);
        put!(storage_node_bytes);
        put!(faastore_local_bytes);
        put!(live_invocation_states);
        put!(exec_retries);
        put!(repartition_failures);
        put!(faults);
        put!(overload);
        put!(recovery);
        if !self.placement.is_zero() {
            put!(placement);
        }
        if !self.slo.is_zero() {
            put!(slo);
        }
        if !self.degrade.is_zero() {
            put!(degrade);
        }
        if !self.health.is_zero() {
            put!(health);
        }
        put!(trace_dropped);
        put!(resources);
        serde::Value::Map(m)
    }
}

impl Deserialize for RunReport {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let m = serde::expect_map(value, "RunReport")?;
        macro_rules! get {
            ($field:ident) => {
                serde::field(m, stringify!($field), "RunReport")?
            };
        }
        Ok(RunReport {
            workflows: get!(workflows),
            sim_time_secs: get!(sim_time_secs),
            master_busy_fraction: get!(master_busy_fraction),
            master_tasks_assigned: get!(master_tasks_assigned),
            master_state_returns: get!(master_state_returns),
            worker_syncs: get!(worker_syncs),
            worker_local_updates: get!(worker_local_updates),
            cold_starts: get!(cold_starts),
            warm_starts: get!(warm_starts),
            storage_node_bytes: get!(storage_node_bytes),
            faastore_local_bytes: get!(faastore_local_bytes),
            live_invocation_states: get!(live_invocation_states),
            exec_retries: get!(exec_retries),
            repartition_failures: get!(repartition_failures),
            faults: get!(faults),
            overload: get!(overload),
            recovery: get!(recovery),
            // Absent in legacy-era reports (and legacy-mode runs).
            placement: match m.iter().find(|(k, _)| k == "placement") {
                Some((_, v)) => PlacementReport::from_value(v)?,
                None => PlacementReport::default(),
            },
            // Absent in pre-SLO reports (and runs without an SloConfig).
            slo: match m.iter().find(|(k, _)| k == "slo") {
                Some((_, v)) => SloReport::from_value(v)?,
                None => SloReport::default(),
            },
            // Absent in pre-degradation reports (and runs without a
            // DegradeConfig).
            degrade: match m.iter().find(|(k, _)| k == "degrade") {
                Some((_, v)) => DegradeReport::from_value(v)?,
                None => DegradeReport::default(),
            },
            // Absent in pre-gray-failure reports (and runs without gray
            // faults or a HealthConfig).
            health: match m.iter().find(|(k, _)| k == "health") {
                Some((_, v)) => HealthReport::from_value(v)?,
                None => HealthReport::default(),
            },
            trace_dropped: get!(trace_dropped),
            resources: get!(resources),
        })
    }
}

/// What the fault-injection subsystem did during a run — every recovery
/// action is counted, distinguishing the recovery paths from one another.
///
/// `Serialize`/`Deserialize` are hand-written:
/// `dead_letter_quarantine_orphan` is omitted when zero so committed
/// goldens from before the quarantine path keep their exact `faults`
/// block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Worker-node crashes injected.
    pub worker_crashes: u64,
    /// Worker restarts completed.
    pub worker_restarts: u64,
    /// Leases that expired (crash detections by the heartbeat model).
    pub lease_expiries: u64,
    /// Recovery dispatches after a node crash: MasterSP re-dispatched
    /// orphan instances, WorkerSP restarted invocations on the surviving
    /// partition.
    pub crash_redispatches: u64,
    /// Bulk transfers killed by a crash or recovery action.
    pub flows_killed: u64,
    /// Remote-storage operations delayed by outage backoff.
    pub storage_backoff_waits: u64,
    /// Engine messages retransmitted over degraded links.
    pub message_retransmits: u64,
    /// Invocations dead-lettered (sum of the per-reason counters below).
    pub dead_letters: u64,
    /// Dead letters whose terminal cause was an exhausted retry/recovery
    /// budget (exec retries, storage retries, crash-recovery attempts).
    pub dead_letter_retries_exhausted: u64,
    /// Dead letters orphaned by an engine crash: no surviving journal
    /// record and no worker-reported progress to rebuild from.
    pub dead_letter_crash_orphan: u64,
    /// Dead letters caused by an unreadable journal at recovery (store
    /// blacked out through every replay attempt).
    pub dead_letter_journal_unrecoverable: u64,
    /// Dead letters purged while draining a quarantined worker whose
    /// invocations had no crash-recovery budget left.
    pub dead_letter_quarantine_orphan: u64,
}

impl Serialize for FaultReport {
    fn to_value(&self) -> serde::Value {
        let mut m: Vec<(String, serde::Value)> = Vec::new();
        macro_rules! put {
            ($field:ident) => {
                m.push((stringify!($field).to_string(), self.$field.to_value()))
            };
        }
        put!(worker_crashes);
        put!(worker_restarts);
        put!(lease_expiries);
        put!(crash_redispatches);
        put!(flows_killed);
        put!(storage_backoff_waits);
        put!(message_retransmits);
        put!(dead_letters);
        put!(dead_letter_retries_exhausted);
        put!(dead_letter_crash_orphan);
        put!(dead_letter_journal_unrecoverable);
        if self.dead_letter_quarantine_orphan != 0 {
            put!(dead_letter_quarantine_orphan);
        }
        serde::Value::Map(m)
    }
}

impl Deserialize for FaultReport {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let m = serde::expect_map(value, "FaultReport")?;
        macro_rules! get {
            ($field:ident) => {
                serde::field(m, stringify!($field), "FaultReport")?
            };
        }
        Ok(FaultReport {
            worker_crashes: get!(worker_crashes),
            worker_restarts: get!(worker_restarts),
            lease_expiries: get!(lease_expiries),
            crash_redispatches: get!(crash_redispatches),
            flows_killed: get!(flows_killed),
            storage_backoff_waits: get!(storage_backoff_waits),
            message_retransmits: get!(message_retransmits),
            dead_letters: get!(dead_letters),
            dead_letter_retries_exhausted: get!(dead_letter_retries_exhausted),
            dead_letter_crash_orphan: get!(dead_letter_crash_orphan),
            dead_letter_journal_unrecoverable: get!(dead_letter_journal_unrecoverable),
            // Absent in pre-quarantine reports (and runs without one).
            dead_letter_quarantine_orphan: match m
                .iter()
                .find(|(k, _)| k == "dead_letter_quarantine_orphan")
            {
                Some((_, v)) => u64::from_value(v)?,
                None => 0,
            },
        })
    }
}

/// What the engine-crash recovery subsystem did during a run: crash and
/// restart counts, journal traffic, and the duplicate work that the
/// exactly-once guards suppressed across crash/replay/hedge interleavings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Engine crashes injected (central + per-worker).
    pub engine_crashes: u64,
    /// Central (MasterSP) engine crashes among them.
    pub master_engine_crashes: u64,
    /// Per-worker (WorkerSP) engine crashes among them.
    pub worker_engine_crashes: u64,
    /// Engine restarts that completed recovery.
    pub engine_recoveries: u64,
    /// Journal records appended (including ones later torn off by crash).
    pub journal_appends: u64,
    /// Journal appends lost: dropped at a blacked-out store or torn off by
    /// a crash before they were durable.
    pub journal_lost_appends: u64,
    /// Journal replay passes performed at engine restart.
    pub journal_replays: u64,
    /// Durable records read back across all replay passes.
    pub journal_replayed_records: u64,
    /// Replay attempts deferred because the journal store was blacked out.
    pub replay_backoffs: u64,
    /// Control messages lost at a dead engine or fenced as stale after a
    /// recovery rebuilt the engine's state.
    pub messages_lost: u64,
    /// Duplicate dispatches/exit-reports/syncs suppressed by the
    /// exactly-once guards during and after replay.
    pub duplicate_suppressions: u64,
    /// Total simulated seconds any engine spent down (summed over crashes).
    pub engine_downtime_secs: f64,
}

/// What the load- and locality-aware placement layer did during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementReport {
    /// Partitions that ran against live residual capacities (includes
    /// rebalances; 0 in legacy mode, where bin-packing always sees fresh
    /// nominal capacity).
    pub load_aware_partitions: u64,
    /// Partitions that did not fit under residual capacity and fell back
    /// to nominal capacity (heavily loaded cluster).
    pub capacity_fallbacks: u64,
    /// Incremental rebalance sweeps triggered by placed-group skew.
    pub skew_rebalances: u64,
    /// Incremental rebalance sweeps triggered by a recovery signal (worker
    /// crash or restart) instead of a full re-partition of every workflow.
    pub recovery_rebalances: u64,
    /// Workflows re-placed by incremental rebalance sweeps (both kinds).
    pub rebalanced_workflows: u64,
}

impl PlacementReport {
    /// True when the placement layer never acted (legacy mode, or an
    /// enabled run that registered no workflow).
    pub fn is_zero(&self) -> bool {
        *self == PlacementReport::default()
    }
}

/// What the overload-protection subsystem did during a run. Terminal
/// outcomes obey the conservation invariant
/// `admitted == completed + dead_lettered + shed` once the cluster drains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverloadReport {
    /// Invocations accepted into the system (every arrival; admission
    /// control sheds *after* acceptance, never silently at the door).
    pub admitted: u64,
    /// Invocations shed by admission control (sum of the per-policy
    /// counters below).
    pub shed: u64,
    /// Sheds that dropped the newly arriving instance's invocation.
    pub shed_newest: u64,
    /// Sheds that dropped the longest-queued invocation.
    pub shed_oldest: u64,
    /// Sheds that dropped the invocation with the least deadline slack.
    pub shed_deadline: u64,
    /// Breaker transitions into open.
    pub breaker_opens: u64,
    /// Breaker transitions into half-open.
    pub breaker_half_opens: u64,
    /// Breaker transitions back to closed.
    pub breaker_closes: u64,
    /// Remote-store calls refused while the breaker was open.
    pub breaker_fast_fails: u64,
    /// Open-window reads served from another worker's FaaStore copy
    /// instead of the remote store.
    pub breaker_local_serves: u64,
    /// Hedged executions dispatched.
    pub hedges_launched: u64,
    /// Hedges that finished before the primary (and took over).
    pub hedge_wins: u64,
    /// Hedges cancelled because the primary finished first (or the hedge
    /// itself failed).
    pub hedge_losses: u64,
    /// Dispatches deferred by pool backpressure (WorkerSP local defers).
    pub backpressure_deferrals: u64,
    /// Dispatches bounced back through the master engine by backpressure
    /// (MasterSP central re-queues).
    pub master_requeues: u64,
}

impl RunReport {
    /// The report of one workflow.
    ///
    /// # Panics
    ///
    /// Panics if the name is unknown.
    pub fn workflow(&self, name: &str) -> &WorkflowReport {
        self.workflows
            .get(name)
            .unwrap_or_else(|| panic!("no workflow named `{name}` in this report"))
    }

    /// Effective storage-NIC utilisation in bytes/s over the run.
    pub fn storage_bandwidth_used(&self) -> f64 {
        if self.sim_time_secs > 0.0 {
            self.storage_node_bytes as f64 / self.sim_time_secs
        } else {
            0.0
        }
    }
}

/// Per-instance transfer bookkeeping passed to metrics on completion.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct TransferLedger {
    /// Total transfer latency accumulated (all reads and writes).
    pub total_latency: SimDuration,
    /// Bytes moved via the remote store.
    pub remote_bytes: u64,
    /// Bytes moved via local memory.
    pub local_bytes: u64,
}

/// Time-averaged resource usage of one worker (§5.6–5.7's CPU/memory
/// series).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkerUtilization {
    /// The worker node.
    pub worker: NodeId,
    /// Time-averaged busy cores.
    pub cpu_mean_cores: f64,
    /// Peak busy cores.
    pub cpu_peak_cores: f64,
    /// Time-averaged resident container memory, bytes.
    pub mem_mean_bytes: f64,
    /// Peak resident container memory, bytes.
    pub mem_peak_bytes: f64,
}

/// Wall-clock self-profile of the simulator event loop. Deliberately kept
/// *out* of [`RunReport`]: wall-clock timings vary run to run, and the
/// report must stay bit-identical for a given seed. Retrieved separately
/// via `Cluster::loop_profile`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LoopProfile {
    /// Events dispatched by the loop since construction/reset.
    pub events_processed: u64,
    /// Wall-clock seconds spent inside `run_until`/`run_until_idle`.
    pub wall_secs: f64,
    /// Per-event-type handler timing. Empty unless the `loop-profile`
    /// cargo feature is enabled (the per-event clock reads are too
    /// expensive to leave on in benchmarks).
    pub per_event: Vec<EventTypeProfile>,
}

impl LoopProfile {
    /// Events dispatched per wall-clock second (0 when no time elapsed).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events_processed as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// Handler timing of one event type (`loop-profile` feature only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventTypeProfile {
    /// Event variant name.
    pub name: String,
    /// Times dispatched.
    pub count: u64,
    /// Total wall-clock seconds in the handler.
    pub total_secs: f64,
}

/// Scheduler-distribution entry for Figure 15-style reports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistributionRow {
    /// Worker node.
    pub worker: NodeId,
    /// Groups placed there.
    pub groups: usize,
    /// Function nodes placed there.
    pub functions: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An all-zero placement block must not appear in serialized reports
    /// (legacy goldens predate the field), and reports without one must
    /// still deserialize.
    #[test]
    fn zero_placement_report_is_not_serialized() {
        let report = RunReport {
            workflows: BTreeMap::new(),
            sim_time_secs: 1.0,
            master_busy_fraction: 0.0,
            master_tasks_assigned: 0,
            master_state_returns: 0,
            worker_syncs: 0,
            worker_local_updates: 0,
            cold_starts: 0,
            warm_starts: 0,
            storage_node_bytes: 0,
            faastore_local_bytes: 0,
            live_invocation_states: 0,
            exec_retries: 0,
            repartition_failures: 0,
            faults: FaultReport::default(),
            overload: OverloadReport::default(),
            recovery: RecoveryReport::default(),
            placement: PlacementReport::default(),
            slo: SloReport::default(),
            degrade: DegradeReport::default(),
            health: HealthReport::default(),
            trace_dropped: 0,
            resources: None,
        };
        let legacy = serde_json::to_string(&report).unwrap();
        assert!(!legacy.contains("placement"), "{legacy}");
        assert!(!legacy.contains("degrade"), "{legacy}");
        let back: RunReport = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back, report);

        let mut enabled = report.clone();
        enabled.placement.load_aware_partitions = 3;
        enabled.degrade.workflows_tracked = 1;
        let rendered = serde_json::to_string(&enabled).unwrap();
        assert!(rendered.contains("placement"), "{rendered}");
        assert!(rendered.contains("degrade"), "{rendered}");
        let back: RunReport = serde_json::from_str(&rendered).unwrap();
        assert_eq!(back, enabled);
    }

    #[test]
    fn throughput_uses_completion_window() {
        let mut m = WorkflowMetrics {
            completed: 3,
            first_completion: Some(SimTime::from_secs_f64(0.0)),
            last_completion: Some(SimTime::from_secs_f64(60.0)),
            ..WorkflowMetrics::default()
        };
        // 2 completions over 60s -> 2/min.
        let r = m.snapshot("x");
        assert!((r.throughput_per_min - 2.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_degenerate_cases_are_zero() {
        let mut m = WorkflowMetrics::default();
        assert_eq!(m.snapshot("x").throughput_per_min, 0.0);
        m.completed = 1;
        m.first_completion = Some(SimTime::from_secs_f64(1.0));
        m.last_completion = Some(SimTime::from_secs_f64(1.0));
        assert_eq!(m.snapshot("x").throughput_per_min, 0.0);
    }

    #[test]
    fn report_lookup_by_name() {
        let mut m = WorkflowMetrics::default();
        m.e2e.record(5.0);
        let snap = m.snapshot("wf");
        let mut workflows = BTreeMap::new();
        workflows.insert("wf".to_string(), snap);
        let report = RunReport {
            workflows,
            sim_time_secs: 10.0,
            master_busy_fraction: 0.0,
            master_tasks_assigned: 0,
            master_state_returns: 0,
            worker_syncs: 0,
            worker_local_updates: 0,
            cold_starts: 0,
            warm_starts: 0,
            storage_node_bytes: 500,
            faastore_local_bytes: 0,
            live_invocation_states: 0,
            exec_retries: 0,
            repartition_failures: 0,
            faults: FaultReport::default(),
            overload: OverloadReport::default(),
            recovery: RecoveryReport::default(),
            placement: PlacementReport::default(),
            slo: SloReport::default(),
            degrade: DegradeReport::default(),
            health: HealthReport::default(),
            trace_dropped: 0,
            resources: None,
        };
        assert_eq!(report.workflow("wf").e2e.count, 1);
        assert_eq!(report.storage_bandwidth_used(), 50.0);
    }

    #[test]
    #[should_panic(expected = "no workflow named")]
    fn unknown_workflow_panics() {
        let report = RunReport {
            workflows: BTreeMap::new(),
            sim_time_secs: 0.0,
            master_busy_fraction: 0.0,
            master_tasks_assigned: 0,
            master_state_returns: 0,
            worker_syncs: 0,
            worker_local_updates: 0,
            cold_starts: 0,
            warm_starts: 0,
            storage_node_bytes: 0,
            faastore_local_bytes: 0,
            live_invocation_states: 0,
            exec_retries: 0,
            repartition_failures: 0,
            faults: FaultReport::default(),
            overload: OverloadReport::default(),
            recovery: RecoveryReport::default(),
            placement: PlacementReport::default(),
            slo: SloReport::default(),
            degrade: DegradeReport::default(),
            health: HealthReport::default(),
            trace_dropped: 0,
            resources: None,
        };
        report.workflow("ghost");
    }
}
