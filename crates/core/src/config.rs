//! Cluster configuration.
//!
//! Defaults reproduce the paper's testbed (Table 3 plus §5.1): one
//! master/storage node and 7 workers, Docker-like containers, CouchDB-like
//! remote store, and a 50 MB/s storage-node NIC (the §5.4 default).

use faasflow_container::{ContainerConfig, NodeCaps};
use faasflow_net::MessageModel;
use faasflow_scheduler::{PlacementConfig, PlacementStrategy};
use faasflow_sim::{NodeId, SimDuration};
use faasflow_store::RemoteStoreConfig;
use serde::{Deserialize, Serialize};

use crate::degrade::DegradeConfig;
use crate::fault::{EngineTarget, FaultPlan};
use crate::health::HealthConfig;
use crate::journal::JournalConfig;
use crate::overload::OverloadConfig;
use crate::slo::SloConfig;

/// How FaaStore takes memory back from containers (§4.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ReclamationMode {
    /// Docker-style: shrink each fresh container's cgroup memory limit to
    /// `peak-history + μ`, freeing node memory for the quota pool.
    #[default]
    CgroupLimit,
    /// MicroVM sandboxes: "dynamic memory hot-unplugs such as
    /// memory-balloon and virtio-mem are not recommended" — containers keep
    /// their provisioned size and the in-memory store is carved out of the
    /// pre-distributed pool instead. Same quota, higher resident memory.
    MicroVm,
}

/// Which schedule pattern the cluster runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScheduleMode {
    /// The paper's contribution: per-worker engines, worker-side triggering.
    WorkerSp,
    /// The HyperFlow-serverless baseline: central engine, master-side
    /// triggering and task assignment.
    MasterSp,
}

/// How a registered workflow is driven.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ClientConfig {
    /// One invocation in flight at a time; the next is sent when the
    /// previous completes (§2.3, §5.2–5.3, §5.5).
    ClosedLoop {
        /// Total invocations to send.
        invocations: u32,
    },
    /// Fixed-rate arrivals regardless of completions (§5.4); queueing and
    /// cold-start effects are included.
    OpenLoop {
        /// Invocations per minute.
        per_minute: f64,
        /// Total invocations to send.
        invocations: u32,
    },
    /// No automatic arrivals; drive with `Cluster::invoke_now` (tests).
    Manual,
}

/// Full cluster configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of worker nodes (the paper uses 7).
    pub workers: u32,
    /// Schedule pattern.
    pub mode: ScheduleMode,
    /// Whether FaaStore local data passing is active (WorkerSP only; the
    /// MasterSP baseline always ships through the remote store).
    pub faastore: bool,
    /// Root seed; every run with the same seed is bit-identical.
    pub seed: u64,
    /// Per-worker hardware.
    pub node_caps: NodeCaps,
    /// Container lifecycle knobs.
    pub container: ContainerConfig,
    /// Worker NIC bandwidth, bytes/s (unthrottled in the paper; the
    /// bottleneck is the storage node).
    pub worker_bandwidth: f64,
    /// Storage/master node NIC bandwidth, bytes/s — the wondershaper knob
    /// of §5.4 (25/50/75/100 MB/s).
    pub storage_bandwidth: f64,
    /// Remote store per-operation overheads.
    pub remote_store: RemoteStoreConfig,
    /// Cross-node control message latency model.
    pub lan: MessageModel,
    /// Same-node RPC latency model.
    pub local_rpc: MessageModel,
    /// Master engine CPU occupancy per processed message (task trigger
    /// check / assignment / state bookkeeping). The master is a single
    /// queueing station, so under load this serializes — the §2.3 overhead.
    pub master_task_cost: SimDuration,
    /// Worker engine processing cost per local trigger/state event.
    pub worker_engine_cost: SimDuration,
    /// Safety reserve μ of Eq. (1).
    pub mu: u64,
    /// Invocation timeout; late invocations are recorded at this latency
    /// (§5.4 marks them as 60 s).
    pub timeout: SimDuration,
    /// Re-run the graph partition after this many completed invocations
    /// per workflow (`None` disables count-based feedback iterations).
    pub repartition_every: Option<u32>,
    /// Re-partition when an invocation's end-to-end latency exceeds this
    /// target — §4.1.2's "partition iteration is activated when the
    /// workflow experiences significant performance degradation or QoS
    /// violation". Rate-limited to once per completed invocation.
    pub qos_target: Option<SimDuration>,
    /// Record a structured [`crate::trace::TraceEvent`] per lifecycle step
    /// (off by default: tracing a 1000-invocation run allocates MBs).
    pub trace: bool,
    /// Maximum retained trace events. Events past the cap are dropped
    /// (newest first, keeping the retained prefix causally closed) and
    /// counted in `RunReport::trace_dropped`, so `trace` on a long
    /// open-loop run cannot grow memory without bound.
    pub trace_capacity: usize,
    /// Sample per-node resource gauges (container pool, memstore bytes,
    /// NIC rates, queue depths) every interval of deterministic sim time.
    /// `None` (the default) disables sampling entirely — runs are then
    /// bit-identical to pre-observability builds.
    pub sample_every: Option<SimDuration>,
    /// Ring-buffer capacity per sampled series; the oldest samples are
    /// evicted (and counted) once full.
    pub sample_capacity: usize,
    /// Probability that one executor instance's run fails and is retried
    /// (transient function errors — OOM-kills, runtime exceptions). Zero
    /// disables failure injection.
    pub exec_failure_rate: f64,
    /// Retries before a failing instance is allowed through regardless
    /// (at-least-once semantics with bounded retry, like production FaaS
    /// platforms).
    pub max_exec_retries: u32,
    /// How container memory is reclaimed for FaaStore.
    pub reclamation: ReclamationMode,
    /// Group placement policy of the partitioner's bin-packing step
    /// (worst-fit load balancing by default, matching Figure 15).
    pub placement: PlacementStrategy,
    /// Load- and locality-aware placement: live per-worker load feeds the
    /// partitioner (residual capacity, least-loaded/locality tie-breaks)
    /// and the incremental rebalancer re-places affected workflows on skew
    /// or recovery signals. Legacy (disabled) by default — runs are then
    /// bit-identical to pre-placement-layer builds.
    pub placement_config: PlacementConfig,
    /// Algorithm 1's `Cap[node]`: container capacity per worker offered to
    /// the partitioner — the artifact's `scale_limit`. Sized from the
    /// worker's *concurrency* (cores plus head-room), not its memory-max:
    /// packing a group beyond what a node can actually run concurrently
    /// just converts scheduling into queueing.
    pub partition_capacity: u32,
    /// Declarative fault schedule: node crashes, storage outages and link
    /// degradation windows, plus the recovery knobs (lease detection,
    /// backoff, dead-lettering). Empty by default.
    pub fault: FaultPlan,
    /// Overload protection: admission control, the remote-store circuit
    /// breaker, hedged exec retries and pool backpressure. All off by
    /// default (runs are then bit-identical to pre-overload builds).
    pub overload: OverloadConfig,
    /// Engine write-ahead journaling for crash recovery. Off by default
    /// (runs are then bit-identical to pre-journal builds).
    pub journal: JournalConfig,
    /// Online SLO burn-rate monitoring: per-workflow latency objectives
    /// evaluated deterministically on completions, with multi-window
    /// burn-rate alerting. `None` (the default) evaluates nothing and
    /// draws no RNG — runs are then bit-identical to pre-SLO builds.
    pub slo: Option<SloConfig>,
    /// Closed-loop SLO-driven degradation: burn-rate alerts move the
    /// offending workflow through Throttled → Shedding with half-open
    /// probing recovery, steering per-workflow admission, shed priority
    /// and hedging. Requires `slo`. `None` (the default) acts on nothing
    /// and draws no RNG — runs are then bit-identical to pre-degradation
    /// builds.
    pub degrade: Option<DegradeConfig>,
    /// Online gray-failure health detection: per-worker exec latency and
    /// failure statistics scored against the fleet median (MAD outlier
    /// test) drive a Probation → Quarantined → half-open Reinstating
    /// state machine. `None` (the default) watches nothing and draws no
    /// RNG — runs are then bit-identical to pre-detector builds.
    pub health: Option<HealthConfig>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            workers: 7,
            mode: ScheduleMode::WorkerSp,
            faastore: true,
            seed: 0xFAA5_F10E,
            node_caps: NodeCaps::default(),
            container: ContainerConfig::default(),
            worker_bandwidth: 1.25e9, // 10 Gbit/s
            storage_bandwidth: 50e6,  // 50 MB/s (§5.4 default)
            remote_store: RemoteStoreConfig::default(),
            lan: MessageModel::lan_tcp(),
            local_rpc: MessageModel::local_rpc(),
            master_task_cost: SimDuration::from_millis(18),
            worker_engine_cost: SimDuration::from_millis_f64(3.5),
            mu: 32 << 20,
            timeout: SimDuration::from_secs(60),
            repartition_every: None,
            qos_target: None,
            trace: false,
            trace_capacity: 1 << 20,
            sample_every: None,
            sample_capacity: 4096,
            exec_failure_rate: 0.0,
            max_exec_retries: 3,
            reclamation: ReclamationMode::default(),
            placement: PlacementStrategy::WorstFit,
            placement_config: PlacementConfig::legacy(),
            partition_capacity: 12,
            fault: FaultPlan::default(),
            overload: OverloadConfig::default(),
            journal: JournalConfig::default(),
            slo: None,
            degrade: None,
            health: None,
        }
    }
}

impl ClusterConfig {
    /// The master/storage node id (always node 0: the artifact uses "1 node
    /// for remote storage and queries generating").
    pub const MASTER_NODE: NodeId = NodeId::new(0);

    /// Node id of worker `i` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i >= workers`.
    pub fn worker_node(&self, i: u32) -> NodeId {
        assert!(i < self.workers, "worker index {i} out of range");
        NodeId::new(i + 1)
    }

    /// Worker index of a node id, or `None` for the master node.
    pub fn worker_index(&self, node: NodeId) -> Option<usize> {
        let idx = node.index();
        (idx >= 1 && idx <= self.workers as usize).then(|| idx - 1)
    }

    /// Total node count (workers + master/storage).
    pub fn node_count(&self) -> usize {
        self.workers as usize + 1
    }

    /// Per-worker container capacity offered to Algorithm 1 (`Cap[node]`).
    pub fn worker_capacity(&self) -> u32 {
        self.partition_capacity
    }

    /// Containers a worker's memory can physically host.
    pub fn memory_capacity(&self) -> u32 {
        (self.node_caps.mem / self.container.container_mem) as u32
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when a field is out of range.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("at least one worker is required".to_string());
        }
        if !(self.worker_bandwidth.is_finite() && self.worker_bandwidth > 0.0) {
            return Err("worker_bandwidth must be positive".to_string());
        }
        if !(self.storage_bandwidth.is_finite() && self.storage_bandwidth > 0.0) {
            return Err("storage_bandwidth must be positive".to_string());
        }
        if !(0.0..=1.0).contains(&self.exec_failure_rate) {
            return Err(format!(
                "exec_failure_rate must be in [0,1], got {}",
                self.exec_failure_rate
            ));
        }
        if self.partition_capacity == 0 {
            return Err("partition_capacity must be positive".to_string());
        }
        if self.placement_config.enabled {
            if self.placement_config.skew_threshold_pct < 100 {
                return Err(format!(
                    "placement skew_threshold_pct must be >= 100, got {}",
                    self.placement_config.skew_threshold_pct
                ));
            }
            if self.placement_config.rebalance_cooldown == 0 {
                return Err(
                    "placement rebalance_cooldown must be positive when enabled".to_string()
                );
            }
        }
        if self.trace && self.trace_capacity == 0 {
            return Err("trace_capacity must be positive when trace is on".to_string());
        }
        if let Some(every) = self.sample_every {
            if every <= SimDuration::ZERO {
                return Err("sample_every must be positive".to_string());
            }
            if self.sample_capacity == 0 {
                return Err("sample_capacity must be positive when sampling is on".to_string());
            }
        }
        self.fault.validate(self.workers)?;
        for e in &self.fault.engine_crashes {
            match (e.target, self.mode) {
                (EngineTarget::Master, ScheduleMode::WorkerSp) => {
                    return Err(
                        "engine crash targets the central engine but WorkerSP has none".to_string(),
                    );
                }
                (EngineTarget::Worker(w), ScheduleMode::MasterSp) => {
                    return Err(format!(
                        "engine crash targets worker engine {w} but MasterSP has no worker engines"
                    ));
                }
                _ => {}
            }
        }
        self.overload.validate(self.timeout, self.qos_target)?;
        if let Some(slo) = &self.slo {
            slo.validate()?;
        }
        if let Some(degrade) = &self.degrade {
            degrade.validate()?;
            if self.slo.is_none() {
                return Err(
                    "degrade requires an SLO config: burn-rate alerts are its only input signal"
                        .to_string(),
                );
            }
        }
        if let Some(health) = &self.health {
            health.validate()?;
        }
        if self.mode == ScheduleMode::MasterSp && self.faastore {
            return Err(
                "FaaStore requires WorkerSP (the baseline always uses the remote store)"
                    .to_string(),
            );
        }
        self.container.validate()
    }
}

impl ClientConfig {
    /// Total invocations this client will send (`u32::MAX` for manual).
    pub fn total_invocations(&self) -> u32 {
        match self {
            ClientConfig::ClosedLoop { invocations } => *invocations,
            ClientConfig::OpenLoop { invocations, .. } => *invocations,
            ClientConfig::Manual => u32::MAX,
        }
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when a field is out of range.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            ClientConfig::ClosedLoop { invocations } => {
                if *invocations == 0 {
                    return Err("closed-loop client needs at least 1 invocation".into());
                }
            }
            ClientConfig::OpenLoop {
                per_minute,
                invocations,
            } => {
                if !(per_minute.is_finite() && *per_minute > 0.0) {
                    return Err("open-loop rate must be positive".into());
                }
                if *invocations == 0 {
                    return Err("open-loop client needs at least 1 invocation".into());
                }
            }
            ClientConfig::Manual => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate_and_match_the_paper() {
        let c = ClusterConfig::default();
        assert!(c.validate().is_ok());
        assert_eq!(c.workers, 7);
        assert_eq!(c.storage_bandwidth, 50e6);
        assert_eq!(c.node_count(), 8);
        assert_eq!(c.worker_capacity(), 12);
        assert_eq!(c.memory_capacity(), 128);
    }

    #[test]
    fn node_id_mapping_round_trips() {
        let c = ClusterConfig::default();
        assert_eq!(c.worker_node(0), NodeId::new(1));
        assert_eq!(c.worker_index(NodeId::new(1)), Some(0));
        assert_eq!(c.worker_index(ClusterConfig::MASTER_NODE), None);
        assert_eq!(c.worker_index(NodeId::new(7)), Some(6));
        assert_eq!(c.worker_index(NodeId::new(8)), None);
    }

    #[test]
    fn inconsistent_slo_config_is_rejected() {
        use crate::slo::SloObjective;
        let mut c = ClusterConfig {
            slo: Some(SloConfig {
                objectives: vec![SloObjective {
                    workflow: "wf".to_string(),
                    ..SloObjective::default()
                }],
            }),
            ..ClusterConfig::default()
        };
        assert!(c.validate().is_ok());
        c.slo = Some(SloConfig { objectives: vec![] });
        assert!(c.validate().is_err());
        c.slo = Some(SloConfig {
            objectives: vec![SloObjective {
                workflow: "wf".to_string(),
                error_budget: 0.0,
                ..SloObjective::default()
            }],
        });
        assert!(c.validate().is_err());
    }

    #[test]
    fn degrade_requires_slo_and_valid_knobs() {
        use crate::slo::SloObjective;
        // Degradation without an SLO monitor has no input signal.
        let mut c = ClusterConfig {
            degrade: Some(DegradeConfig::default()),
            ..ClusterConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("requires an SLO"));
        c.slo = Some(SloConfig {
            objectives: vec![SloObjective {
                workflow: "wf".to_string(),
                ..SloObjective::default()
            }],
        });
        assert!(c.validate().is_ok());
        // Out-of-range degradation knobs are rejected through the cluster
        // validator, not just DegradeConfig::validate.
        c.degrade = Some(DegradeConfig {
            tighten: 1.5,
            ..DegradeConfig::default()
        });
        assert!(c.validate().unwrap_err().contains("tighten"));
    }

    #[test]
    fn health_knobs_are_validated_through_the_cluster() {
        let mut c = ClusterConfig {
            health: Some(HealthConfig::default()),
            ..ClusterConfig::default()
        };
        assert!(c.validate().is_ok());
        c.health = Some(HealthConfig {
            mad_threshold: -1.0,
            ..HealthConfig::default()
        });
        assert!(c.validate().unwrap_err().contains("mad_threshold"));
    }

    #[test]
    fn masterp_with_faastore_is_rejected() {
        let c = ClusterConfig {
            mode: ScheduleMode::MasterSp,
            faastore: true,
            ..ClusterConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn zero_admission_queue_capacity_is_rejected() {
        use crate::overload::{AdmissionConfig, OverloadConfig};
        let c = ClusterConfig {
            overload: OverloadConfig {
                admission: Some(AdmissionConfig {
                    queue_capacity: 0,
                    ..AdmissionConfig::default()
                }),
                ..OverloadConfig::default()
            },
            ..ClusterConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("queue_capacity"));
    }

    #[test]
    fn deadline_aware_shedding_needs_a_qos_target() {
        use crate::overload::{AdmissionConfig, OverloadConfig, ShedPolicy};
        let overload = OverloadConfig {
            admission: Some(AdmissionConfig {
                queue_capacity: 4,
                policy: ShedPolicy::DeadlineAware,
            }),
            ..OverloadConfig::default()
        };
        let c = ClusterConfig {
            overload,
            ..ClusterConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("qos_target"));
        let c = ClusterConfig {
            overload,
            qos_target: Some(SimDuration::from_secs(5)),
            ..ClusterConfig::default()
        };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn hedge_delay_must_be_below_the_timeout() {
        use crate::overload::{HedgeConfig, OverloadConfig};
        let c = ClusterConfig {
            overload: OverloadConfig {
                hedge: Some(HedgeConfig {
                    delay: SimDuration::from_secs(60),
                    ..HedgeConfig::default()
                }),
                ..OverloadConfig::default()
            },
            ..ClusterConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("timeout"));
        let c = ClusterConfig {
            overload: OverloadConfig {
                hedge: Some(HedgeConfig {
                    delay: SimDuration::ZERO,
                    ..HedgeConfig::default()
                }),
                ..OverloadConfig::default()
            },
            ..ClusterConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn engine_crash_targets_must_match_the_mode() {
        use crate::fault::{EngineCrash, EngineTarget};
        let mut fault = FaultPlan::default();
        fault.engine_crashes.push(EngineCrash {
            target: EngineTarget::Master,
            at: SimDuration::from_secs(1),
            restart_after: SimDuration::from_secs(1),
        });
        let c = ClusterConfig {
            fault: fault.clone(),
            ..ClusterConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("WorkerSP"));
        let c = ClusterConfig {
            mode: ScheduleMode::MasterSp,
            faastore: false,
            fault,
            ..ClusterConfig::default()
        };
        assert!(c.validate().is_ok());

        let mut fault = FaultPlan::default();
        fault.engine_crashes.push(EngineCrash {
            target: EngineTarget::Worker(0),
            at: SimDuration::from_secs(1),
            restart_after: SimDuration::ZERO,
        });
        let c = ClusterConfig {
            mode: ScheduleMode::MasterSp,
            faastore: false,
            fault,
            ..ClusterConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("MasterSP"));
    }

    #[test]
    fn zero_breaker_thresholds_are_rejected() {
        use crate::overload::{BreakerConfig, OverloadConfig};
        for bad in [
            BreakerConfig {
                failure_threshold: 0,
                ..BreakerConfig::default()
            },
            BreakerConfig {
                half_open_probes: 0,
                ..BreakerConfig::default()
            },
            BreakerConfig {
                open_duration: SimDuration::ZERO,
                ..BreakerConfig::default()
            },
            BreakerConfig {
                jitter: 1.5,
                ..BreakerConfig::default()
            },
        ] {
            let c = ClusterConfig {
                overload: OverloadConfig {
                    breaker: Some(bad),
                    ..OverloadConfig::default()
                },
                ..ClusterConfig::default()
            };
            assert!(c.validate().is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn zero_backpressure_knobs_are_rejected() {
        use crate::overload::{BackpressureConfig, OverloadConfig};
        for bad in [
            BackpressureConfig {
                queue_threshold: 0,
                ..BackpressureConfig::default()
            },
            BackpressureConfig {
                defer_delay: SimDuration::ZERO,
                ..BackpressureConfig::default()
            },
            BackpressureConfig {
                max_defers: 0,
                ..BackpressureConfig::default()
            },
        ] {
            let c = ClusterConfig {
                overload: OverloadConfig {
                    backpressure: Some(bad),
                    ..OverloadConfig::default()
                },
                ..ClusterConfig::default()
            };
            assert!(c.validate().is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn client_validation() {
        assert!(ClientConfig::ClosedLoop { invocations: 0 }
            .validate()
            .is_err());
        assert!(ClientConfig::OpenLoop {
            per_minute: 0.0,
            invocations: 5
        }
        .validate()
        .is_err());
        assert!(ClientConfig::Manual.validate().is_ok());
        assert_eq!(
            ClientConfig::ClosedLoop { invocations: 3 }.total_invocations(),
            3
        );
    }
}
