//! Per-invocation runtime bookkeeping on the cluster side.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use faasflow_scheduler::{Assignment, Version};
use faasflow_sim::{ContainerId, EventId, FunctionId, InvocationId, SimTime, WorkflowId};
use faasflow_store::Placement;
use faasflow_wdl::WorkflowDag;

use crate::metrics::TransferLedger;

/// Identifies one executor instance of a function node within an
/// invocation — the unit the container runtime admits and runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceToken {
    /// The workflow.
    pub workflow: WorkflowId,
    /// The invocation.
    pub invocation: InvocationId,
    /// The function node.
    pub function: FunctionId,
    /// Instance index in `0..parallelism`.
    pub instance: u32,
    /// Recovery epoch of the invocation when the instance was spawned.
    /// Crash recovery restarts an invocation under a bumped epoch, so
    /// events carrying pre-crash tokens miss every lookup keyed by token
    /// and are discarded as stale.
    pub epoch: u32,
}

/// Lifecycle state of one admitted instance.
#[derive(Debug, Clone, Copy)]
pub(crate) struct InstanceState {
    /// The container executing this instance.
    pub container: ContainerId,
    /// Worker index hosting it.
    pub worker: usize,
    /// Worker index whose engine triggered the instance and tracks its
    /// node's state. Equal to `worker` unless a hedge win transplanted
    /// execution elsewhere — the completion must still report back here.
    pub home: usize,
    /// Input transfers still in flight.
    pub pending_inputs: u32,
    /// Execution attempts that failed and were retried.
    pub retries: u32,
    /// Cluster-wide admission sequence number. A crashed worker can
    /// restart and re-admit the *same* token on the same worker before a
    /// stale `ExecDone` from the pre-crash admission drains; the sequence
    /// number fences those events where token+worker matching cannot.
    pub seq: u64,
    /// The compute phase finished (output writes may still be in flight).
    /// A hedge arriving after this point has lost the race.
    pub exec_done: bool,
    /// When the current compute attempt started (adaptive-hedge latency
    /// sample; meaningless until the first `ExecStarted`).
    pub exec_started: SimTime,
}

/// Cluster-side state of one in-flight invocation.
#[derive(Debug)]
pub(crate) struct InvState {
    /// Partition version the invocation is pinned to (red-black).
    pub version: Version,
    /// Pinned DAG snapshot.
    pub dag: Arc<WorkflowDag>,
    /// Pinned placement.
    pub assignment: Arc<Assignment>,
    /// Arrival instant (latency measurement start).
    pub started: SimTime,
    /// Exit nodes still to complete.
    pub exits_remaining: usize,
    /// The scheduled timeout event.
    pub timeout_event: Option<EventId>,
    /// Whether the timeout fired before completion (latency already
    /// recorded at the cap).
    pub timed_out: bool,
    /// Whether the invocation completed.
    pub completed: bool,
    /// Nodes whose every instance finished (core-side mirror of the
    /// engines' state, used to know which producers actually ran).
    pub completed_nodes: HashSet<FunctionId>,
    /// Remaining instance completions per spawned node.
    pub instances_remaining: HashMap<FunctionId, u32>,
    /// Live instance lifecycle states.
    pub instances: HashMap<InstanceToken, InstanceState>,
    /// Output placement decided per producer node.
    pub placements: HashMap<FunctionId, Placement>,
    /// Transfer accounting.
    pub ledger: TransferLedger,
    /// Function nodes whose dispatch was already accepted (engine-crash
    /// replay can re-issue `AssignTask`/`TriggerFunction`; the second copy
    /// is a duplicate-suppression, not a second spawn).
    pub dispatched: HashSet<FunctionId>,
    /// Exit nodes whose completion report was already accepted (replay can
    /// re-emit `ExitComplete`; exactly-once terminal accounting depends on
    /// dropping the duplicates).
    pub reported_exits: HashSet<FunctionId>,
    /// Current recovery epoch; bumped each time crash recovery restarts
    /// the invocation (stale-event fencing).
    pub epoch: u32,
    /// Crash recoveries performed for this invocation (dead-letter once it
    /// exceeds the plan's `max_recovery_attempts`).
    pub recovery_attempts: u32,
    /// Admitted as a degradation recovery probe: its terminal outcome
    /// feeds the controller's restore/relapse decision.
    pub degrade_probe: bool,
}

impl InvState {
    pub(crate) fn new(
        version: Version,
        dag: Arc<WorkflowDag>,
        assignment: Arc<Assignment>,
        started: SimTime,
    ) -> Self {
        let exits_remaining = dag.exit_nodes().len();
        InvState {
            version,
            dag,
            assignment,
            started,
            exits_remaining,
            timeout_event: None,
            timed_out: false,
            completed: false,
            completed_nodes: HashSet::new(),
            instances_remaining: HashMap::new(),
            instances: HashMap::new(),
            placements: HashMap::new(),
            ledger: TransferLedger::default(),
            dispatched: HashSet::new(),
            reported_exits: HashSet::new(),
            epoch: 0,
            recovery_attempts: 0,
            degrade_probe: false,
        }
    }

    /// Splits `total` bytes across `parallelism` instances; instance 0
    /// takes the remainder so shares sum exactly to `total`.
    pub(crate) fn share(total: u64, parallelism: u32, instance: u32) -> u64 {
        let k = u64::from(parallelism.max(1));
        let base = total / k;
        if instance == 0 {
            total - base * (k - 1)
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_total() {
        for total in [0u64, 1, 7, 100, 1 << 20] {
            for k in [1u32, 2, 3, 7] {
                let sum: u64 = (0..k).map(|i| InvState::share(total, k, i)).sum();
                assert_eq!(sum, total, "total={total} k={k}");
            }
        }
    }

    #[test]
    fn instance_zero_takes_remainder() {
        assert_eq!(InvState::share(10, 3, 0), 4);
        assert_eq!(InvState::share(10, 3, 1), 3);
        assert_eq!(InvState::share(10, 3, 2), 3);
    }
}
