//! Online SLO burn-rate monitoring.
//!
//! A latency SLO per workflow ("p-fraction of invocations complete within
//! `target`", expressed as an error budget: the allowed fraction of slow
//! invocations) evaluated **deterministically** on completion events — no
//! wall clock, no RNG, no sampling. Alerting follows the multi-window
//! burn-rate pattern from SRE practice: the *burn rate* is how fast the
//! error budget is being consumed relative to the allowed rate, and an
//! alert fires only when both a fast (small) and a slow (large) sliding
//! window exceed their thresholds — the fast window gives low detection
//! latency, the slow window suppresses one-off blips.
//!
//! Windows come in two flavours, selectable per objective via
//! [`WindowMode`]: **count-based** (last N completed invocations — a pure
//! fold over the deterministic completion stream, the default) and
//! **time-based** (completions within the last Δ of *simulated* time —
//! matching SRE practice for low-rate workflows whose last N completions
//! may span hours). Both are deterministic: the time windows use simulated
//! instants, never the wall clock. With [`crate::ClusterConfig::slo`]
//! unset (the default) nothing is evaluated, no RNG is drawn, and every
//! pre-SLO run stays bit-identical.

use std::collections::VecDeque;

use faasflow_sim::{SimDuration, SimTime, WorkflowId};
use serde::{Deserialize, Serialize};

/// Which kind of sliding window an objective's burn rates are computed
/// over.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum WindowMode {
    /// Last `fast_window` / `slow_window` completions (the default). Order
    /// is deterministic, so the monitor is a pure fold over the stream.
    #[default]
    Count,
    /// Completions within the trailing `fast` / `slow` span of simulated
    /// time (e.g. 5 min / 1 h). The count fields are ignored in this mode.
    Time {
        /// Span of the fast (detection) window.
        fast: SimDuration,
        /// Span of the slow (confirmation) window. Must be at least `fast`.
        slow: SimDuration,
    },
}

/// One per-workflow latency objective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloObjective {
    /// Name of the workflow the objective applies to (matched against
    /// [`crate::Cluster::register`]ed workflow names; an objective naming
    /// a workflow that is never registered simply never evaluates).
    pub workflow: String,
    /// Latency target: an invocation slower than this (or timed out, or
    /// dead-lettered/shed before completing) consumes error budget.
    pub target: SimDuration,
    /// Allowed fraction of bad invocations, in `(0, 1]`. Burn rate is the
    /// observed bad fraction divided by this budget: burn 1.0 = consuming
    /// budget exactly as fast as allowed.
    pub error_budget: f64,
    /// Completions in the fast (detection) sliding window (count mode).
    pub fast_window: u32,
    /// Completions in the slow (confirmation) sliding window (count mode).
    /// Must be at least `fast_window`.
    pub slow_window: u32,
    /// Burn-rate threshold the fast window must exceed to fire.
    pub fast_burn: f64,
    /// Burn-rate threshold the slow window must exceed to fire. Must not
    /// exceed `fast_burn` (the slow window smooths, so its threshold is
    /// the lower of the pair).
    pub slow_burn: f64,
    /// Count-based (default) or wall-clock-spanned windows.
    pub window: WindowMode,
}

impl Default for SloObjective {
    fn default() -> Self {
        SloObjective {
            workflow: String::new(),
            target: SimDuration::from_secs(1),
            error_budget: 0.05,
            // The classic 1h/6h multi-window pair, translated to counts.
            fast_window: 8,
            slow_window: 32,
            fast_burn: 2.0,
            slow_burn: 1.0,
            window: WindowMode::Count,
        }
    }
}

impl SloObjective {
    /// Checks the objective for internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.workflow.is_empty() {
            return Err("SLO objective names an empty workflow".to_string());
        }
        if self.target == SimDuration::ZERO {
            return Err(format!("SLO target for '{}' is zero", self.workflow));
        }
        if !(self.error_budget > 0.0 && self.error_budget <= 1.0) {
            return Err(format!(
                "SLO error budget for '{}' must be in (0, 1], got {}",
                self.workflow, self.error_budget
            ));
        }
        match self.window {
            WindowMode::Count => {
                if self.fast_window == 0 {
                    return Err(format!("SLO fast window for '{}' is zero", self.workflow));
                }
                if self.slow_window < self.fast_window {
                    return Err(format!(
                        "SLO slow window for '{}' ({}) is smaller than the fast window ({})",
                        self.workflow, self.slow_window, self.fast_window
                    ));
                }
            }
            WindowMode::Time { fast, slow } => {
                if fast == SimDuration::ZERO {
                    return Err(format!(
                        "SLO fast time window for '{}' is zero",
                        self.workflow
                    ));
                }
                if slow < fast {
                    return Err(format!(
                        "SLO slow time window for '{}' is smaller than the fast window",
                        self.workflow
                    ));
                }
            }
        }
        if self.fast_burn <= 0.0 || !self.fast_burn.is_finite() {
            return Err(format!(
                "SLO fast burn threshold for '{}' must be positive and finite",
                self.workflow
            ));
        }
        if self.slow_burn <= 0.0 || !self.slow_burn.is_finite() {
            return Err(format!(
                "SLO slow burn threshold for '{}' must be positive and finite",
                self.workflow
            ));
        }
        if self.slow_burn > self.fast_burn {
            return Err(format!(
                "SLO slow burn threshold for '{}' ({}) exceeds the fast threshold ({})",
                self.workflow, self.slow_burn, self.fast_burn
            ));
        }
        Ok(())
    }
}

/// The SLO monitor configuration: a set of latency objectives.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SloConfig {
    /// Objectives, evaluated in order on every completion of the named
    /// workflow. Several objectives may target the same workflow (e.g. a
    /// tight p95-style target and a loose p99-style one).
    pub objectives: Vec<SloObjective>,
}

impl SloConfig {
    /// Validates every objective.
    pub fn validate(&self) -> Result<(), String> {
        if self.objectives.is_empty() {
            return Err("SLO config has no objectives".to_string());
        }
        for objective in &self.objectives {
            objective.validate()?;
        }
        Ok(())
    }
}

/// Final burn-rate state of one objective, for the per-workflow Prometheus
/// gauges (`faasflow_slo_burn_rate{workflow=...,window=...}`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloObjectiveSnapshot {
    /// The workflow the objective names.
    pub workflow: String,
    /// Fast-window burn rate at report time.
    pub fast_burn: f64,
    /// Slow-window burn rate at report time.
    pub slow_burn: f64,
    /// Whether the alert was active at report time.
    pub alert: bool,
}

/// Aggregate SLO counters for [`crate::RunReport`]. All-zero (and omitted
/// from serialized reports) when no [`SloConfig`] is set.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SloReport {
    /// Configured objectives.
    pub objectives: u32,
    /// Completion events evaluated against some objective.
    pub evaluations: u64,
    /// Evaluations that consumed error budget (missed the target, timed
    /// out, or ended dead-lettered/shed).
    pub violations: u64,
    /// Alert transitions inactive → active.
    pub alerts_fired: u64,
    /// Alert transitions active → inactive.
    pub alerts_resolved: u64,
    /// Highest fast-window burn rate observed across all objectives.
    pub worst_fast_burn: f64,
    /// Highest slow-window burn rate observed across all objectives.
    pub worst_slow_burn: f64,
    /// Per-objective burn-rate state at report time, in objective order.
    pub per_objective: Vec<SloObjectiveSnapshot>,
}

impl SloReport {
    /// True when no SLO was configured and nothing happened — the report
    /// block is then omitted from serialized output so pre-SLO goldens
    /// stay bit-identical.
    pub fn is_zero(&self) -> bool {
        *self == SloReport::default()
    }
}

/// A sliding window of good/bad completion outcomes.
#[derive(Debug)]
enum BurnWindow {
    /// Last `cap` completions.
    Count {
        window: VecDeque<bool>,
        cap: usize,
        bad: u32,
    },
    /// Completions within the trailing `period` of simulated time.
    Time {
        window: VecDeque<(SimTime, bool)>,
        period: SimDuration,
        bad: u32,
    },
}

impl BurnWindow {
    fn count(cap: u32) -> Self {
        let cap = cap as usize;
        BurnWindow::Count {
            window: VecDeque::with_capacity(cap),
            cap,
            bad: 0,
        }
    }

    fn time(period: SimDuration) -> Self {
        BurnWindow::Time {
            window: VecDeque::new(),
            period,
            bad: 0,
        }
    }

    fn push(&mut self, now: SimTime, bad: bool) {
        match self {
            BurnWindow::Count {
                window,
                cap,
                bad: bad_count,
            } => {
                if window.len() == *cap && window.pop_front() == Some(true) {
                    *bad_count -= 1;
                }
                window.push_back(bad);
                if bad {
                    *bad_count += 1;
                }
            }
            BurnWindow::Time {
                window,
                period,
                bad: bad_count,
            } => {
                // Evict entries that have aged out of the trailing span.
                while let Some(&(t, was_bad)) = window.front() {
                    if now - t < *period {
                        break;
                    }
                    window.pop_front();
                    if was_bad {
                        *bad_count -= 1;
                    }
                }
                window.push_back((now, bad));
                if bad {
                    *bad_count += 1;
                }
            }
        }
    }

    /// Bad fraction over the window contents, divided by the error budget.
    fn burn(&self, budget: f64) -> f64 {
        let (bad, len) = match self {
            BurnWindow::Count { window, bad, .. } => (*bad, window.len()),
            BurnWindow::Time { window, bad, .. } => (*bad, window.len()),
        };
        if len == 0 {
            0.0
        } else {
            (f64::from(bad) / len as f64) / budget
        }
    }
}

/// An alert state transition produced by one completion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum SloTransition {
    /// Both windows crossed their thresholds; the alert went active.
    Fired {
        /// The objective's workflow.
        workflow: WorkflowId,
        /// Fast-window burn rate at the transition.
        fast_burn: f64,
        /// Slow-window burn rate at the transition.
        slow_burn: f64,
    },
    /// Some window dropped below its threshold; the alert went inactive.
    Resolved {
        /// The objective's workflow.
        workflow: WorkflowId,
    },
}

/// Everything one terminal outcome told the monitor — consumed by the
/// degradation controller ([`crate::DegradeConfig`]) as its input signal.
#[derive(Debug, Default)]
pub(crate) struct SloVerdict {
    /// Alert transitions this completion caused, in objective order.
    pub transitions: Vec<SloTransition>,
    /// At least one objective evaluated this completion.
    pub evaluated: bool,
    /// Some evaluating objective judged the completion bad (budget burn).
    pub bad: bool,
    /// Some objective bound to this workflow is alerting *after* this
    /// evaluation.
    pub alert_active: bool,
}

#[derive(Debug)]
struct ObjectiveState {
    spec: SloObjective,
    /// Resolved at registration time; `None` until (and unless) a workflow
    /// with the matching name registers.
    workflow: Option<WorkflowId>,
    fast: BurnWindow,
    slow: BurnWindow,
    alert: bool,
}

/// Per-cluster monitor state: one [`ObjectiveState`] per configured
/// objective, folded over the deterministic completion stream.
#[derive(Debug)]
pub(crate) struct SloMonitor {
    objectives: Vec<ObjectiveState>,
    report: SloReport,
}

impl SloMonitor {
    pub(crate) fn new(config: &SloConfig) -> Self {
        let objectives: Vec<ObjectiveState> = config
            .objectives
            .iter()
            .map(|spec| {
                let (fast, slow) = match spec.window {
                    WindowMode::Count => (
                        BurnWindow::count(spec.fast_window),
                        BurnWindow::count(spec.slow_window),
                    ),
                    WindowMode::Time { fast, slow } => {
                        (BurnWindow::time(fast), BurnWindow::time(slow))
                    }
                };
                ObjectiveState {
                    workflow: None,
                    fast,
                    slow,
                    alert: false,
                    spec: spec.clone(),
                }
            })
            .collect();
        let report = SloReport {
            objectives: objectives.len() as u32,
            ..SloReport::default()
        };
        SloMonitor { objectives, report }
    }

    /// Binds objectives naming `name` to the registered workflow id.
    pub(crate) fn bind(&mut self, name: &str, workflow: WorkflowId) {
        for state in &mut self.objectives {
            if state.spec.workflow == name {
                state.workflow = Some(workflow);
            }
        }
    }

    /// Whether any objective names this workflow (used to decide which
    /// workflows the degradation controller tracks).
    pub(crate) fn has_objective_for(&self, name: &str) -> bool {
        self.objectives.iter().any(|s| s.spec.workflow == name)
    }

    /// Evaluates one terminal invocation outcome at simulated instant
    /// `now`. `bad_outcome` marks terminal states that never produced a
    /// latency (dead-letter, shed): those always consume budget.
    pub(crate) fn evaluate(
        &mut self,
        now: SimTime,
        workflow: WorkflowId,
        e2e: SimDuration,
        bad_outcome: bool,
    ) -> SloVerdict {
        let mut verdict = SloVerdict::default();
        for state in &mut self.objectives {
            if state.workflow != Some(workflow) {
                continue;
            }
            let bad = bad_outcome || e2e > state.spec.target;
            verdict.evaluated = true;
            verdict.bad |= bad;
            self.report.evaluations += 1;
            if bad {
                self.report.violations += 1;
            }
            state.fast.push(now, bad);
            state.slow.push(now, bad);
            let fast_burn = state.fast.burn(state.spec.error_budget);
            let slow_burn = state.slow.burn(state.spec.error_budget);
            if fast_burn > self.report.worst_fast_burn {
                self.report.worst_fast_burn = fast_burn;
            }
            if slow_burn > self.report.worst_slow_burn {
                self.report.worst_slow_burn = slow_burn;
            }
            let firing = fast_burn >= state.spec.fast_burn && slow_burn >= state.spec.slow_burn;
            if firing && !state.alert {
                state.alert = true;
                self.report.alerts_fired += 1;
                verdict.transitions.push(SloTransition::Fired {
                    workflow,
                    fast_burn,
                    slow_burn,
                });
            } else if !firing && state.alert {
                state.alert = false;
                self.report.alerts_resolved += 1;
                verdict
                    .transitions
                    .push(SloTransition::Resolved { workflow });
            }
            verdict.alert_active |= state.alert;
        }
        verdict
    }

    pub(crate) fn report(&self) -> SloReport {
        let mut report = self.report.clone();
        report.per_objective = self
            .objectives
            .iter()
            .map(|s| SloObjectiveSnapshot {
                workflow: s.spec.workflow.clone(),
                fast_burn: s.fast.burn(s.spec.error_budget),
                slow_burn: s.slow.burn(s.spec.error_budget),
                alert: s.alert,
            })
            .collect();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn objective(workflow: &str) -> SloObjective {
        SloObjective {
            workflow: workflow.to_string(),
            target: SimDuration::from_millis(100),
            error_budget: 0.1,
            fast_window: 2,
            slow_window: 4,
            fast_burn: 5.0,
            slow_burn: 2.5,
            window: WindowMode::Count,
        }
    }

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn validate_rejects_inconsistent_objectives() {
        assert!(objective("wf").validate().is_ok());
        assert!(objective("").validate().is_err());
        let mut o = objective("wf");
        o.target = SimDuration::ZERO;
        assert!(o.validate().is_err());
        let mut o = objective("wf");
        o.error_budget = 0.0;
        assert!(o.validate().is_err());
        let mut o = objective("wf");
        o.error_budget = 1.5;
        assert!(o.validate().is_err());
        let mut o = objective("wf");
        o.fast_window = 0;
        assert!(o.validate().is_err());
        let mut o = objective("wf");
        o.slow_window = 1;
        assert!(o.validate().is_err());
        let mut o = objective("wf");
        o.slow_burn = o.fast_burn + 1.0;
        assert!(o.validate().is_err());
        // Time-mode consistency: zero fast span, slow < fast.
        let mut o = objective("wf");
        o.window = WindowMode::Time {
            fast: SimDuration::ZERO,
            slow: SimDuration::from_secs(60),
        };
        assert!(o.validate().is_err());
        let mut o = objective("wf");
        o.window = WindowMode::Time {
            fast: SimDuration::from_secs(60),
            slow: SimDuration::from_secs(10),
        };
        assert!(o.validate().is_err());
        // Time mode ignores the count fields entirely.
        let mut o = objective("wf");
        o.fast_window = 0;
        o.slow_window = 0;
        o.window = WindowMode::Time {
            fast: SimDuration::from_secs(60),
            slow: SimDuration::from_secs(360),
        };
        assert!(o.validate().is_ok());
        assert!(SloConfig { objectives: vec![] }.validate().is_err());
        assert!(SloConfig {
            objectives: vec![objective("wf")]
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn window_evicts_and_counts() {
        let mut w = BurnWindow::count(2);
        assert_eq!(w.burn(0.1), 0.0);
        w.push(at(0), true);
        assert!((w.burn(0.1) - 10.0).abs() < 1e-12); // 1/1 bad / 0.1
        w.push(at(1), false);
        assert!((w.burn(0.1) - 5.0).abs() < 1e-12); // 1/2 bad / 0.1
        w.push(at(2), false); // evicts the bad one
        assert_eq!(w.burn(0.1), 0.0);
    }

    #[test]
    fn time_window_evicts_by_age_not_count() {
        let mut w = BurnWindow::time(SimDuration::from_millis(100));
        w.push(at(0), true);
        w.push(at(10), true);
        w.push(at(20), false);
        // All three inside the span: 2/3 bad / 0.5 budget.
        assert!((w.burn(0.5) - (2.0 / 3.0) / 0.5).abs() < 1e-12);
        // 110 ms later the two bad entries (t=0, t=10) have aged out.
        w.push(at(110), false);
        assert_eq!(w.burn(0.5), 0.0);
        // Entries exactly `period` old are evicted (half-open window).
        let mut w = BurnWindow::time(SimDuration::from_millis(100));
        w.push(at(0), true);
        w.push(at(100), false);
        assert!((w.burn(1.0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn time_mode_monitor_fires_and_recovers_by_elapsed_time() {
        let mut o = objective("wf");
        o.window = WindowMode::Time {
            fast: SimDuration::from_millis(50),
            slow: SimDuration::from_millis(200),
        };
        o.fast_burn = 5.0;
        o.slow_burn = 2.5;
        let mut m = SloMonitor::new(&SloConfig {
            objectives: vec![o],
        });
        let wf = WorkflowId::new(0);
        m.bind("wf", wf);
        let slow = SimDuration::from_millis(500);
        let fast = SimDuration::from_millis(10);
        // A miss fires immediately (1/1 bad in both windows).
        let v = m.evaluate(at(0), wf, slow, false);
        assert!(matches!(
            v.transitions.as_slice(),
            [SloTransition::Fired { .. }]
        ));
        // 60 ms later the miss has left the fast window; one hit resolves.
        let v = m.evaluate(at(60), wf, fast, false);
        assert_eq!(
            v.transitions.as_slice(),
            [SloTransition::Resolved { workflow: wf }]
        );
        assert!(!v.alert_active);
    }

    #[test]
    fn alert_fires_once_and_resolves() {
        let mut m = SloMonitor::new(&SloConfig {
            objectives: vec![objective("wf")],
        });
        let wf = WorkflowId::new(0);
        m.bind("wf", wf);
        let slow = SimDuration::from_millis(500);
        let fast = SimDuration::from_millis(10);

        // First miss: fast burn = (1/1)/0.1 = 10 >= 5, slow = 10 >= 2.5
        // -> fires immediately, exactly once.
        let v = m.evaluate(at(0), wf, slow, false);
        assert!(matches!(
            v.transitions.as_slice(),
            [SloTransition::Fired { .. }]
        ));
        assert!(v.alert_active && v.bad && v.evaluated);
        // Still violating: no duplicate fire.
        assert!(m.evaluate(at(1), wf, slow, false).transitions.is_empty());
        assert!(m.evaluate(at(2), wf, slow, false).transitions.is_empty());

        // One hit: fast burn = (1/2)/0.1 = 5, still >= 5 -> no transition;
        // a second hit empties the fast window of misses -> resolves.
        let v = m.evaluate(at(3), wf, fast, false);
        assert!(v.transitions.is_empty() && v.alert_active && !v.bad);
        let v = m.evaluate(at(4), wf, fast, false);
        assert_eq!(
            v.transitions.as_slice(),
            [SloTransition::Resolved { workflow: wf }]
        );
        assert!(!v.alert_active);

        let report = m.report();
        assert_eq!(report.objectives, 1);
        assert_eq!(report.evaluations, 5);
        assert_eq!(report.violations, 3);
        assert_eq!(report.alerts_fired, 1);
        assert_eq!(report.alerts_resolved, 1);
        assert!(report.worst_fast_burn >= 10.0 - 1e-12);
        assert_eq!(report.per_objective.len(), 1);
        assert!(!report.per_objective[0].alert);
    }

    #[test]
    fn unbound_and_foreign_workflows_are_ignored() {
        let mut m = SloMonitor::new(&SloConfig {
            objectives: vec![objective("wf")],
        });
        // Not bound yet: nothing evaluates.
        let v = m.evaluate(at(0), WorkflowId::new(0), SimDuration::from_secs(5), false);
        assert!(v.transitions.is_empty() && !v.evaluated);
        assert_eq!(m.report().evaluations, 0);
        assert!(m.has_objective_for("wf"));
        assert!(!m.has_objective_for("other"));
        m.bind("other", WorkflowId::new(1)); // name mismatch: no binding
        m.bind("wf", WorkflowId::new(2));
        assert!(
            !m.evaluate(at(1), WorkflowId::new(1), SimDuration::from_secs(5), false)
                .evaluated
        );
        m.evaluate(at(2), WorkflowId::new(2), SimDuration::from_secs(5), false);
        assert_eq!(m.report().evaluations, 1);
        assert_eq!(m.report().violations, 1);
    }

    #[test]
    fn bad_outcome_counts_regardless_of_latency() {
        let mut m = SloMonitor::new(&SloConfig {
            objectives: vec![objective("wf")],
        });
        let wf = WorkflowId::new(0);
        m.bind("wf", wf);
        let v = m.evaluate(at(0), wf, SimDuration::ZERO, true);
        assert!(v.bad);
        assert_eq!(m.report().violations, 1);
    }

    #[test]
    fn zero_report_detection() {
        assert!(SloReport::default().is_zero());
        let configured = SloMonitor::new(&SloConfig {
            objectives: vec![objective("wf")],
        })
        .report();
        assert!(!configured.is_zero());
    }

    // ---- BurnWindow boundary cases ------------------------------------

    #[test]
    fn window_of_one_tracks_only_the_latest_outcome() {
        let mut o = objective("wf");
        o.fast_window = 1;
        o.slow_window = 1;
        o.fast_burn = 1.0;
        o.slow_burn = 1.0;
        let mut m = SloMonitor::new(&SloConfig {
            objectives: vec![o],
        });
        let wf = WorkflowId::new(0);
        m.bind("wf", wf);
        let slow = SimDuration::from_millis(500);
        let fast = SimDuration::from_millis(10);
        // Every outcome flips the alert: single-completion windows have no
        // hysteresis at all — the degenerate but legal configuration.
        assert!(matches!(
            m.evaluate(at(0), wf, slow, false).transitions.as_slice(),
            [SloTransition::Fired { .. }]
        ));
        assert!(matches!(
            m.evaluate(at(1), wf, fast, false).transitions.as_slice(),
            [SloTransition::Resolved { .. }]
        ));
        assert!(matches!(
            m.evaluate(at(2), wf, slow, false).transitions.as_slice(),
            [SloTransition::Fired { .. }]
        ));
        assert_eq!(m.report().alerts_fired, 2);
        assert_eq!(m.report().alerts_resolved, 1);
    }

    #[test]
    fn error_budget_boundaries() {
        // 0.0 and anything above 1.0 are rejected; 1.0 is the loosest
        // legal budget ("every invocation may be bad").
        let mut o = objective("wf");
        o.error_budget = 0.0;
        assert!(o.validate().is_err());
        o.error_budget = 1.0 + 1e-9;
        assert!(o.validate().is_err());
        o.error_budget = 1.0;
        assert!(o.validate().is_ok());
        // With budget 1.0 the burn rate equals the bad fraction, capped at
        // 1.0 — thresholds above 1.0 can then never fire.
        let mut always_bad = objective("wf");
        always_bad.error_budget = 1.0;
        always_bad.fast_burn = 1.0;
        always_bad.slow_burn = 1.0;
        let mut m = SloMonitor::new(&SloConfig {
            objectives: vec![always_bad],
        });
        let wf = WorkflowId::new(0);
        m.bind("wf", wf);
        let v = m.evaluate(at(0), wf, SimDuration::from_secs(9), false);
        assert!(matches!(
            v.transitions.as_slice(),
            [SloTransition::Fired { .. }]
        ));
        assert!((m.report().worst_fast_burn - 1.0).abs() < 1e-12);
        // Tiny budget: one miss in a window of 2 is already a 5x burn.
        let mut tight = objective("wf");
        tight.error_budget = 0.1;
        let m2 = SloMonitor::new(&SloConfig {
            objectives: vec![tight],
        });
        drop(m2); // construction alone must not fire anything
    }

    #[test]
    fn fire_then_immediately_resolve_hysteresis() {
        // fast window 2, slow window 4: a single miss fires; the alert
        // must survive the first following hit (fast burn still at the
        // threshold) and resolve only on the second — the multi-window
        // hysteresis that suppresses one-completion flapping.
        let mut m = SloMonitor::new(&SloConfig {
            objectives: vec![objective("wf")],
        });
        let wf = WorkflowId::new(0);
        m.bind("wf", wf);
        let slow = SimDuration::from_millis(500);
        let fast = SimDuration::from_millis(10);
        assert!(matches!(
            m.evaluate(at(0), wf, slow, false).transitions.as_slice(),
            [SloTransition::Fired { .. }]
        ));
        let v = m.evaluate(at(1), wf, fast, false);
        assert!(v.transitions.is_empty(), "one hit must not flap the alert");
        assert!(v.alert_active);
        let v = m.evaluate(at(2), wf, fast, false);
        assert!(matches!(
            v.transitions.as_slice(),
            [SloTransition::Resolved { .. }]
        ));
        // A fresh miss re-fires: fire/resolve counts stay paired.
        assert!(matches!(
            m.evaluate(at(3), wf, slow, false).transitions.as_slice(),
            [SloTransition::Fired { .. }]
        ));
        let r = m.report();
        assert_eq!(r.alerts_fired, 2);
        assert_eq!(r.alerts_resolved, 1);
    }

    #[test]
    fn disagreeing_windows_do_not_fire() {
        // A long run of hits fills the slow window with good outcomes;
        // a burst of 2 misses then saturates the fast window (burn 10)
        // while the slow window stays below its threshold — no alert.
        // Only once the slow window crosses too does the alert fire.
        let mut o = objective("wf");
        o.fast_window = 2;
        o.slow_window = 8;
        o.fast_burn = 5.0;
        o.slow_burn = 3.0; // slow window needs >= 3/8 bad at budget 0.1... (3/8)/0.1 = 3.75
        let mut m = SloMonitor::new(&SloConfig {
            objectives: vec![o],
        });
        let wf = WorkflowId::new(0);
        m.bind("wf", wf);
        let slow = SimDuration::from_millis(500);
        let fast = SimDuration::from_millis(10);
        for i in 0..8 {
            assert!(m.evaluate(at(i), wf, fast, false).transitions.is_empty());
        }
        // Two misses: fast burn = 10 >= 5, slow burn = (2/8)/0.1 = 2.5 < 3.
        assert!(m.evaluate(at(8), wf, slow, false).transitions.is_empty());
        let v = m.evaluate(at(9), wf, slow, false);
        assert!(
            v.transitions.is_empty(),
            "fast window alone must not fire: {v:?}"
        );
        assert!(!v.alert_active);
        // Third miss: slow burn = (3/8)/0.1 = 3.75 >= 3 -> both agree.
        let v = m.evaluate(at(10), wf, slow, false);
        assert!(matches!(
            v.transitions.as_slice(),
            [SloTransition::Fired { .. }]
        ));
        assert_eq!(m.report().alerts_fired, 1);
    }
}
