//! Online SLO burn-rate monitoring.
//!
//! A latency SLO per workflow ("p-fraction of invocations complete within
//! `target`", expressed as an error budget: the allowed fraction of slow
//! invocations) evaluated **deterministically** on completion events — no
//! wall clock, no RNG, no sampling. Alerting follows the multi-window
//! burn-rate pattern from SRE practice: the *burn rate* is how fast the
//! error budget is being consumed relative to the allowed rate, and an
//! alert fires only when both a fast (small) and a slow (large) sliding
//! window exceed their thresholds — the fast window gives low detection
//! latency, the slow window suppresses one-off blips.
//!
//! Windows are **count-based** (last N completed invocations) rather than
//! time-based: completion order is deterministic in the simulation, so the
//! whole monitor is a pure fold over the completion stream. With
//! [`crate::ClusterConfig::slo`] unset (the default) nothing is evaluated,
//! no RNG is drawn, and every pre-SLO run stays bit-identical.

use std::collections::VecDeque;

use faasflow_sim::{SimDuration, WorkflowId};
use serde::{Deserialize, Serialize};

/// One per-workflow latency objective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloObjective {
    /// Name of the workflow the objective applies to (matched against
    /// [`crate::Cluster::register`]ed workflow names; an objective naming
    /// a workflow that is never registered simply never evaluates).
    pub workflow: String,
    /// Latency target: an invocation slower than this (or timed out, or
    /// dead-lettered/shed before completing) consumes error budget.
    pub target: SimDuration,
    /// Allowed fraction of bad invocations, in `(0, 1]`. Burn rate is the
    /// observed bad fraction divided by this budget: burn 1.0 = consuming
    /// budget exactly as fast as allowed.
    pub error_budget: f64,
    /// Completions in the fast (detection) sliding window.
    pub fast_window: u32,
    /// Completions in the slow (confirmation) sliding window. Must be at
    /// least `fast_window`.
    pub slow_window: u32,
    /// Burn-rate threshold the fast window must exceed to fire.
    pub fast_burn: f64,
    /// Burn-rate threshold the slow window must exceed to fire. Must not
    /// exceed `fast_burn` (the slow window smooths, so its threshold is
    /// the lower of the pair).
    pub slow_burn: f64,
}

impl Default for SloObjective {
    fn default() -> Self {
        SloObjective {
            workflow: String::new(),
            target: SimDuration::from_secs(1),
            error_budget: 0.05,
            // The classic 1h/6h multi-window pair, translated to counts.
            fast_window: 8,
            slow_window: 32,
            fast_burn: 2.0,
            slow_burn: 1.0,
        }
    }
}

impl SloObjective {
    /// Checks the objective for internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.workflow.is_empty() {
            return Err("SLO objective names an empty workflow".to_string());
        }
        if self.target == SimDuration::ZERO {
            return Err(format!("SLO target for '{}' is zero", self.workflow));
        }
        if !(self.error_budget > 0.0 && self.error_budget <= 1.0) {
            return Err(format!(
                "SLO error budget for '{}' must be in (0, 1], got {}",
                self.workflow, self.error_budget
            ));
        }
        if self.fast_window == 0 {
            return Err(format!("SLO fast window for '{}' is zero", self.workflow));
        }
        if self.slow_window < self.fast_window {
            return Err(format!(
                "SLO slow window for '{}' ({}) is smaller than the fast window ({})",
                self.workflow, self.slow_window, self.fast_window
            ));
        }
        if self.fast_burn <= 0.0 || !self.fast_burn.is_finite() {
            return Err(format!(
                "SLO fast burn threshold for '{}' must be positive and finite",
                self.workflow
            ));
        }
        if self.slow_burn <= 0.0 || !self.slow_burn.is_finite() {
            return Err(format!(
                "SLO slow burn threshold for '{}' must be positive and finite",
                self.workflow
            ));
        }
        if self.slow_burn > self.fast_burn {
            return Err(format!(
                "SLO slow burn threshold for '{}' ({}) exceeds the fast threshold ({})",
                self.workflow, self.slow_burn, self.fast_burn
            ));
        }
        Ok(())
    }
}

/// The SLO monitor configuration: a set of latency objectives.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SloConfig {
    /// Objectives, evaluated in order on every completion of the named
    /// workflow. Several objectives may target the same workflow (e.g. a
    /// tight p95-style target and a loose p99-style one).
    pub objectives: Vec<SloObjective>,
}

impl SloConfig {
    /// Validates every objective.
    pub fn validate(&self) -> Result<(), String> {
        if self.objectives.is_empty() {
            return Err("SLO config has no objectives".to_string());
        }
        for objective in &self.objectives {
            objective.validate()?;
        }
        Ok(())
    }
}

/// Aggregate SLO counters for [`crate::RunReport`]. All-zero (and omitted
/// from serialized reports) when no [`SloConfig`] is set.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SloReport {
    /// Configured objectives.
    pub objectives: u32,
    /// Completion events evaluated against some objective.
    pub evaluations: u64,
    /// Evaluations that consumed error budget (missed the target, timed
    /// out, or ended dead-lettered/shed).
    pub violations: u64,
    /// Alert transitions inactive → active.
    pub alerts_fired: u64,
    /// Alert transitions active → inactive.
    pub alerts_resolved: u64,
    /// Highest fast-window burn rate observed across all objectives.
    pub worst_fast_burn: f64,
    /// Highest slow-window burn rate observed across all objectives.
    pub worst_slow_burn: f64,
}

impl SloReport {
    /// True when no SLO was configured and nothing happened — the report
    /// block is then omitted from serialized output so pre-SLO goldens
    /// stay bit-identical.
    pub fn is_zero(&self) -> bool {
        *self == SloReport::default()
    }
}

/// A sliding window over the last `cap` completions.
#[derive(Debug)]
struct BurnWindow {
    window: VecDeque<bool>,
    cap: usize,
    bad: u32,
}

impl BurnWindow {
    fn new(cap: u32) -> Self {
        let cap = cap as usize;
        BurnWindow {
            window: VecDeque::with_capacity(cap),
            cap,
            bad: 0,
        }
    }

    fn push(&mut self, bad: bool) {
        if self.window.len() == self.cap && self.window.pop_front() == Some(true) {
            self.bad -= 1;
        }
        self.window.push_back(bad);
        if bad {
            self.bad += 1;
        }
    }

    /// Bad fraction over the window contents, divided by the error budget.
    fn burn(&self, budget: f64) -> f64 {
        if self.window.is_empty() {
            0.0
        } else {
            (f64::from(self.bad) / self.window.len() as f64) / budget
        }
    }
}

/// An alert state transition produced by one completion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum SloTransition {
    /// Both windows crossed their thresholds; the alert went active.
    Fired {
        /// The objective's workflow.
        workflow: WorkflowId,
        /// Fast-window burn rate at the transition.
        fast_burn: f64,
        /// Slow-window burn rate at the transition.
        slow_burn: f64,
    },
    /// Some window dropped below its threshold; the alert went inactive.
    Resolved {
        /// The objective's workflow.
        workflow: WorkflowId,
    },
}

#[derive(Debug)]
struct ObjectiveState {
    spec: SloObjective,
    /// Resolved at registration time; `None` until (and unless) a workflow
    /// with the matching name registers.
    workflow: Option<WorkflowId>,
    fast: BurnWindow,
    slow: BurnWindow,
    alert: bool,
}

/// Per-cluster monitor state: one [`ObjectiveState`] per configured
/// objective, folded over the deterministic completion stream.
#[derive(Debug)]
pub(crate) struct SloMonitor {
    objectives: Vec<ObjectiveState>,
    report: SloReport,
}

impl SloMonitor {
    pub(crate) fn new(config: &SloConfig) -> Self {
        let objectives: Vec<ObjectiveState> = config
            .objectives
            .iter()
            .map(|spec| ObjectiveState {
                workflow: None,
                fast: BurnWindow::new(spec.fast_window),
                slow: BurnWindow::new(spec.slow_window),
                alert: false,
                spec: spec.clone(),
            })
            .collect();
        let report = SloReport {
            objectives: objectives.len() as u32,
            ..SloReport::default()
        };
        SloMonitor { objectives, report }
    }

    /// Binds objectives naming `name` to the registered workflow id.
    pub(crate) fn bind(&mut self, name: &str, workflow: WorkflowId) {
        for state in &mut self.objectives {
            if state.spec.workflow == name {
                state.workflow = Some(workflow);
            }
        }
    }

    /// Evaluates one terminal invocation outcome. `bad_outcome` marks
    /// terminal states that never produced a latency (dead-letter, shed):
    /// those always consume budget. Returns the alert transitions this
    /// completion caused, in objective order.
    pub(crate) fn evaluate(
        &mut self,
        workflow: WorkflowId,
        e2e: SimDuration,
        bad_outcome: bool,
    ) -> Vec<SloTransition> {
        let mut transitions = Vec::new();
        for state in &mut self.objectives {
            if state.workflow != Some(workflow) {
                continue;
            }
            let bad = bad_outcome || e2e > state.spec.target;
            self.report.evaluations += 1;
            if bad {
                self.report.violations += 1;
            }
            state.fast.push(bad);
            state.slow.push(bad);
            let fast_burn = state.fast.burn(state.spec.error_budget);
            let slow_burn = state.slow.burn(state.spec.error_budget);
            if fast_burn > self.report.worst_fast_burn {
                self.report.worst_fast_burn = fast_burn;
            }
            if slow_burn > self.report.worst_slow_burn {
                self.report.worst_slow_burn = slow_burn;
            }
            let firing = fast_burn >= state.spec.fast_burn && slow_burn >= state.spec.slow_burn;
            if firing && !state.alert {
                state.alert = true;
                self.report.alerts_fired += 1;
                transitions.push(SloTransition::Fired {
                    workflow,
                    fast_burn,
                    slow_burn,
                });
            } else if !firing && state.alert {
                state.alert = false;
                self.report.alerts_resolved += 1;
                transitions.push(SloTransition::Resolved { workflow });
            }
        }
        transitions
    }

    pub(crate) fn report(&self) -> SloReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn objective(workflow: &str) -> SloObjective {
        SloObjective {
            workflow: workflow.to_string(),
            target: SimDuration::from_millis(100),
            error_budget: 0.1,
            fast_window: 2,
            slow_window: 4,
            fast_burn: 5.0,
            slow_burn: 2.5,
        }
    }

    #[test]
    fn validate_rejects_inconsistent_objectives() {
        assert!(objective("wf").validate().is_ok());
        assert!(objective("").validate().is_err());
        let mut o = objective("wf");
        o.target = SimDuration::ZERO;
        assert!(o.validate().is_err());
        let mut o = objective("wf");
        o.error_budget = 0.0;
        assert!(o.validate().is_err());
        let mut o = objective("wf");
        o.error_budget = 1.5;
        assert!(o.validate().is_err());
        let mut o = objective("wf");
        o.fast_window = 0;
        assert!(o.validate().is_err());
        let mut o = objective("wf");
        o.slow_window = 1;
        assert!(o.validate().is_err());
        let mut o = objective("wf");
        o.slow_burn = o.fast_burn + 1.0;
        assert!(o.validate().is_err());
        assert!(SloConfig { objectives: vec![] }.validate().is_err());
        assert!(SloConfig {
            objectives: vec![objective("wf")]
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn window_evicts_and_counts() {
        let mut w = BurnWindow::new(2);
        assert_eq!(w.burn(0.1), 0.0);
        w.push(true);
        assert!((w.burn(0.1) - 10.0).abs() < 1e-12); // 1/1 bad / 0.1
        w.push(false);
        assert!((w.burn(0.1) - 5.0).abs() < 1e-12); // 1/2 bad / 0.1
        w.push(false); // evicts the bad one
        assert_eq!(w.burn(0.1), 0.0);
    }

    #[test]
    fn alert_fires_once_and_resolves() {
        let mut m = SloMonitor::new(&SloConfig {
            objectives: vec![objective("wf")],
        });
        let wf = WorkflowId::new(0);
        m.bind("wf", wf);
        let slow = SimDuration::from_millis(500);
        let fast = SimDuration::from_millis(10);

        // First miss: fast burn = (1/1)/0.1 = 10 >= 5, slow = 10 >= 2.5
        // -> fires immediately, exactly once.
        let t = m.evaluate(wf, slow, false);
        assert!(matches!(t.as_slice(), [SloTransition::Fired { .. }]));
        // Still violating: no duplicate fire.
        assert!(m.evaluate(wf, slow, false).is_empty());
        assert!(m.evaluate(wf, slow, false).is_empty());

        // One hit: fast burn = (1/2)/0.1 = 5, still >= 5 -> no transition;
        // a second hit empties the fast window of misses -> resolves.
        assert!(m.evaluate(wf, fast, false).is_empty());
        let t = m.evaluate(wf, fast, false);
        assert_eq!(t.as_slice(), [SloTransition::Resolved { workflow: wf }]);

        let report = m.report();
        assert_eq!(report.objectives, 1);
        assert_eq!(report.evaluations, 5);
        assert_eq!(report.violations, 3);
        assert_eq!(report.alerts_fired, 1);
        assert_eq!(report.alerts_resolved, 1);
        assert!(report.worst_fast_burn >= 10.0 - 1e-12);
    }

    #[test]
    fn unbound_and_foreign_workflows_are_ignored() {
        let mut m = SloMonitor::new(&SloConfig {
            objectives: vec![objective("wf")],
        });
        // Not bound yet: nothing evaluates.
        assert!(m
            .evaluate(WorkflowId::new(0), SimDuration::from_secs(5), false)
            .is_empty());
        assert_eq!(m.report().evaluations, 0);
        m.bind("other", WorkflowId::new(1)); // name mismatch: no binding
        m.bind("wf", WorkflowId::new(2));
        assert!(m
            .evaluate(WorkflowId::new(1), SimDuration::from_secs(5), false)
            .is_empty());
        m.evaluate(WorkflowId::new(2), SimDuration::from_secs(5), false);
        assert_eq!(m.report().evaluations, 1);
        assert_eq!(m.report().violations, 1);
    }

    #[test]
    fn bad_outcome_counts_regardless_of_latency() {
        let mut m = SloMonitor::new(&SloConfig {
            objectives: vec![objective("wf")],
        });
        let wf = WorkflowId::new(0);
        m.bind("wf", wf);
        m.evaluate(wf, SimDuration::ZERO, true);
        assert_eq!(m.report().violations, 1);
    }

    #[test]
    fn zero_report_detection() {
        assert!(SloReport::default().is_zero());
        let configured = SloMonitor::new(&SloConfig {
            objectives: vec![objective("wf")],
        })
        .report();
        assert!(!configured.is_zero());
    }
}
