//! Overload protection and graceful degradation knobs.
//!
//! Four independent mechanisms, each optional and **off by default** so a
//! default-config run draws exactly the same RNG sequence (and produces
//! the same bytes) as before this subsystem existed:
//!
//! * **Admission control** — bounded per-node container queues with a
//!   pluggable shed policy. Sheds are a first-class terminal outcome,
//!   counted separately from dead letters.
//! * **Circuit breaker** on the remote store (see
//!   [`faasflow_store::breaker`]): during open windows reads are served
//!   from FaaStore local copies when any worker holds one, otherwise the
//!   call fails fast into the existing retry/backoff path.
//! * **Hedged execution** — a straggling executor is speculatively
//!   re-dispatched to another worker after a fixed delay; first winner
//!   takes the instance, the loser is cancelled.
//! * **Backpressure** — a saturated container pool pushes back on the
//!   scheduler: WorkerSP defers the dispatch locally, MasterSP re-queues
//!   through the central engine (paying the central-plane cost, which is
//!   exactly the asymmetry the paper's §2.3 argument predicts).
//!
//! All four react to *cluster-wide* pressure signals (queue depth, store
//! failures, stragglers). The per-workflow layer above them lives in
//! [`crate::degrade`]: SLO burn-rate alerts ([`crate::slo`]) drive a
//! degradation controller that caps the offending workflow's admissions,
//! demotes its shed priority under [`ShedPolicy::DeadlineAware`], and
//! suspends its hedges — steering these mechanisms at the offender
//! instead of shedding blindly across workflows.

use faasflow_sim::SimDuration;
use serde::{Deserialize, Serialize};

pub use faasflow_store::{BreakerConfig, BreakerState};

/// Which invocation a full admission queue sheds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ShedPolicy {
    /// Shed the invocation whose instance just arrived (tail drop).
    #[default]
    RejectNewest,
    /// Shed the invocation that has been queued longest (head drop —
    /// its deadline budget is the most spent).
    RejectOldest,
    /// Shed the invocation with the least deadline slack, judged against
    /// `qos_target` (requires one to be configured).
    DeadlineAware,
}

/// Bounded admission queue per worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Instances allowed to wait for a container per worker beyond the
    /// ones already running; an instance that would push the queue past
    /// this triggers the shed policy.
    pub queue_capacity: usize,
    /// Who gets shed when the queue is full.
    pub policy: ShedPolicy,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            queue_capacity: 32,
            policy: ShedPolicy::default(),
        }
    }
}

/// Hedged execution of stragglers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HedgeConfig {
    /// How long an exec runs before a hedge is dispatched. With
    /// [`HedgeConfig::adaptive`] set this is only the fallback used until
    /// enough latency samples accumulate; otherwise it is the fixed delay.
    pub delay: SimDuration,
    /// Online per-function hedge-delay estimation. `None` keeps the fixed
    /// delay above.
    pub adaptive: Option<AdaptiveHedge>,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            delay: SimDuration::from_secs(1),
            adaptive: None,
        }
    }
}

/// Adaptive hedge delay: track each function's successful exec-latency
/// distribution online (the P² streaming quantile estimator — constant
/// memory, no RNG) and hedge at a high quantile of it instead of a fixed
/// guess. Until `warmup` samples arrive the fixed [`HedgeConfig::delay`]
/// applies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveHedge {
    /// The exec-latency quantile at which to hedge, in `(0, 1)`.
    pub quantile: f64,
    /// Per-function samples required before the estimate is trusted.
    pub warmup: u32,
}

impl Default for AdaptiveHedge {
    fn default() -> Self {
        AdaptiveHedge {
            quantile: 0.95,
            warmup: 10,
        }
    }
}

/// The P² algorithm (Jain & Chlamtac 1985): a streaming quantile estimate
/// from five markers, updated in O(1) per observation with no stored
/// samples and no randomness — deterministic given the sample order, which
/// the simulation guarantees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct P2Quantile {
    q: f64,
    count: u64,
    heights: [f64; 5],
    positions: [f64; 5],
    desired: [f64; 5],
    increments: [f64; 5],
}

impl P2Quantile {
    /// A fresh estimator for quantile `q` in `(0, 1)`.
    pub fn new(q: f64) -> Self {
        assert!((0.0..1.0).contains(&q) && q > 0.0, "quantile out of range");
        P2Quantile {
            q,
            count: 0,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
        }
    }

    /// Samples observed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Feeds one observation.
    pub fn observe(&mut self, x: f64) {
        if self.count < 5 {
            self.heights[self.count as usize] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights
                    .sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite sample"));
            }
            return;
        }
        self.count += 1;
        // Find the cell k with heights[k] <= x < heights[k+1], stretching
        // the extreme markers when x falls outside.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            (0..4)
                .find(|&i| x < self.heights[i + 1])
                .expect("x is inside the marker range")
        };
        for p in &mut self.positions[k + 1..] {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments) {
            *d += inc;
        }
        // Adjust the three interior markers toward their desired positions
        // with the piecewise-parabolic (P²) height update.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            if (d >= 1.0 && self.positions[i + 1] - self.positions[i] > 1.0)
                || (d <= -1.0 && self.positions[i - 1] - self.positions[i] < -1.0)
            {
                let s = d.signum();
                let parabolic = self.parabolic(i, s);
                self.heights[i] =
                    if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                        parabolic
                    } else {
                        self.linear(i, s)
                    };
                self.positions[i] += s;
            }
        }
    }

    fn parabolic(&self, i: usize, s: f64) -> f64 {
        let (hm, h, hp) = (self.heights[i - 1], self.heights[i], self.heights[i + 1]);
        let (nm, n, np) = (
            self.positions[i - 1],
            self.positions[i],
            self.positions[i + 1],
        );
        h + s / (np - nm)
            * ((n - nm + s) * (hp - h) / (np - n) + (np - n - s) * (h - hm) / (n - nm))
    }

    fn linear(&self, i: usize, s: f64) -> f64 {
        let j = (i as f64 + s) as usize;
        self.heights[i]
            + s * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The current quantile estimate (the middle marker), or `None` before
    /// five samples have arrived.
    pub fn estimate(&self) -> Option<f64> {
        if self.count >= 5 {
            Some(self.heights[2])
        } else {
            None
        }
    }
}

/// Container-pool backpressure toward the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackpressureConfig {
    /// Queue depth at which a worker's pool counts as saturated.
    pub queue_threshold: usize,
    /// How long a deferred dispatch waits before retrying.
    pub defer_delay: SimDuration,
    /// Deferrals before the dispatch proceeds regardless (so backpressure
    /// degrades latency rather than liveness).
    pub max_defers: u32,
}

impl Default for BackpressureConfig {
    fn default() -> Self {
        BackpressureConfig {
            queue_threshold: 8,
            defer_delay: SimDuration::from_millis(50),
            max_defers: 20,
        }
    }
}

/// The full overload-protection configuration. `None` everywhere (the
/// default) disables the subsystem entirely.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OverloadConfig {
    /// Bounded admission queues + shed policy.
    pub admission: Option<AdmissionConfig>,
    /// Remote-store circuit breaker.
    pub breaker: Option<BreakerConfig>,
    /// Hedged exec retries.
    pub hedge: Option<HedgeConfig>,
    /// Pool-to-scheduler backpressure.
    pub backpressure: Option<BackpressureConfig>,
}

impl OverloadConfig {
    /// True when every mechanism is disabled.
    pub fn is_empty(&self) -> bool {
        self.admission.is_none()
            && self.breaker.is_none()
            && self.hedge.is_none()
            && self.backpressure.is_none()
    }

    /// Checks internal consistency against the cluster-level knobs the
    /// mechanisms interact with.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when a field is out of range.
    pub fn validate(
        &self,
        timeout: SimDuration,
        qos_target: Option<SimDuration>,
    ) -> Result<(), String> {
        if let Some(adm) = &self.admission {
            if adm.queue_capacity == 0 {
                return Err("admission queue_capacity must be at least 1".into());
            }
            if adm.policy == ShedPolicy::DeadlineAware && qos_target.is_none() {
                return Err("DeadlineAware shedding requires a qos_target".into());
            }
        }
        if let Some(breaker) = &self.breaker {
            breaker.validate()?;
        }
        if let Some(hedge) = &self.hedge {
            if hedge.delay <= SimDuration::ZERO {
                return Err("hedge delay must be positive".into());
            }
            if hedge.delay >= timeout {
                return Err(format!(
                    "hedge delay ({:.3}s) must be below the invocation timeout ({:.3}s)",
                    hedge.delay.as_secs_f64(),
                    timeout.as_secs_f64()
                ));
            }
            if let Some(adaptive) = &hedge.adaptive {
                if !(adaptive.quantile.is_finite()
                    && adaptive.quantile > 0.0
                    && adaptive.quantile < 1.0)
                {
                    return Err(format!(
                        "adaptive hedge quantile must be in (0,1), got {}",
                        adaptive.quantile
                    ));
                }
                if adaptive.warmup < 5 {
                    return Err("adaptive hedge warmup must be at least 5 samples".into());
                }
            }
        }
        if let Some(bp) = &self.backpressure {
            if bp.queue_threshold == 0 {
                return Err("backpressure queue_threshold must be at least 1".into());
            }
            if bp.defer_delay <= SimDuration::ZERO {
                return Err("backpressure defer_delay must be positive".into());
            }
            if bp.max_defers == 0 {
                return Err("backpressure max_defers must be at least 1".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2_tracks_quantiles_of_a_uniform_ramp() {
        let mut est = P2Quantile::new(0.95);
        assert_eq!(est.estimate(), None);
        for i in 0..1000 {
            est.observe(i as f64);
        }
        let p95 = est.estimate().expect("warm");
        assert!(
            (p95 - 950.0).abs() < 30.0,
            "p95 of 0..1000 should be near 950, got {p95}"
        );
        assert_eq!(est.count(), 1000);
    }

    #[test]
    fn p2_median_of_constant_stream_is_the_constant() {
        let mut est = P2Quantile::new(0.5);
        for _ in 0..100 {
            est.observe(42.0);
        }
        assert_eq!(est.estimate(), Some(42.0));
    }

    #[test]
    fn p2_is_deterministic_in_sample_order() {
        let samples: Vec<f64> = (0..200).map(|i| ((i * 37) % 101) as f64).collect();
        let mut a = P2Quantile::new(0.9);
        let mut b = P2Quantile::new(0.9);
        for &s in &samples {
            a.observe(s);
            b.observe(s);
        }
        assert_eq!(a.estimate(), b.estimate());
    }

    #[test]
    fn adaptive_hedge_validation() {
        let bad_q = OverloadConfig {
            hedge: Some(HedgeConfig {
                adaptive: Some(AdaptiveHedge {
                    quantile: 1.5,
                    ..AdaptiveHedge::default()
                }),
                ..HedgeConfig::default()
            }),
            ..OverloadConfig::default()
        };
        assert!(bad_q
            .validate(SimDuration::from_secs(60), None)
            .unwrap_err()
            .contains("quantile"));
        let bad_warmup = OverloadConfig {
            hedge: Some(HedgeConfig {
                adaptive: Some(AdaptiveHedge {
                    warmup: 2,
                    ..AdaptiveHedge::default()
                }),
                ..HedgeConfig::default()
            }),
            ..OverloadConfig::default()
        };
        assert!(bad_warmup
            .validate(SimDuration::from_secs(60), None)
            .unwrap_err()
            .contains("warmup"));
        let good = OverloadConfig {
            hedge: Some(HedgeConfig {
                adaptive: Some(AdaptiveHedge::default()),
                ..HedgeConfig::default()
            }),
            ..OverloadConfig::default()
        };
        assert!(good.validate(SimDuration::from_secs(60), None).is_ok());
    }
}
