//! Overload protection and graceful degradation knobs.
//!
//! Four independent mechanisms, each optional and **off by default** so a
//! default-config run draws exactly the same RNG sequence (and produces
//! the same bytes) as before this subsystem existed:
//!
//! * **Admission control** — bounded per-node container queues with a
//!   pluggable shed policy. Sheds are a first-class terminal outcome,
//!   counted separately from dead letters.
//! * **Circuit breaker** on the remote store (see
//!   [`faasflow_store::breaker`]): during open windows reads are served
//!   from FaaStore local copies when any worker holds one, otherwise the
//!   call fails fast into the existing retry/backoff path.
//! * **Hedged execution** — a straggling executor is speculatively
//!   re-dispatched to another worker after a fixed delay; first winner
//!   takes the instance, the loser is cancelled.
//! * **Backpressure** — a saturated container pool pushes back on the
//!   scheduler: WorkerSP defers the dispatch locally, MasterSP re-queues
//!   through the central engine (paying the central-plane cost, which is
//!   exactly the asymmetry the paper's §2.3 argument predicts).

use faasflow_sim::SimDuration;
use serde::{Deserialize, Serialize};

pub use faasflow_store::{BreakerConfig, BreakerState};

/// Which invocation a full admission queue sheds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ShedPolicy {
    /// Shed the invocation whose instance just arrived (tail drop).
    #[default]
    RejectNewest,
    /// Shed the invocation that has been queued longest (head drop —
    /// its deadline budget is the most spent).
    RejectOldest,
    /// Shed the invocation with the least deadline slack, judged against
    /// `qos_target` (requires one to be configured).
    DeadlineAware,
}

/// Bounded admission queue per worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Instances allowed to wait for a container per worker beyond the
    /// ones already running; an instance that would push the queue past
    /// this triggers the shed policy.
    pub queue_capacity: usize,
    /// Who gets shed when the queue is full.
    pub policy: ShedPolicy,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            queue_capacity: 32,
            policy: ShedPolicy::default(),
        }
    }
}

/// Hedged execution of stragglers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HedgeConfig {
    /// How long an exec runs before a hedge is dispatched. Pick a high
    /// quantile of the function's exec latency (adaptive estimation from
    /// the observed distribution is a ROADMAP open item).
    pub delay: SimDuration,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            delay: SimDuration::from_secs(1),
        }
    }
}

/// Container-pool backpressure toward the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackpressureConfig {
    /// Queue depth at which a worker's pool counts as saturated.
    pub queue_threshold: usize,
    /// How long a deferred dispatch waits before retrying.
    pub defer_delay: SimDuration,
    /// Deferrals before the dispatch proceeds regardless (so backpressure
    /// degrades latency rather than liveness).
    pub max_defers: u32,
}

impl Default for BackpressureConfig {
    fn default() -> Self {
        BackpressureConfig {
            queue_threshold: 8,
            defer_delay: SimDuration::from_millis(50),
            max_defers: 20,
        }
    }
}

/// The full overload-protection configuration. `None` everywhere (the
/// default) disables the subsystem entirely.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OverloadConfig {
    /// Bounded admission queues + shed policy.
    pub admission: Option<AdmissionConfig>,
    /// Remote-store circuit breaker.
    pub breaker: Option<BreakerConfig>,
    /// Hedged exec retries.
    pub hedge: Option<HedgeConfig>,
    /// Pool-to-scheduler backpressure.
    pub backpressure: Option<BackpressureConfig>,
}

impl OverloadConfig {
    /// True when every mechanism is disabled.
    pub fn is_empty(&self) -> bool {
        self.admission.is_none()
            && self.breaker.is_none()
            && self.hedge.is_none()
            && self.backpressure.is_none()
    }

    /// Checks internal consistency against the cluster-level knobs the
    /// mechanisms interact with.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when a field is out of range.
    pub fn validate(
        &self,
        timeout: SimDuration,
        qos_target: Option<SimDuration>,
    ) -> Result<(), String> {
        if let Some(adm) = &self.admission {
            if adm.queue_capacity == 0 {
                return Err("admission queue_capacity must be at least 1".into());
            }
            if adm.policy == ShedPolicy::DeadlineAware && qos_target.is_none() {
                return Err("DeadlineAware shedding requires a qos_target".into());
            }
        }
        if let Some(breaker) = &self.breaker {
            breaker.validate()?;
        }
        if let Some(hedge) = &self.hedge {
            if hedge.delay <= SimDuration::ZERO {
                return Err("hedge delay must be positive".into());
            }
            if hedge.delay >= timeout {
                return Err(format!(
                    "hedge delay ({:.3}s) must be below the invocation timeout ({:.3}s)",
                    hedge.delay.as_secs_f64(),
                    timeout.as_secs_f64()
                ));
            }
        }
        if let Some(bp) = &self.backpressure {
            if bp.queue_threshold == 0 {
                return Err("backpressure queue_threshold must be at least 1".into());
            }
            if bp.defer_delay <= SimDuration::ZERO {
                return Err("backpressure defer_delay must be positive".into());
            }
            if bp.max_defers == 0 {
                return Err("backpressure max_defers must be at least 1".into());
            }
        }
        Ok(())
    }
}
