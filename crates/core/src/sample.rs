//! Deterministic resource time-series sampling.
//!
//! When [`crate::ClusterConfig::sample_every`] is set, the cluster
//! schedules a self-rescheduling `Sample` event on the simulation clock
//! and snapshots per-node gauges at each tick: container pool occupancy
//! (resident vs busy), queued admissions, FaaStore memstore usage vs its
//! reserved quota, and NIC throughput derived from the live [`FlowNet`]
//! rates — plus cluster-wide depths (pending simulator events, in-flight
//! invocations). Samples land in bounded ring buffers (oldest evicted and
//! counted once full) and are attached to [`crate::RunReport`] as a
//! [`ResourceSeriesReport`].
//!
//! Sampling reads state and draws no randomness, so enabling it cannot
//! perturb the schedule of other same-time events (the event queue breaks
//! ties by insertion order) — a sampled run and an unsampled run with the
//! same seed execute identically apart from the sampling itself.
//!
//! [`FlowNet`]: faasflow_net::FlowNet

use faasflow_sim::NodeId;
use serde::{Deserialize, Serialize};

/// One per-node snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeSample {
    /// Sample instant, seconds of sim time.
    pub at_secs: f64,
    /// Containers resident on the node (warm idle + busy).
    pub containers: u64,
    /// Containers currently executing (busy cores; warm idle =
    /// `containers - busy`).
    pub busy: u64,
    /// Admission requests queued behind the container pool.
    pub queued_admissions: u64,
    /// FaaStore memstore bytes in use across all workflows.
    pub memstore_used_bytes: u64,
    /// FaaStore memstore reserved quota across all workflows.
    pub memstore_budget_bytes: u64,
    /// Instantaneous NIC transmit rate, bytes/s (loopback excluded).
    pub nic_tx_bytes_per_sec: f64,
    /// Instantaneous NIC receive rate, bytes/s (loopback excluded).
    pub nic_rx_bytes_per_sec: f64,
}

/// One cluster-wide snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterSample {
    /// Sample instant, seconds of sim time.
    pub at_secs: f64,
    /// Events pending in the simulator queue.
    pub pending_events: u64,
    /// Invocations currently in flight.
    pub inflight_invocations: u64,
}

/// The sampled series of one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSeries {
    /// The node (0 = master/storage, 1.. = workers).
    pub node: NodeId,
    /// Samples in chronological order.
    pub samples: Vec<NodeSample>,
}

/// All sampled series of one run, attached to [`crate::RunReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceSeriesReport {
    /// The sampling cadence, seconds of sim time.
    pub sample_every_secs: f64,
    /// Samples evicted from full rings across all series.
    pub dropped_samples: u64,
    /// Per-node series, master first then workers in id order.
    pub nodes: Vec<NodeSeries>,
    /// Cluster-wide series.
    pub cluster: Vec<ClusterSample>,
}

/// Fixed-capacity ring that evicts the oldest entry (and counts it) when
/// full, so a sampler running for arbitrarily long sim time keeps the most
/// recent `cap` samples.
#[derive(Debug, Clone)]
pub(crate) struct Ring<T> {
    cap: usize,
    start: usize,
    items: Vec<T>,
    evicted: u64,
}

impl<T: Clone> Ring<T> {
    pub(crate) fn new(cap: usize) -> Self {
        assert!(cap > 0, "ring capacity must be positive");
        Ring {
            cap,
            start: 0,
            items: Vec::new(),
            evicted: 0,
        }
    }

    pub(crate) fn push(&mut self, item: T) {
        if self.items.len() < self.cap {
            self.items.push(item);
        } else {
            self.items[self.start] = item;
            self.start = (self.start + 1) % self.cap;
            self.evicted += 1;
        }
    }

    pub(crate) fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The retained samples, oldest first.
    pub(crate) fn snapshot(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.items.len());
        out.extend_from_slice(&self.items[self.start..]);
        out.extend_from_slice(&self.items[..self.start]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_newest_and_counts_evictions() {
        let mut r = Ring::new(3);
        for i in 0..5u32 {
            r.push(i);
        }
        assert_eq!(r.snapshot(), vec![2, 3, 4]);
        assert_eq!(r.evicted(), 2);
    }

    #[test]
    fn ring_below_capacity_keeps_order() {
        let mut r = Ring::new(8);
        r.push("a");
        r.push("b");
        assert_eq!(r.snapshot(), vec!["a", "b"]);
        assert_eq!(r.evicted(), 0);
    }
}
