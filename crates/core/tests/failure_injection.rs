//! Failure-injection tests: transient execution errors with bounded retry
//! must never compromise liveness or accounting.

use faasflow_core::{ClientConfig, Cluster, ClusterConfig, ClusterError, ScheduleMode};
use faasflow_wdl::{FunctionProfile, Step, Workflow};

/// A small map/reduce stand-in (split -> 8x count -> merge).
fn map_reduce() -> Workflow {
    Workflow::steps(
        "WC",
        Step::sequence(vec![
            Step::task("split", FunctionProfile::with_millis(100, 8 << 20)),
            Step::foreach("count", FunctionProfile::with_millis(150, 2 << 20), 8),
            Step::task("merge", FunctionProfile::with_millis(80, 0)),
        ]),
    )
}

/// A four-stage pipeline stand-in.
fn pipeline() -> Workflow {
    Workflow::steps(
        "IR",
        Step::sequence(vec![
            Step::task("a", FunctionProfile::with_millis(50, 1 << 20)),
            Step::task("b", FunctionProfile::with_millis(50, 1 << 20)),
            Step::task("c", FunctionProfile::with_millis(50, 1 << 20)),
            Step::task("d", FunctionProfile::with_millis(50, 0)),
        ]),
    )
}

fn flaky(rate: f64) -> ClusterConfig {
    ClusterConfig {
        exec_failure_rate: rate,
        ..ClusterConfig::default()
    }
}

#[test]
fn flaky_functions_still_complete_every_invocation() {
    for mode in [ScheduleMode::WorkerSp, ScheduleMode::MasterSp] {
        let config = ClusterConfig {
            mode,
            faastore: mode == ScheduleMode::WorkerSp,
            ..flaky(0.3)
        };
        let mut cluster = Cluster::new(config).expect("valid config");
        cluster
            .register(&map_reduce(), ClientConfig::ClosedLoop { invocations: 20 })
            .expect("registers");
        cluster.run_until_idle();
        let report = cluster.report();
        assert_eq!(report.workflow("WC").completed, 20, "under {mode:?}");
        assert!(
            report.exec_retries > 0,
            "30% failure rate must trigger retries under {mode:?}"
        );
        assert_eq!(report.live_invocation_states, 0);
    }
}

#[test]
fn retries_raise_latency_monotonically() {
    let run = |rate| {
        let mut cluster = Cluster::new(flaky(rate)).expect("valid config");
        let wf = Workflow::steps(
            "lat",
            Step::sequence(vec![
                Step::task(
                    "a",
                    FunctionProfile::with_millis(100, 0).exec_variation(0.0),
                ),
                Step::task(
                    "b",
                    FunctionProfile::with_millis(100, 0).exec_variation(0.0),
                ),
            ]),
        );
        cluster
            .register(&wf, ClientConfig::ClosedLoop { invocations: 50 })
            .expect("registers");
        cluster.run_until_idle();
        cluster.report().workflow("lat").e2e.mean
    };
    let clean = run(0.0);
    let noisy = run(0.4);
    assert!(
        noisy > clean * 1.2,
        "40% failures must visibly raise latency ({clean:.1} -> {noisy:.1})"
    );
}

#[test]
fn retry_budget_bounds_the_damage() {
    // Even an extreme failure rate terminates: each instance retries at
    // most `max_exec_retries` times and then proceeds.
    let config = ClusterConfig {
        exec_failure_rate: 0.95,
        max_exec_retries: 2,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(config).expect("valid config");
    cluster
        .register(&pipeline(), ClientConfig::ClosedLoop { invocations: 5 })
        .expect("registers");
    cluster.run_until_idle();
    let report = cluster.report();
    assert_eq!(report.workflow("IR").completed, 5);
    // 4 functions x 5 invocations x at most 2 retries.
    assert!(report.exec_retries <= 4 * 5 * 2);
    assert!(report.exec_retries >= 10, "95% failure rate retries a lot");
}

#[test]
fn failure_injection_is_deterministic() {
    let run = || {
        let mut cluster = Cluster::new(flaky(0.25)).expect("valid config");
        cluster
            .register(&pipeline(), ClientConfig::ClosedLoop { invocations: 15 })
            .expect("registers");
        cluster.run_until_idle();
        cluster.report()
    };
    assert_eq!(run(), run());
}

#[test]
fn invalid_failure_rate_is_rejected() {
    match Cluster::new(flaky(1.5)) {
        Err(ClusterError::InvalidConfig(_)) => {}
        Err(other) => panic!("wrong error: {other}"),
        Ok(_) => panic!("rate > 1 must be rejected"),
    }
}
