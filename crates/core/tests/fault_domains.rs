//! Fault-domain tests: injected node crashes, storage outages and link
//! degradation must never leave the cluster wedged or leak state — every
//! registered invocation either completes or is dead-lettered with
//! explicit accounting, deterministically, under both schedule patterns.

use faasflow_core::{
    ClientConfig, Cluster, ClusterConfig, FaultPlan, NetFault, NodeCrash, RunReport, ScheduleMode,
    StorageFault, StorageFaultKind,
};
use faasflow_sim::SimDuration;
use faasflow_wdl::{FunctionProfile, Step, Workflow};

/// A small map/reduce stand-in (split -> 6x count -> merge) that moves
/// enough data for storage faults to bite.
fn map_reduce() -> Workflow {
    Workflow::steps(
        "WC",
        Step::sequence(vec![
            Step::task("split", FunctionProfile::with_millis(100, 8 << 20)),
            Step::foreach("count", FunctionProfile::with_millis(150, 2 << 20), 6),
            Step::task("merge", FunctionProfile::with_millis(80, 0)),
        ]),
    )
}

/// A map/reduce too wide for one partition (two 8-wide stages exceed the
/// default partition capacity 12), so even WorkerSP must ship some edges
/// across workers through the remote store — storage faults bite both
/// modes.
fn wide_map_reduce() -> Workflow {
    Workflow::steps(
        "WC",
        Step::sequence(vec![
            Step::task("split", FunctionProfile::with_millis(100, 8 << 20)),
            Step::foreach("count", FunctionProfile::with_millis(150, 4 << 20), 8),
            Step::foreach("shuffle", FunctionProfile::with_millis(120, 2 << 20), 8),
            Step::task("merge", FunctionProfile::with_millis(80, 0)),
        ]),
    )
}

fn config(mode: ScheduleMode, fault: FaultPlan) -> ClusterConfig {
    ClusterConfig {
        mode,
        faastore: mode == ScheduleMode::WorkerSp,
        workers: 4,
        fault,
        ..ClusterConfig::default()
    }
}

/// Runs `invocations` of the map/reduce workflow to completion and
/// returns the report.
fn run(config: ClusterConfig, invocations: u32) -> RunReport {
    run_wf(config, &map_reduce(), invocations)
}

fn run_wf(config: ClusterConfig, wf: &Workflow, invocations: u32) -> RunReport {
    let mut cluster = Cluster::new(config).expect("valid config");
    cluster
        .register(wf, ClientConfig::ClosedLoop { invocations })
        .expect("registers");
    cluster.run_until_idle();
    cluster.report()
}

/// No invocation may be lost: everything sent either completed or was
/// dead-lettered with accounting, and no engine state leaks.
fn assert_drained(report: &RunReport, mode: ScheduleMode) {
    let wf = report.workflow("WC");
    assert_eq!(
        wf.completed + wf.dead_lettered,
        wf.sent,
        "every invocation must complete or dead-letter under {mode:?}"
    );
    assert_eq!(
        wf.dead_lettered, report.faults.dead_letters,
        "dead-letter accounting must match under {mode:?}"
    );
    assert_eq!(
        report.live_invocation_states, 0,
        "no leaked engine state under {mode:?}"
    );
}

fn crash_plan(restart_after: Option<SimDuration>) -> FaultPlan {
    FaultPlan {
        node_crashes: vec![NodeCrash {
            worker: 0,
            at: SimDuration::from_secs(2),
            restart_after,
        }],
        ..FaultPlan::default()
    }
}

#[test]
fn worker_crash_and_restart_drains_cleanly() {
    for mode in [ScheduleMode::WorkerSp, ScheduleMode::MasterSp] {
        let plan = crash_plan(Some(SimDuration::from_secs(3)));
        let report = run(config(mode, plan), 30);
        assert_drained(&report, mode);
        assert_eq!(report.faults.worker_crashes, 1, "under {mode:?}");
        assert_eq!(report.faults.worker_restarts, 1, "under {mode:?}");
        assert!(report.faults.lease_expiries >= 1, "under {mode:?}");
        assert!(
            report.faults.crash_redispatches > 0,
            "a mid-run crash must orphan work that gets re-dispatched under {mode:?}"
        );
    }
}

#[test]
fn permanent_crash_still_drains_on_survivors() {
    for mode in [ScheduleMode::WorkerSp, ScheduleMode::MasterSp] {
        let report = run(config(mode, crash_plan(None)), 30);
        assert_drained(&report, mode);
        assert_eq!(report.faults.worker_crashes, 1, "under {mode:?}");
        assert_eq!(report.faults.worker_restarts, 0, "under {mode:?}");
        let wf = report.workflow("WC");
        assert!(
            wf.completed > 0,
            "survivors must keep completing work under {mode:?}"
        );
    }
}

#[test]
fn crashes_cost_latency_not_accounting() {
    for mode in [ScheduleMode::WorkerSp, ScheduleMode::MasterSp] {
        let clean = run(config(mode, FaultPlan::default()), 30);
        let faulty = run(
            config(mode, crash_plan(Some(SimDuration::from_secs(3)))),
            30,
        );
        assert_drained(&faulty, mode);
        assert!(
            faulty.workflow("WC").e2e.max >= clean.workflow("WC").e2e.max,
            "recovered invocations must pay the outage in latency under {mode:?}"
        );
    }
}

fn blackout_plan(at_secs: u64, secs: u64) -> FaultPlan {
    FaultPlan {
        storage_faults: vec![StorageFault {
            at: SimDuration::from_secs(at_secs),
            duration: SimDuration::from_secs(secs),
            kind: StorageFaultKind::Blackout,
        }],
        ..FaultPlan::default()
    }
}

#[test]
fn storage_blackout_queues_with_backoff_and_drains() {
    for mode in [ScheduleMode::WorkerSp, ScheduleMode::MasterSp] {
        let report = run_wf(config(mode, blackout_plan(1, 4)), &wide_map_reduce(), 20);
        assert_drained(&report, mode);
        assert!(
            report.faults.storage_backoff_waits > 0,
            "a blackout must force storage backoff under {mode:?}"
        );
    }
}

/// The paper's availability argument: WorkerSP with FaaStore passes most
/// intermediate data through worker-local memory, so a remote-storage
/// outage stalls far fewer operations than under the MasterSP baseline,
/// which ships every edge through the remote store.
#[test]
fn workersp_outsurvives_mastersp_in_storage_outage() {
    let worker = run(config(ScheduleMode::WorkerSp, blackout_plan(1, 6)), 20);
    let master = run(config(ScheduleMode::MasterSp, blackout_plan(1, 6)), 20);
    assert_drained(&worker, ScheduleMode::WorkerSp);
    assert_drained(&master, ScheduleMode::MasterSp);
    assert!(
        worker.faults.storage_backoff_waits < master.faults.storage_backoff_waits,
        "local data passing must reduce exposure to the outage ({} vs {})",
        worker.faults.storage_backoff_waits,
        master.faults.storage_backoff_waits
    );

    // Inflation relative to each mode's own fault-free baseline.
    let worker_clean = run(config(ScheduleMode::WorkerSp, FaultPlan::default()), 20);
    let master_clean = run(config(ScheduleMode::MasterSp, FaultPlan::default()), 20);
    let worker_inflation = worker.workflow("WC").e2e.mean / worker_clean.workflow("WC").e2e.mean;
    let master_inflation = master.workflow("WC").e2e.mean / master_clean.workflow("WC").e2e.mean;
    assert!(
        worker_inflation < master_inflation,
        "the outage must hurt WorkerSP less ({worker_inflation:.2}x vs {master_inflation:.2}x)"
    );
}

#[test]
fn storage_brownout_slows_but_everything_completes() {
    let plan = FaultPlan {
        storage_faults: vec![StorageFault {
            at: SimDuration::from_secs(1),
            duration: SimDuration::from_secs(10),
            kind: StorageFaultKind::Brownout { slowdown: 8.0 },
        }],
        ..FaultPlan::default()
    };
    for mode in [ScheduleMode::WorkerSp, ScheduleMode::MasterSp] {
        let clean = run_wf(config(mode, FaultPlan::default()), &wide_map_reduce(), 20);
        let browned = run_wf(config(mode, plan.clone()), &wide_map_reduce(), 20);
        assert_drained(&browned, mode);
        assert_eq!(browned.workflow("WC").completed, 20, "under {mode:?}");
        assert!(
            browned.workflow("WC").e2e.mean > clean.workflow("WC").e2e.mean,
            "a brownout must visibly raise latency under {mode:?}"
        );
    }
}

#[test]
fn degraded_link_retransmits_and_completes() {
    let plan = FaultPlan {
        net_faults: vec![NetFault {
            worker: 0,
            at: SimDuration::from_secs(1),
            duration: SimDuration::from_secs(8),
            loss: 0.5,
            latency_factor: 4.0,
            bandwidth_factor: 0.25,
        }],
        ..FaultPlan::default()
    };
    for mode in [ScheduleMode::WorkerSp, ScheduleMode::MasterSp] {
        let report = run(config(mode, plan.clone()), 20);
        assert_drained(&report, mode);
        assert_eq!(report.workflow("WC").completed, 20, "under {mode:?}");
        assert!(
            report.faults.message_retransmits > 0,
            "50% loss must force retransmissions under {mode:?}"
        );
    }
}

/// Same seed + same fault plan => bit-identical reports, both modes. The
/// whole fault subsystem draws only from the cluster's seeded RNG.
#[test]
fn fault_runs_are_deterministic() {
    let chaos = FaultPlan {
        node_crashes: vec![NodeCrash {
            worker: 1,
            at: SimDuration::from_secs(2),
            restart_after: Some(SimDuration::from_secs(2)),
        }],
        storage_faults: vec![StorageFault {
            at: SimDuration::from_secs(3),
            duration: SimDuration::from_secs(2),
            kind: StorageFaultKind::Blackout,
        }],
        net_faults: vec![NetFault {
            worker: 2,
            at: SimDuration::from_secs(1),
            duration: SimDuration::from_secs(5),
            loss: 0.3,
            latency_factor: 2.0,
            bandwidth_factor: 0.5,
        }],
        ..FaultPlan::default()
    };
    for mode in [ScheduleMode::WorkerSp, ScheduleMode::MasterSp] {
        let a = run(config(mode, chaos.clone()), 25);
        let b = run(config(mode, chaos.clone()), 25);
        assert_eq!(a, b, "fault runs must be reproducible under {mode:?}");
        assert_drained(&a, mode);
    }
}

/// An empty fault plan must not perturb the RNG stream: reports with and
/// without the fault subsystem compiled into the run match bit for bit
/// (the plan IS the default, so this guards the clean-path parity).
#[test]
fn empty_plan_leaves_runs_identical() {
    for mode in [ScheduleMode::WorkerSp, ScheduleMode::MasterSp] {
        let a = run(config(mode, FaultPlan::default()), 15);
        let b = run(config(mode, FaultPlan::default()), 15);
        assert_eq!(a, b);
        assert_eq!(a.faults, Default::default(), "no faults => all-zero report");
        assert_eq!(a.workflow("WC").completed, 15);
    }
}

// ---------------------------------------------------------------------
// Retry-budget boundary conditions (satellite: max_exec_retries = 0 and
// exec_failure_rate = 1.0).
// ---------------------------------------------------------------------

#[test]
fn zero_retry_budget_passes_failures_through() {
    // Legacy semantics: with no dead-lettering, an instance that exhausts
    // its (empty) retry budget proceeds as if it had succeeded.
    let cfg = ClusterConfig {
        exec_failure_rate: 1.0,
        max_exec_retries: 0,
        ..ClusterConfig::default()
    };
    let report = run(cfg, 10);
    let wf = report.workflow("WC");
    assert_eq!(wf.completed, 10);
    assert_eq!(wf.dead_lettered, 0);
    assert_eq!(report.exec_retries, 0, "budget 0 => not a single retry");
    assert_eq!(report.live_invocation_states, 0);
}

#[test]
fn certain_failure_with_dead_lettering_abandons_everything() {
    for mode in [ScheduleMode::WorkerSp, ScheduleMode::MasterSp] {
        let cfg = ClusterConfig {
            exec_failure_rate: 1.0,
            max_exec_retries: 2,
            fault: FaultPlan {
                dead_letter_on_exhaustion: true,
                ..FaultPlan::default()
            },
            ..config(mode, FaultPlan::default())
        };
        let report = run(cfg, 10);
        let wf = report.workflow("WC");
        assert_eq!(wf.completed, 0, "nothing can succeed under {mode:?}");
        assert_eq!(wf.dead_lettered, 10, "under {mode:?}");
        assert_eq!(report.faults.dead_letters, 10, "under {mode:?}");
        assert_eq!(report.live_invocation_states, 0, "under {mode:?}");
    }
}

#[test]
fn certain_failure_without_dead_lettering_still_terminates() {
    let cfg = ClusterConfig {
        exec_failure_rate: 1.0,
        max_exec_retries: 2,
        ..ClusterConfig::default()
    };
    let report = run(cfg, 10);
    let wf = report.workflow("WC");
    assert_eq!(wf.completed, 10);
    // Every instance burns its full budget: 8 instances per invocation
    // (split + 6x count + merge) x 2 retries x 10 invocations.
    assert_eq!(report.exec_retries, 8 * 2 * 10);
    assert_eq!(report.live_invocation_states, 0);
}

// ---------------------------------------------------------------------
// Timeout semantics (satellite): a timed-out invocation must not leak
// containers, store quota, or engine state once it drains.
// ---------------------------------------------------------------------

#[test]
fn timed_out_invocations_release_everything() {
    for mode in [ScheduleMode::WorkerSp, ScheduleMode::MasterSp] {
        let cfg = ClusterConfig {
            timeout: SimDuration::from_millis(200),
            ..config(mode, FaultPlan::default())
        };
        let report = run(cfg, 10);
        let wf = report.workflow("WC");
        assert!(
            wf.timeouts > 0,
            "a 200ms cap must time the map/reduce out under {mode:?}"
        );
        // Late invocations are recorded at the cap but still run to
        // completion and release everything they held.
        assert_eq!(wf.completed, 10, "under {mode:?}");
        assert_eq!(report.live_invocation_states, 0, "under {mode:?}");
        assert!(
            wf.e2e.max <= 200.0 + 1e-9,
            "latency is capped at the timeout under {mode:?}"
        );
    }
}

#[test]
fn timeout_racing_inflight_retries_drains_cleanly() {
    for mode in [ScheduleMode::WorkerSp, ScheduleMode::MasterSp] {
        let cfg = ClusterConfig {
            timeout: SimDuration::from_millis(300),
            exec_failure_rate: 0.6,
            max_exec_retries: 3,
            ..config(mode, FaultPlan::default())
        };
        let report = run(cfg, 15);
        let wf = report.workflow("WC");
        assert_eq!(wf.completed, 15, "under {mode:?}");
        assert!(wf.timeouts > 0, "under {mode:?}");
        assert!(report.exec_retries > 0, "under {mode:?}");
        assert_eq!(report.live_invocation_states, 0, "under {mode:?}");
    }
}

#[test]
fn timeout_racing_crash_recovery_drains_cleanly() {
    for mode in [ScheduleMode::WorkerSp, ScheduleMode::MasterSp] {
        let cfg = ClusterConfig {
            timeout: SimDuration::from_secs(3),
            ..config(mode, crash_plan(Some(SimDuration::from_secs(2))))
        };
        let report = run(cfg, 20);
        assert_drained(&report, mode);
        let wf = report.workflow("WC");
        assert!(
            wf.timeouts > 0,
            "recovery stalls must push some invocations past 3s under {mode:?}"
        );
    }
}
