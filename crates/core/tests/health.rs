//! Gray-failure detection end to end: the MAD health detector must
//! quarantine a worker that degrades while heartbeating normally, steer
//! new work away, reinstate it half-open once it heals — and never fire
//! on signals the fleet cannot distinguish (one worker total, everyone
//! equally slow). The asymmetric-partition tests exercise the false
//! suspicion path: a lease force-expired under a live worker races the
//! re-dispatch against the zombie, whose late completions must die on
//! the admission fences without breaking conservation.

use faasflow_core::{
    ClientConfig, Cluster, ClusterConfig, EngineCrash, EngineTarget, FaultPlan, GrayFault,
    GrayFaultKind, HealthConfig, JournalConfig, PlacementConfig, RunReport, ScheduleMode,
};
use faasflow_sim::SimDuration;
use faasflow_wdl::{FunctionProfile, Step, Workflow};

/// Fan-out pipeline wide enough to keep every worker sampling.
fn pipeline(name: &str) -> Workflow {
    Workflow::steps(
        name,
        Step::sequence(vec![
            Step::task("ingest", FunctionProfile::with_millis(80, 2 << 20)),
            Step::foreach("crunch", FunctionProfile::with_millis(250, 1 << 20), 6),
            Step::task("merge", FunctionProfile::with_millis(50, 0)),
        ]),
    )
}

fn gray(worker: u32, at_secs: u64, len_secs: u64, kind: GrayFaultKind) -> GrayFault {
    GrayFault {
        worker,
        at: SimDuration::from_secs(at_secs),
        duration: SimDuration::from_secs(len_secs),
        kind,
    }
}

fn base_config(workers: u32, plan: FaultPlan, health: Option<HealthConfig>) -> ClusterConfig {
    ClusterConfig {
        mode: ScheduleMode::WorkerSp,
        faastore: true,
        workers,
        fault: plan,
        health,
        // Load-aware placement spreads the workflows below across the
        // fleet; legacy tie-breaking would pile everything onto worker 0
        // and leave the detector with a single scoreable worker.
        placement_config: PlacementConfig::default(),
        ..ClusterConfig::default()
    }
}

/// Registers four copies of the pipeline so every worker hosts work and
/// produces latency samples — differential detection needs a fleet.
fn run(config: ClusterConfig, invocations: u32) -> RunReport {
    let mut cluster = Cluster::new(config).expect("valid config");
    for i in 0..4 {
        cluster
            .register(
                &pipeline(&format!("wf{i}")),
                ClientConfig::ClosedLoop { invocations },
            )
            .expect("registers");
    }
    cluster.run_until_idle();
    cluster.report()
}

fn assert_conserved(report: &RunReport, label: &str) {
    for (name, wf) in &report.workflows {
        assert_eq!(
            wf.sent,
            wf.completed + wf.dead_lettered + wf.shed,
            "{label}/{name}: invocation leak"
        );
    }
    assert_eq!(
        report.live_invocation_states, 0,
        "{label}: leaked engine state"
    );
    let f = &report.faults;
    assert_eq!(
        f.dead_letter_retries_exhausted
            + f.dead_letter_crash_orphan
            + f.dead_letter_journal_unrecoverable
            + f.dead_letter_quarantine_orphan,
        f.dead_letters,
        "{label}: every dead letter carries exactly one reason"
    );
}

#[test]
fn slow_outlier_worker_is_quarantined() {
    let plan = FaultPlan {
        gray_faults: vec![gray(0, 2, 40, GrayFaultKind::ExecSlowdown { factor: 8.0 })],
        ..FaultPlan::default()
    };
    let report = run(base_config(4, plan, Some(HealthConfig::default())), 40);
    assert_conserved(&report, "slow outlier");
    assert!(
        report.health.quarantines >= 1,
        "an 8x-slow worker must be quarantined ({:?})",
        report.health
    );
    assert!(report.health.evaluations > 0);
    assert!(report.health.probations >= report.health.quarantines);
}

#[test]
fn fleet_of_one_never_quarantines() {
    // With a single worker there is no fleet median to diverge from —
    // quarantining it would halt the cluster for no alternative.
    let plan = FaultPlan {
        gray_faults: vec![gray(0, 1, 60, GrayFaultKind::ExecSlowdown { factor: 10.0 })],
        ..FaultPlan::default()
    };
    let report = run(base_config(1, plan, Some(HealthConfig::default())), 15);
    assert_conserved(&report, "fleet of one");
    assert_eq!(
        report.health.quarantines, 0,
        "a fleet of one has no outliers"
    );
    let completed: u64 = report.workflows.values().map(|w| w.completed).sum();
    assert_eq!(completed, 4 * 15);
}

#[test]
fn uniform_slowness_is_not_an_outlier() {
    // Every worker slows down by the same factor: the MAD floor keeps
    // the detector quiet — differential detection needs a differential.
    // The windows open at t=0, before any samples exist; staggered onsets
    // would transiently skew the fleet median while the ring buffers
    // flip, which is a detector limitation, not uniform slowness.
    let plan = FaultPlan {
        gray_faults: (0..4)
            .map(|w| gray(w, 0, 60, GrayFaultKind::ExecSlowdown { factor: 6.0 }))
            .collect(),
        ..FaultPlan::default()
    };
    let report = run(base_config(4, plan, Some(HealthConfig::default())), 30);
    assert_conserved(&report, "uniform slowness");
    assert_eq!(
        report.health.quarantines, 0,
        "uniform degradation must not single anyone out ({:?})",
        report.health
    );
}

#[test]
fn stuck_executor_is_flagged_by_its_peers() {
    // The stuck worker completes nothing, so it produces no samples of
    // its own — peers' evaluations must notice its stalled in-flight
    // work and quarantine it on the stuck-after clock.
    let plan = FaultPlan {
        gray_faults: vec![gray(0, 3, 30, GrayFaultKind::StuckExecutor)],
        ..FaultPlan::default()
    };
    let report = run(base_config(4, plan, Some(HealthConfig::default())), 40);
    assert_conserved(&report, "stuck executor");
    assert!(
        report.health.stuck_deferrals >= 1,
        "the stuck window must defer completions ({:?})",
        report.health
    );
    assert!(
        report.health.quarantines >= 1,
        "a stuck worker must be quarantined ({:?})",
        report.health
    );
}

#[test]
fn flaky_worker_is_quarantined_on_failure_rate() {
    let plan = FaultPlan {
        gray_faults: vec![gray(
            0,
            2,
            40,
            GrayFaultKind::FlakyExec { failure_rate: 0.9 },
        )],
        ..FaultPlan::default()
    };
    let report = run(base_config(4, plan, Some(HealthConfig::default())), 40);
    assert_conserved(&report, "flaky worker");
    assert!(
        report.exec_retries > 0,
        "a 90% failure window must trigger retries"
    );
    assert!(
        report.health.quarantines >= 1,
        "a flaky worker must be quarantined ({:?})",
        report.health
    );
}

#[test]
fn healed_worker_is_reinstated_half_open() {
    // The gray window ends early; after the cooldown the reopen probe
    // restores capacity half-open, and fresh deployments send probe work
    // whose clean completions reinstate the worker.
    let plan = FaultPlan {
        gray_faults: vec![gray(0, 2, 10, GrayFaultKind::ExecSlowdown { factor: 10.0 })],
        ..FaultPlan::default()
    };
    let mut cluster =
        Cluster::new(base_config(4, plan, Some(HealthConfig::default()))).expect("valid config");
    for i in 0..4 {
        cluster
            .register(
                &pipeline(&format!("wf{i}")),
                ClientConfig::ClosedLoop { invocations: 40 },
            )
            .expect("registers");
    }
    cluster.run_until_idle();
    // The first batch quarantined worker 0 and drained to the others;
    // by idle the window has healed and the cooldown reopened capacity.
    // New workflows deploy onto the now-emptiest worker 0: their clean
    // completions are the half-open probes.
    for i in 0..3 {
        cluster
            .register(
                &pipeline(&format!("probe{i}")),
                ClientConfig::ClosedLoop { invocations: 10 },
            )
            .expect("registers");
    }
    cluster.run_until_idle();
    let report = cluster.report();
    assert_conserved(&report, "reinstatement");
    assert!(
        report.health.quarantines >= 1,
        "the slow window must quarantine first ({:?})",
        report.health
    );
    assert!(
        report.health.reinstatements >= 1,
        "the healed worker must be reinstated ({:?})",
        report.health
    );
}

#[test]
fn asymmetric_partition_fences_zombies_and_conserves() {
    // Outbound data flows stall while heartbeats pass; the forced false
    // suspicion expires the lease under the live worker. Re-dispatch
    // races the zombie and its late completions must be fenced.
    for mode in [ScheduleMode::WorkerSp, ScheduleMode::MasterSp] {
        let plan = FaultPlan {
            gray_faults: vec![gray(
                0,
                2,
                12,
                GrayFaultKind::AsymmetricPartition {
                    inbound: false,
                    expire_lease: true,
                },
            )],
            ..FaultPlan::default()
        };
        let config = ClusterConfig {
            mode,
            faastore: mode == ScheduleMode::WorkerSp,
            // Legacy placement pins every group to worker 0, guaranteeing
            // the suspect owns in-flight execs when its lease is expired.
            placement_config: PlacementConfig::legacy(),
            ..base_config(4, plan, Some(HealthConfig::default()))
        };
        let mut cluster = Cluster::new(config).expect("valid config");
        for i in 0..4 {
            let heavy = Workflow::steps(
                format!("heavy{i}"),
                Step::sequence(vec![
                    Step::task("ingest", FunctionProfile::with_millis(150, 4 << 20)),
                    Step::foreach("crunch", FunctionProfile::with_millis(1800, 4 << 20), 6),
                    Step::task("merge", FunctionProfile::with_millis(80, 0)),
                ]),
            );
            cluster
                .register(&heavy, ClientConfig::ClosedLoop { invocations: 25 })
                .expect("registers");
        }
        cluster.run_until_idle();
        let report = cluster.report();
        assert_conserved(&report, &format!("partition {mode:?}"));
        assert!(
            report.faults.lease_expiries >= 1,
            "{mode:?}: the forced suspicion must expire the lease"
        );
        if mode == ScheduleMode::WorkerSp {
            assert!(
                report.health.zombie_fenced >= 1,
                "{mode:?}: the partition restart must fence the zombie's \
                 late completions ({:?})",
                report.health
            );
        }
    }
}

#[test]
fn quarantine_coexists_with_engine_crash_recovery() {
    // A worker engine crashes and journals back while another worker is
    // quarantined for slowness: the two recovery machines must not tear
    // each other's state (conservation + no leaks is the whole test).
    let plan = FaultPlan {
        gray_faults: vec![gray(1, 2, 30, GrayFaultKind::ExecSlowdown { factor: 8.0 })],
        engine_crashes: vec![EngineCrash {
            target: EngineTarget::Worker(2),
            at: SimDuration::from_secs(4),
            restart_after: SimDuration::from_secs(6),
        }],
        ..FaultPlan::default()
    };
    let config = ClusterConfig {
        journal: JournalConfig {
            enabled: true,
            ..JournalConfig::default()
        },
        ..base_config(4, plan, Some(HealthConfig::default()))
    };
    let mut cluster = Cluster::new(config).expect("valid config");
    for i in 0..4 {
        cluster
            .register(
                &pipeline(&format!("wf{i}")),
                ClientConfig::ClosedLoop { invocations: 12 },
            )
            .expect("registers");
    }
    cluster.run_until_idle();
    let report = cluster.report();
    assert_conserved(&report, "quarantine + engine crash");
    assert_eq!(report.recovery.engine_crashes, 1);
    assert_eq!(report.recovery.engine_recoveries, 1);
}

#[test]
fn detector_off_report_omits_health_and_stays_deterministic() {
    // With no HealthConfig and no gray faults the report must not even
    // mention health (golden compatibility), and repeat runs must be
    // bit-identical.
    let render = || {
        let report = run(base_config(4, FaultPlan::default(), None), 15);
        assert!(report.health.is_zero());
        serde_json::to_string(&report).expect("serializes")
    };
    let a = render();
    assert!(
        !a.contains("\"health\""),
        "an all-zero health report must be omitted from the serialized form"
    );
    assert_eq!(a, render());
}

#[test]
fn gray_failures_are_deterministic() {
    let once = || {
        let plan = FaultPlan {
            gray_faults: vec![
                gray(0, 2, 20, GrayFaultKind::ExecSlowdown { factor: 6.0 }),
                gray(
                    1,
                    5,
                    10,
                    GrayFaultKind::AsymmetricPartition {
                        inbound: true,
                        expire_lease: true,
                    },
                ),
                gray(2, 8, 6, GrayFaultKind::FlakyExec { failure_rate: 0.6 }),
            ],
            ..FaultPlan::default()
        };
        run(base_config(4, plan, Some(HealthConfig::default())), 30)
    };
    assert_eq!(once(), once());
}

#[test]
fn stagger_spreads_lease_expiry_without_changing_outcomes() {
    // Heartbeat staggering shifts each worker's lease phase by a
    // deterministic fraction of the interval: detection gets later,
    // never earlier, and recovery still completes everything.
    use faasflow_core::NodeCrash;
    let run_with = |stagger: bool| {
        let plan = FaultPlan {
            node_crashes: vec![NodeCrash {
                worker: 1,
                at: SimDuration::from_secs(3),
                restart_after: Some(SimDuration::from_secs(5)),
            }],
            stagger_heartbeats: stagger,
            ..FaultPlan::default()
        };
        run(base_config(4, plan, None), 25)
    };
    let plain = run_with(false);
    let staggered = run_with(true);
    for (label, report) in [("plain", &plain), ("staggered", &staggered)] {
        assert_conserved(report, label);
        assert!(
            report.faults.lease_expiries >= 1,
            "{label}: the crash must expire the lease"
        );
    }
    assert_eq!(plain.faults.worker_crashes, staggered.faults.worker_crashes);
}
