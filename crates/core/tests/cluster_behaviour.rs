//! Behavioural tests of the cluster simulation itself.

use faasflow_core::{ClientConfig, Cluster, ClusterConfig, ReclamationMode, ScheduleMode};
use faasflow_wdl::{FunctionProfile, Step, Workflow};

fn two_stage(name: &str) -> Workflow {
    Workflow::steps(
        name,
        Step::sequence(vec![
            Step::task("a", FunctionProfile::with_millis(50, 8 << 20)),
            Step::foreach("b", FunctionProfile::with_millis(120, 8 << 20), 4),
            Step::task("c", FunctionProfile::with_millis(30, 0)),
        ]),
    )
}

#[test]
fn utilization_is_bounded_and_nonzero() {
    let mut cluster = Cluster::new(ClusterConfig::default()).expect("valid config");
    cluster
        .register(
            &two_stage("u"),
            ClientConfig::ClosedLoop { invocations: 10 },
        )
        .expect("registers");
    cluster.run_until_idle();
    let util = cluster.utilization();
    assert_eq!(util.len(), 7);
    let cores = f64::from(cluster.config().node_caps.cores);
    let mem = cluster.config().node_caps.mem as f64;
    assert!(
        util.iter().any(|u| u.cpu_peak_cores > 0.0),
        "some worker must have run containers"
    );
    for u in &util {
        assert!(u.cpu_peak_cores <= cores, "peak cores within capacity");
        assert!(u.cpu_mean_cores <= u.cpu_peak_cores + 1e-9);
        assert!(u.mem_peak_bytes <= mem, "peak memory within capacity");
        assert!(u.mem_mean_bytes <= u.mem_peak_bytes + 1e-9);
    }
}

#[test]
fn idle_cluster_has_zero_utilization() {
    let cluster = Cluster::new(ClusterConfig::default()).expect("valid config");
    for u in cluster.utilization() {
        assert_eq!(u.cpu_peak_cores, 0.0);
        assert_eq!(u.mem_peak_bytes, 0.0);
    }
}

#[test]
fn microvm_mode_keeps_more_memory_resident() {
    let run = |reclamation| {
        let config = ClusterConfig {
            reclamation,
            ..ClusterConfig::default()
        };
        let mut cluster = Cluster::new(config).expect("valid config");
        cluster
            .register(
                &two_stage("m"),
                ClientConfig::ClosedLoop { invocations: 10 },
            )
            .expect("registers");
        cluster.run_until_idle();
        let util = cluster.utilization();
        let mem: f64 = util.iter().map(|u| u.mem_peak_bytes).sum();
        let report = cluster.report();
        (mem, report.workflow("m").completed)
    };
    let (cgroup_mem, done_a) = run(ReclamationMode::CgroupLimit);
    let (microvm_mem, done_b) = run(ReclamationMode::MicroVm);
    assert_eq!(done_a, 10);
    assert_eq!(done_b, 10);
    assert!(
        microvm_mem > cgroup_mem,
        "MicroVM sandboxes cannot shrink: {microvm_mem} <= {cgroup_mem}"
    );
}

#[test]
fn reset_metrics_keeps_warm_containers() {
    let mut cluster = Cluster::new(ClusterConfig::default()).expect("valid config");
    let id = cluster
        .register(&two_stage("w"), ClientConfig::ClosedLoop { invocations: 5 })
        .expect("registers");
    cluster.run_until_idle();
    let cold_before = cluster.report().cold_starts;
    assert!(cold_before > 0);
    cluster.reset_metrics();
    cluster.extend_client(id, 10);
    cluster.run_until_idle();
    let report = cluster.report();
    assert_eq!(
        report.workflow("w").completed,
        10,
        "only measured runs counted"
    );
    assert_eq!(
        report.cold_starts, cold_before,
        "warm-up containers must be reused, not re-booted"
    );
}

#[test]
fn open_loop_switch_sends_requested_invocations() {
    let mut cluster = Cluster::new(ClusterConfig::default()).expect("valid config");
    let id = cluster
        .register(&two_stage("o"), ClientConfig::ClosedLoop { invocations: 2 })
        .expect("registers");
    cluster.run_until_idle();
    cluster.reset_metrics();
    cluster.switch_to_open_loop(id, 60.0, 12);
    cluster.run_until_idle();
    let w = cluster.report().workflow("o").clone();
    assert_eq!(w.sent, 12);
    assert_eq!(w.completed, 12);
}

#[test]
fn storage_traffic_flows_through_the_master_node() {
    let config = ClusterConfig {
        mode: ScheduleMode::MasterSp,
        faastore: false,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(config).expect("valid config");
    cluster
        .register(&two_stage("s"), ClientConfig::ClosedLoop { invocations: 5 })
        .expect("registers");
    cluster.run_until_idle();
    let report = cluster.report();
    // Each invocation moves 8 MB a->b + 8 MB b->c, written + read: >=160MB.
    assert!(
        report.storage_node_bytes >= 5 * 2 * (16 << 20),
        "storage NIC must carry every transfer, saw {}",
        report.storage_node_bytes
    );
    assert!(report.storage_bandwidth_used() > 0.0);
}

#[test]
fn master_engine_is_busy_only_under_mastersp() {
    let run = |mode, faastore| {
        let config = ClusterConfig {
            mode,
            faastore,
            ..ClusterConfig::default()
        };
        let mut cluster = Cluster::new(config).expect("valid config");
        cluster
            .register(
                &two_stage("b"),
                ClientConfig::ClosedLoop { invocations: 10 },
            )
            .expect("registers");
        cluster.run_until_idle();
        cluster.report().master_busy_fraction
    };
    let master = run(ScheduleMode::MasterSp, false);
    let worker = run(ScheduleMode::WorkerSp, true);
    assert!(master > 0.0, "MasterSP must occupy the master CPU");
    assert_eq!(worker, 0.0, "WorkerSP never touches the master engine");
}
