//! Trace-based validation: the recorded lifecycle must obey causal order.

use std::collections::HashMap;

use faasflow_core::{ClientConfig, Cluster, ClusterConfig, ScheduleMode, TraceEvent};
use faasflow_wdl::{FunctionProfile, Step, Workflow};

fn traced_run(mode: ScheduleMode, faastore: bool) -> Vec<TraceEvent> {
    let config = ClusterConfig {
        mode,
        faastore,
        trace: true,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(config).expect("valid config");
    let wf = Workflow::steps(
        "t",
        Step::sequence(vec![
            Step::task("a", FunctionProfile::with_millis(20, 4 << 20)),
            Step::foreach("b", FunctionProfile::with_millis(50, 4 << 20), 3),
            Step::task("c", FunctionProfile::with_millis(20, 0)),
        ]),
    );
    cluster
        .register(&wf, ClientConfig::ClosedLoop { invocations: 4 })
        .expect("registers");
    cluster.run_until_idle();
    cluster.take_trace()
}

#[test]
fn trace_is_causally_ordered_per_invocation() {
    for (mode, faastore) in [
        (ScheduleMode::WorkerSp, true),
        (ScheduleMode::MasterSp, false),
    ] {
        let events = traced_run(mode, faastore);
        assert!(!events.is_empty(), "tracing must record events");
        let mut arrived: HashMap<_, _> = HashMap::new();
        let mut completed = HashMap::new();
        for e in &events {
            match e {
                TraceEvent::InvocationArrived { at, .. } => {
                    arrived.insert(e.invocation().unwrap(), *at);
                }
                TraceEvent::InvocationCompleted { at, .. } => {
                    completed.insert(e.invocation().unwrap(), *at);
                }
                _ => {}
            }
        }
        assert_eq!(arrived.len(), 4);
        assert_eq!(completed.len(), 4);
        for e in &events {
            // Node-scoped events (crashes, restarts) carry no invocation;
            // this fault-free run emits none of them.
            let key = e.invocation().expect("fault-free run: all events scoped");
            assert!(
                e.at() >= arrived[&key],
                "event before its invocation arrived: {e:?}"
            );
            assert!(
                e.at() <= completed[&key],
                "event after its invocation completed: {e:?}"
            );
        }
    }
}

#[test]
fn trace_counts_match_the_workflow_shape() {
    let events = traced_run(ScheduleMode::WorkerSp, true);
    let first = events
        .iter()
        .filter(|e| e.invocation().is_some_and(|(_, inv)| inv.index() == 0))
        .collect::<Vec<_>>();
    // 3 function nodes trigger per invocation (a, b, c).
    let triggers = first
        .iter()
        .filter(|e| matches!(e, TraceEvent::FunctionTriggered { .. }))
        .count();
    assert_eq!(triggers, 3);
    // 1 + 3 + 1 instances start.
    let instances = first
        .iter()
        .filter(|e| matches!(e, TraceEvent::InstanceStarted { .. }))
        .count();
    assert_eq!(instances, 5);
    // Every instance executes exactly once, and start/finish pair up.
    let exec_starts = first
        .iter()
        .filter(|e| matches!(e, TraceEvent::ExecStarted { .. }))
        .count();
    let exec_finishes = first
        .iter()
        .filter(|e| matches!(e, TraceEvent::ExecFinished { failed: false, .. }))
        .count();
    assert_eq!(exec_starts, 5);
    assert_eq!(exec_finishes, 5);
    // Node completions: a, b, c.
    let nodes = first
        .iter()
        .filter(|e| matches!(e, TraceEvent::NodeCompleted { .. }))
        .count();
    assert_eq!(nodes, 3);
}

#[test]
fn untraced_runs_record_nothing() {
    let mut cluster = Cluster::new(ClusterConfig::default()).expect("valid config");
    cluster
        .register(
            &Workflow::steps("n", Step::task("a", FunctionProfile::with_millis(5, 0))),
            ClientConfig::ClosedLoop { invocations: 2 },
        )
        .expect("registers");
    cluster.run_until_idle();
    assert!(cluster.take_trace().is_empty());
}

#[test]
fn timeline_renders_every_invocation() {
    let events = traced_run(ScheduleMode::WorkerSp, true);
    let text = faasflow_core::trace::render_timeline(&events);
    for inv in 0..4 {
        assert!(
            text.contains(&format!("wf0/inv{inv}:")),
            "timeline missing invocation {inv}"
        );
    }
    assert!(text.contains("completed"));
}
