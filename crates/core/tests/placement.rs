//! Integration tests for the load- and locality-aware placement layer:
//! determinism under live-load feedback, residual-capacity accounting with
//! nominal fallback, crash/restart-triggered incremental rebalancing (no
//! double placement, epoch fencing intact), skew-triggered rebalancing,
//! and bit-identity of legacy mode with the placement layer switched off.

use std::collections::HashMap;

use faasflow_container::NodeCaps;
use faasflow_core::{
    ClientConfig, Cluster, ClusterConfig, FaultPlan, NodeCrash, PlacementConfig, PlacementReport,
    RunReport, ScheduleMode, TraceEvent,
};
use faasflow_sim::SimDuration;
use faasflow_wdl::{FunctionProfile, Step, Workflow};

/// A small pipeline that merges into one six-container group.
fn pipeline(name: &str) -> Workflow {
    Workflow::steps(
        name,
        Step::sequence(vec![
            Step::task("ingest", FunctionProfile::with_millis(30, 1 << 20)),
            Step::foreach("crunch", FunctionProfile::with_millis(90, 1 << 20), 4),
            Step::task("publish", FunctionProfile::with_millis(25, 0)),
        ]),
    )
}

fn aware_config(workers: u32) -> ClusterConfig {
    ClusterConfig {
        mode: ScheduleMode::WorkerSp,
        faastore: true,
        workers,
        node_caps: NodeCaps {
            cores: 4,
            ..NodeCaps::default()
        },
        placement_config: PlacementConfig::default(),
        ..ClusterConfig::default()
    }
}

fn assert_conserved(report: &RunReport) {
    for (name, wf) in &report.workflows {
        assert_eq!(
            wf.sent,
            wf.completed + wf.dead_lettered + wf.shed,
            "{name}: sent {} != completed {} + dead_lettered {} + shed {}",
            wf.sent,
            wf.completed,
            wf.dead_lettered,
            wf.shed
        );
    }
    assert_eq!(report.live_invocation_states, 0, "stuck invocation state");
}

/// Live load feeds the partitioner, but the feedback loop must stay inside
/// the deterministic simulation: two same-seed runs under load-aware
/// placement produce byte-identical reports and identical placements.
#[test]
fn load_aware_runs_are_deterministic_for_a_seed() {
    let run = || {
        let mut cluster = Cluster::new(aware_config(3)).expect("valid config");
        let ids: Vec<_> = (0..4)
            .map(|i| {
                cluster
                    .register(
                        &pipeline(&format!("wf{i}")),
                        ClientConfig::OpenLoop {
                            per_minute: 90.0,
                            invocations: 10,
                        },
                    )
                    .expect("registers")
            })
            .collect();
        cluster.run_until_idle();
        let dist: Vec<_> = ids.iter().map(|&id| cluster.distribution(id)).collect();
        (cluster.report(), dist)
    };
    let (a, dist_a) = run();
    let (b, dist_b) = run();
    assert_eq!(
        serde_json::to_string(&a).expect("serializes"),
        serde_json::to_string(&b).expect("serializes"),
        "same-seed load-aware runs diverged"
    );
    assert_eq!(dist_a, dist_b, "same-seed placements diverged");
    assert_conserved(&a);
    assert!(a.placement.load_aware_partitions >= 4, "{:?}", a.placement);
}

/// When live instances eat the residual capacity below a workflow's
/// demand, the partitioner first fails with `InsufficientCapacity`, then
/// retries at nominal capacity: the deploy must succeed, the fallback must
/// be counted, and no invocation may leak.
#[test]
fn residual_capacity_fallback_still_deploys() {
    let config = ClusterConfig {
        // Capacity exactly one pipeline group; any live instance drops the
        // residual below the foreach node's demand of 4.
        partition_capacity: 6,
        repartition_every: Some(1),
        ..aware_config(2)
    };
    let mut cluster = Cluster::new(config).expect("valid config");
    for i in 0..3 {
        cluster
            .register(
                &pipeline(&format!("wf{i}")),
                ClientConfig::OpenLoop {
                    per_minute: 120.0,
                    invocations: 8,
                },
            )
            .expect("registers");
    }
    cluster.run_until_idle();
    let report = cluster.report();
    assert_conserved(&report);
    let p = &report.placement;
    assert!(
        p.capacity_fallbacks > 0,
        "loaded repartitions never hit the nominal-capacity fallback: {p:?}"
    );
    // At least one fallback rescued its deploy (a repartition that fails
    // even at nominal keeps the previous version and is only counted).
    assert!(
        p.capacity_fallbacks > report.repartition_failures,
        "no fallback rescued a deploy: {} fallbacks, {} failures",
        p.capacity_fallbacks,
        report.repartition_failures
    );
    for wf in report.workflows.values() {
        assert_eq!(wf.completed, wf.sent, "fallback deploys must still run");
    }
}

/// A worker crash triggers an incremental rebalance of only the workflows
/// it hosted; its restart pulls work back from the most-crowded survivor.
/// Placement stays single-valued per function (no double placement) and
/// epoch fencing keeps moving strictly forward.
#[test]
fn crash_and_restart_rebalance_without_double_placement() {
    let config = ClusterConfig {
        trace: true,
        fault: FaultPlan {
            node_crashes: vec![NodeCrash {
                worker: 1,
                at: SimDuration::from_millis(1500),
                restart_after: Some(SimDuration::from_millis(2500)),
            }],
            ..FaultPlan::default()
        },
        ..aware_config(3)
    };
    let mut cluster = Cluster::new(config).expect("valid config");
    let ids: Vec<_> = (0..6)
        .map(|i| {
            cluster
                .register(
                    &pipeline(&format!("wf{i}")),
                    ClientConfig::OpenLoop {
                        per_minute: 60.0,
                        invocations: 8,
                    },
                )
                .expect("registers")
        })
        .collect();
    cluster.run_until_idle();
    let trace = cluster.take_trace();
    let report = cluster.report();
    assert_conserved(&report);

    let p = &report.placement;
    assert!(
        p.recovery_rebalances >= 1,
        "crash/restart never triggered a recovery rebalance: {p:?}"
    );
    assert!(p.rebalanced_workflows >= 1, "{p:?}");
    assert!(
        trace
            .iter()
            .any(|ev| matches!(ev, TraceEvent::PlacementRebalanced { recovery: true, .. })),
        "no recovery rebalance event in the trace"
    );

    // No double placement: each pipeline's three function nodes are placed
    // exactly once across the cluster.
    for &id in &ids {
        let placed: usize = cluster.distribution(id).iter().map(|r| r.functions).sum();
        assert_eq!(placed, 3, "function placed zero or multiple times");
    }

    // Epoch fencing held: restarts only ever move an invocation's epoch
    // strictly forward.
    let mut epochs: HashMap<(usize, usize), u32> = HashMap::new();
    for ev in &trace {
        if let TraceEvent::InvocationRestarted {
            workflow,
            invocation,
            epoch,
            ..
        } = ev
        {
            let key = (workflow.index(), invocation.index());
            let floor = epochs.insert(key, *epoch).unwrap_or(0);
            assert!(*epoch > floor, "epoch went {floor} -> {epoch} for {key:?}");
        }
    }
}

/// Placed-group skew alone (no faults) triggers the incremental
/// rebalancer once the cooldown allows it.
#[test]
fn skew_triggers_incremental_rebalance() {
    let config = ClusterConfig {
        placement_config: PlacementConfig {
            skew_threshold_pct: 100,
            rebalance_cooldown: 1,
            ..PlacementConfig::default()
        },
        ..aware_config(3)
    };
    let mut cluster = Cluster::new(config).expect("valid config");
    for i in 0..4 {
        cluster
            .register(
                &pipeline(&format!("wf{i}")),
                ClientConfig::ClosedLoop { invocations: 6 },
            )
            .expect("registers");
    }
    cluster.run_until_idle();
    let report = cluster.report();
    assert_conserved(&report);
    let p = &report.placement;
    assert!(
        p.skew_rebalances >= 1,
        "uneven group counts never fired the skew rebalancer: {p:?}"
    );
}

/// With the placement layer off, runs are bit-identical to the
/// pre-placement-layer behavior: the report carries an all-zero placement
/// block that stays off the wire, and same-seed runs match byte for byte.
#[test]
fn legacy_mode_reports_are_placement_free_and_stable() {
    let run = || {
        let config = ClusterConfig {
            placement_config: PlacementConfig::legacy(),
            ..aware_config(3)
        };
        let mut cluster = Cluster::new(config).expect("valid config");
        for i in 0..3 {
            cluster
                .register(
                    &pipeline(&format!("wf{i}")),
                    ClientConfig::ClosedLoop { invocations: 4 },
                )
                .expect("registers");
        }
        cluster.run_until_idle();
        cluster.report()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.placement, PlacementReport::default(), "{:?}", a.placement);
    let json = serde_json::to_string_pretty(&a).expect("serializes");
    assert!(
        !json.contains("\"placement\""),
        "legacy reports must serialize exactly as pre-placement builds"
    );
    assert_eq!(
        json,
        serde_json::to_string_pretty(&b).expect("serializes"),
        "same-seed legacy runs diverged"
    );
    assert_conserved(&a);
}
