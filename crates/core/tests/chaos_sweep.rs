//! Randomized chaos-sweep oracle: every seed derives a random fault plan,
//! overload configuration and workload, runs the cluster to drain, and
//! checks the invariants that must hold no matter what was thrown at it:
//!
//! * **Conservation** — per workflow,
//!   `sent == completed + dead_lettered + shed`, and the overload
//!   report's `admitted` equals total sent. Nothing enters the system
//!   without leaving through exactly one terminal door.
//! * **No stuck invocations** — once the event queue drains,
//!   `live_invocation_states == 0`.
//! * **Epoch monotonicity** — crash recovery bumps each invocation's
//!   epoch strictly upward (`InvocationRestarted` trace events).
//! * **Same-seed bit-identity** — re-running a sampled subset of seeds
//!   produces byte-identical `RunReport` JSON.
//!
//! A failing seed prints its standalone repro command:
//!
//! ```text
//! CHAOS_SEED=<seed> cargo test -p faasflow-core --test chaos_sweep
//! ```

use std::collections::HashMap;

use faasflow_container::NodeCaps;
use faasflow_core::{
    AdaptiveHedge, AdmissionConfig, BackpressureConfig, BreakerConfig, ClientConfig, Cluster,
    ClusterConfig, DegradeConfig, EngineCrash, EngineTarget, FaultPlan, GrayFault, GrayFaultKind,
    HealthConfig, HedgeConfig, JournalConfig, NetFault, NodeCrash, OverloadConfig, PlacementConfig,
    RunReport, ScheduleMode, ShedPolicy, SloConfig, SloObjective, StorageFault, StorageFaultKind,
    TraceEvent, WindowMode,
};
use faasflow_sim::{SimDuration, SimRng};
use faasflow_wdl::{FunctionProfile, Step, Workflow};

/// Seeds swept by default (the CI job runs exactly this range).
const SEED_RANGE: std::ops::Range<u64> = 0..64;
/// Every eighth seed is re-run to check bit-identity.
const REPLAY_EVERY: u64 = 8;

fn repro(seed: u64) -> String {
    format!("rerun just this seed with: CHAOS_SEED={seed} cargo test -p faasflow-core --test chaos_sweep")
}

/// Derives the whole scenario — topology, faults, overload knobs,
/// workload — from one seed. Only the *configuration* comes from this
/// RNG; the run itself uses the cluster's own seeded stream.
fn scenario(seed: u64) -> (ClusterConfig, Workflow, u32) {
    let mut rng = SimRng::seed_from(seed ^ 0x9e37_79b9_7f4a_7c15);
    let workers = 2 + rng.next_below(3) as u32; // 2..=4
    let mode = if rng.chance(0.5) {
        ScheduleMode::WorkerSp
    } else {
        ScheduleMode::MasterSp
    };
    let faastore = mode == ScheduleMode::WorkerSp && rng.chance(0.7);

    let mut fault = FaultPlan::default();
    if rng.chance(0.6) {
        fault.node_crashes.push(NodeCrash {
            worker: rng.next_below(u64::from(workers)) as u32,
            at: SimDuration::from_millis(500 + rng.next_below(3000)),
            restart_after: if rng.chance(0.8) {
                Some(SimDuration::from_millis(1000 + rng.next_below(3000)))
            } else {
                None
            },
        });
    }
    if rng.chance(0.5) {
        let kind = if rng.chance(0.5) {
            StorageFaultKind::Blackout
        } else {
            StorageFaultKind::Brownout {
                slowdown: rng.range_f64(2.0, 8.0),
            }
        };
        fault.storage_faults.push(StorageFault {
            at: SimDuration::from_millis(300 + rng.next_below(3000)),
            duration: SimDuration::from_millis(500 + rng.next_below(2500)),
            kind,
        });
    }
    if rng.chance(0.5) {
        fault.net_faults.push(NetFault {
            worker: rng.next_below(u64::from(workers)) as u32,
            at: SimDuration::from_millis(rng.next_below(2000)),
            duration: SimDuration::from_millis(500 + rng.next_below(4000)),
            loss: rng.range_f64(0.0, 0.4),
            latency_factor: rng.range_f64(1.0, 3.0),
            bandwidth_factor: rng.range_f64(0.3, 1.0),
        });
    }
    // Engine crashes target whichever engine the mode actually schedules
    // with; restart_after may be zero (instant restart).
    let journal_enabled = rng.chance(0.6);
    if rng.chance(0.5) {
        let crashes = 1 + rng.next_below(2); // 1..=2
        for _ in 0..crashes {
            let target = match mode {
                ScheduleMode::MasterSp => EngineTarget::Master,
                ScheduleMode::WorkerSp => {
                    EngineTarget::Worker(rng.next_below(u64::from(workers)) as u32)
                }
            };
            fault.engine_crashes.push(EngineCrash {
                target,
                at: SimDuration::from_millis(300 + rng.next_below(4000)),
                restart_after: SimDuration::from_millis(rng.next_below(3000)),
            });
        }
    }
    let journal = JournalConfig {
        enabled: journal_enabled,
        append_overhead: SimDuration::from_micros(500 + rng.next_below(4000)),
        replay_overhead: SimDuration::from_micros(50 + rng.next_below(500)),
    };

    let mut overload = OverloadConfig::default();
    if rng.chance(0.7) {
        let policy = match rng.next_below(3) {
            0 => ShedPolicy::RejectNewest,
            1 => ShedPolicy::RejectOldest,
            _ => ShedPolicy::DeadlineAware,
        };
        overload.admission = Some(AdmissionConfig {
            queue_capacity: 2 + rng.next_below(8) as usize,
            policy,
        });
    }
    if rng.chance(0.5) {
        overload.breaker = Some(BreakerConfig {
            failure_threshold: 1 + rng.next_below(4) as u32,
            ..BreakerConfig::default()
        });
    }
    if rng.chance(0.5) {
        overload.hedge = Some(HedgeConfig {
            delay: SimDuration::from_millis(100 + rng.next_below(600)),
            adaptive: if rng.chance(0.5) {
                Some(AdaptiveHedge {
                    quantile: rng.range_f64(0.5, 0.99),
                    warmup: 5 + rng.next_below(10) as u32,
                })
            } else {
                None
            },
        });
    }
    if rng.chance(0.5) {
        overload.backpressure = Some(BackpressureConfig {
            queue_threshold: 1 + rng.next_below(6) as usize,
            defer_delay: SimDuration::from_millis(10 + rng.next_below(40)),
            max_defers: 2 + rng.next_below(10) as u32,
        });
    }

    // Half the seeds run the load-aware placement layer with randomized
    // knobs (aggressive to lazy rebalancing); the rest stay legacy.
    let placement_config = if rng.chance(0.5) {
        PlacementConfig {
            enabled: true,
            locality_threshold_bytes: 1 << (12 + rng.next_below(10)), // 4 KiB..2 MiB
            skew_threshold_pct: 100 + rng.next_below(201) as u32,     // 100..=300
            rebalance_cooldown: 1 + rng.next_below(16) as u32,        // 1..=16
        }
    } else {
        PlacementConfig::legacy()
    };

    let mut config = ClusterConfig {
        mode,
        faastore,
        workers,
        seed,
        placement_config,
        node_caps: NodeCaps {
            cores: 2 + rng.next_below(3) as u32, // 2..=4 — small enough to queue
            ..NodeCaps::default()
        },
        // DeadlineAware shedding requires a deadline, and a generous one
        // keeps the scenario about overload, not QoS bookkeeping.
        qos_target: Some(SimDuration::from_secs(20)),
        exec_failure_rate: if rng.chance(0.4) {
            rng.range_f64(0.01, 0.1)
        } else {
            0.0
        },
        trace: true,
        fault,
        overload,
        journal,
        ..ClusterConfig::default()
    };

    let fan = 3 + rng.next_below(6) as u32; // 3..=8
    let exec = 60 + rng.next_below(200); // ms
    let bytes = 1u64 << (18 + rng.next_below(5)); // 256 KiB .. 4 MiB
    let wf = Workflow::steps(
        "Chaos",
        Step::sequence(vec![
            Step::task("ingest", FunctionProfile::with_millis(exec, bytes)),
            Step::foreach(
                "work",
                FunctionProfile::with_millis(exec + 60, bytes / 2).exec_variation(0.4),
                fan,
            ),
            Step::task("merge", FunctionProfile::with_millis(40, 0)),
        ]),
    );
    let invocations = 4 + rng.next_below(8) as u32; // 4..=11
                                                    // SLO monitoring on half the seeds. Drawn last so pre-existing seeds
                                                    // keep their exact scenarios. Tight targets make alerts actually fire
                                                    // under chaos; generous ones exercise the quiet path.
    if rng.chance(0.5) {
        let fast_burn = rng.range_f64(0.5, 4.0);
        config.slo = Some(SloConfig {
            objectives: vec![SloObjective {
                workflow: "Chaos".to_string(),
                target: SimDuration::from_millis(200 + rng.next_below(4000)),
                error_budget: rng.range_f64(0.01, 0.5),
                fast_window: 1 + rng.next_below(8) as u32,
                slow_window: 8 + rng.next_below(24) as u32,
                fast_burn,
                slow_burn: fast_burn * rng.range_f64(0.1, 1.0),
                // A third of the monitored seeds use time-based windows
                // (drawn after the count fields so earlier seeds keep
                // their exact scenarios; count fields are ignored then).
                window: if rng.chance(0.3) {
                    let fast = SimDuration::from_millis(300 + rng.next_below(3000));
                    WindowMode::Time {
                        fast,
                        slow: fast + SimDuration::from_millis(1000 + rng.next_below(10_000)),
                    }
                } else {
                    WindowMode::Count
                },
            }],
        });
    }
    // The degradation controller rides on SLO alerts (its only input), so
    // it is fuzzed on half the monitored seeds. Drawn last of all so every
    // pre-existing seed keeps its exact scenario.
    if config.slo.is_some() && rng.chance(0.5) {
        let initial_cap = 2 + rng.next_below(8) as u32; // 2..=9
        config.degrade = Some(DegradeConfig {
            initial_cap,
            min_cap: 1 + rng.next_below(u64::from(initial_cap)) as u32,
            tighten: rng.range_f64(0.2, 0.9),
            recover_step: 1 + rng.next_below(3) as u32,
            cooldown: SimDuration::from_millis(200 + rng.next_below(4000)),
            shed_admit_fraction: rng.range_f64(0.0, 1.0),
            probe_fraction: rng.range_f64(0.1, 1.0),
            probe_successes: 1 + rng.next_below(6) as u32,
            suspend_hedges: rng.chance(0.5),
            demote_shed_priority: rng.chance(0.5),
        });
    }
    // Gray failures on half the seeds, drawn after everything above so
    // every pre-existing seed keeps its exact scenario. Each degraded
    // worker gets exactly one window — the gray effect vectors assume at
    // most one active window per worker per kind.
    if rng.chance(0.5) {
        let count = 1 + rng.next_below(u64::from(workers.min(3)));
        let mut degraded: Vec<u32> = Vec::new();
        for _ in 0..count {
            let w = rng.next_below(u64::from(workers)) as u32;
            if degraded.contains(&w) {
                continue;
            }
            degraded.push(w);
            let kind = match rng.next_below(4) {
                0 => GrayFaultKind::ExecSlowdown {
                    factor: rng.range_f64(2.0, 10.0),
                },
                1 => GrayFaultKind::StuckExecutor,
                2 => GrayFaultKind::FlakyExec {
                    failure_rate: rng.range_f64(0.2, 0.9),
                },
                _ => GrayFaultKind::AsymmetricPartition {
                    inbound: rng.chance(0.5),
                    expire_lease: rng.chance(0.5),
                },
            };
            config.fault.gray_faults.push(GrayFault {
                worker: w,
                at: SimDuration::from_millis(200 + rng.next_below(3000)),
                duration: SimDuration::from_millis(500 + rng.next_below(5000)),
                kind,
            });
        }
    }
    // The health detector runs on some seeds with and some without gray
    // faults (the quiet path must stay quiet), with thresholds fuzzed
    // from hair-trigger to lethargic. Drawn last of all.
    if rng.chance(0.4) {
        let window = 8 + rng.next_below(40) as usize;
        config.health = Some(HealthConfig {
            window,
            min_samples: 2 + rng.next_below(6) as usize, // <= 7 < window
            mad_threshold: rng.range_f64(1.5, 6.0),
            failure_threshold: rng.range_f64(0.1, 0.9),
            stuck_after: SimDuration::from_millis(500 + rng.next_below(8000)),
            probation_after: 1 + rng.next_below(4) as u32,
            quarantine_after: 1 + rng.next_below(4) as u32,
            cooldown: SimDuration::from_millis(500 + rng.next_below(8000)),
            reinstate_probes: 1 + rng.next_below(6) as u32,
            drain_on_quarantine: rng.chance(0.7),
        });
    }
    (config, wf, invocations)
}

fn run_seed(seed: u64) -> (RunReport, Vec<TraceEvent>) {
    let (config, wf, invocations) = scenario(seed);
    if std::env::var_os("CHAOS_VERBOSE").is_some() {
        eprintln!(
            "seed {seed}: mode={:?} faastore={} workers={} cores={} fault={:?} overload={:?} \
             journal={:?} placement={:?} slo={:?} exec_failure_rate={} invocations={invocations}",
            config.mode,
            config.faastore,
            config.workers,
            config.node_caps.cores,
            config.fault,
            config.overload,
            config.journal,
            config.placement_config,
            config.slo,
            config.exec_failure_rate
        );
    }
    let mut cluster = Cluster::new(config).unwrap_or_else(|e| {
        panic!(
            "seed {seed}: generated config failed validation ({e}); {}",
            repro(seed)
        )
    });
    cluster
        .register(&wf, ClientConfig::ClosedLoop { invocations })
        .unwrap_or_else(|e| panic!("seed {seed}: register failed ({e}); {}", repro(seed)));
    cluster.run_until_idle();
    let trace = cluster.take_trace();
    if std::env::var_os("CHAOS_TRACE").is_some() {
        for ev in &trace {
            eprintln!("seed {seed}: {ev:?}");
        }
    }
    (cluster.report(), trace)
}

fn check_invariants(seed: u64, report: &RunReport, trace: &[TraceEvent]) {
    let mut sent_total = 0;
    let mut shed_total = 0;
    for (name, wf) in &report.workflows {
        shed_total += wf.shed;
        assert_eq!(
            wf.sent,
            wf.completed + wf.dead_lettered + wf.shed,
            "seed {seed}: {name} leaks invocations \
             (sent {} != completed {} + dead_lettered {} + shed {}); {}",
            wf.sent,
            wf.completed,
            wf.dead_lettered,
            wf.shed,
            repro(seed)
        );
        sent_total += wf.sent;
    }
    assert_eq!(
        report.overload.admitted,
        sent_total,
        "seed {seed}: admitted != sent; {}",
        repro(seed)
    );
    assert_eq!(
        report.live_invocation_states,
        0,
        "seed {seed}: stuck invocation state after drain; {}",
        repro(seed)
    );
    let o = &report.overload;
    assert_eq!(
        o.shed,
        o.shed_newest + o.shed_oldest + o.shed_deadline,
        "seed {seed}: shed counters disagree ({o:?}); {}",
        repro(seed)
    );
    assert_eq!(
        o.hedges_launched,
        o.hedge_wins + o.hedge_losses,
        "seed {seed}: unresolved hedges ({o:?}); {}",
        repro(seed)
    );
    // Every dead letter carries exactly one attributed reason.
    let f = &report.faults;
    assert_eq!(
        f.dead_letter_retries_exhausted
            + f.dead_letter_crash_orphan
            + f.dead_letter_journal_unrecoverable
            + f.dead_letter_quarantine_orphan,
        f.dead_letters,
        "seed {seed}: dead-letter reasons don't sum ({f:?}); {}",
        repro(seed)
    );

    // Health-detector accounting. The config is re-derived from the seed
    // so the invariants can distinguish "off" from "quiet".
    let (config, _, _) = scenario(seed);
    let h = &report.health;
    if config.health.is_none() {
        assert_eq!(
            (h.evaluations, h.probations, h.quarantines, h.relapses),
            (0, 0, 0, 0),
            "seed {seed}: detector counters without a detector ({h:?}); {}",
            repro(seed)
        );
        assert_eq!(
            f.dead_letter_quarantine_orphan,
            0,
            "seed {seed}: quarantine orphans without a detector; {}",
            repro(seed)
        );
    }
    if config.fault.gray_faults.is_empty() {
        assert_eq!(
            (h.zombie_fenced, h.stalled_flows, h.stuck_deferrals),
            (0, 0, 0),
            "seed {seed}: gray-fault counters without gray faults ({h:?}); {}",
            repro(seed)
        );
    }
    assert_eq!(
        h.quarantine_orphans,
        f.dead_letter_quarantine_orphan,
        "seed {seed}: quarantine-orphan counters disagree ({h:?} vs {f:?}); {}",
        repro(seed)
    );
    assert!(
        h.probations >= h.quarantines,
        "seed {seed}: a quarantine without a probation ({h:?}); {}",
        repro(seed)
    );
    assert!(
        h.reinstatements <= h.quarantines + h.relapses,
        "seed {seed}: more reinstatements than quarantine episodes ({h:?}); {}",
        repro(seed)
    );
    if h.quarantines == 0 {
        assert_eq!(
            (h.relapses, h.reinstatements),
            (0, 0),
            "seed {seed}: relapse/reinstate without a first quarantine ({h:?}); {}",
            repro(seed)
        );
    }
    // Quarantine must never take the whole fleet: the detector requires
    // a healthy majority signal, so at least one worker stays placeable.
    let quarantined_now = h
        .workers
        .iter()
        .filter(|w| w.level == faasflow_core::HealthLevel::Quarantined)
        .count();
    assert!(
        h.workers.is_empty() || quarantined_now < h.workers.len(),
        "seed {seed}: the entire fleet ended quarantined ({h:?}); {}",
        repro(seed)
    );
    // Engine crash/recovery accounting is consistent: the target split
    // covers every crash, and no engine recovers more often than it
    // crashed (a permanently dead worker may never bring its engine back).
    let r = &report.recovery;
    assert_eq!(
        r.engine_crashes,
        r.master_engine_crashes + r.worker_engine_crashes,
        "seed {seed}: engine crash split doesn't sum ({r:?}); {}",
        repro(seed)
    );
    assert!(
        r.engine_recoveries <= r.engine_crashes,
        "seed {seed}: more recoveries than crashes ({r:?}); {}",
        repro(seed)
    );

    // SLO accounting: alerts alternate fired -> resolved, and only
    // evaluated completions can consume budget.
    let s = &report.slo;
    assert!(
        s.alerts_resolved <= s.alerts_fired,
        "seed {seed}: more SLO alerts resolved than fired ({s:?}); {}",
        repro(seed)
    );
    assert!(
        s.violations <= s.evaluations,
        "seed {seed}: more SLO violations than evaluations ({s:?}); {}",
        repro(seed)
    );
    if s.objectives == 0 {
        assert!(
            s.is_zero(),
            "seed {seed}: SLO counters without objectives ({s:?}); {}",
            repro(seed)
        );
    }

    // Degradation accounting: controller sheds are disjoint from the
    // admission queue's (they never touch `overload.shed`), yet together
    // the two cover every per-workflow shed — no refusal is double- or
    // zero-counted. State-machine counters respect their causal order:
    // every throttle needs a fired alert, every recovery a resolved one,
    // every restore a recovery, every failed probe a launched probe.
    let d = &report.degrade;
    assert_eq!(
        shed_total,
        o.shed + d.sheds,
        "seed {seed}: workflow sheds {shed_total} != overload {} + degrade {} ({d:?}); {}",
        o.shed,
        d.sheds,
        repro(seed)
    );
    assert!(
        d.throttles <= s.alerts_fired,
        "seed {seed}: more throttles than alerts fired ({d:?} vs {s:?}); {}",
        repro(seed)
    );
    assert!(
        d.recoveries <= s.alerts_resolved,
        "seed {seed}: more recoveries than alerts resolved ({d:?} vs {s:?}); {}",
        repro(seed)
    );
    assert!(
        d.restores <= d.recoveries,
        "seed {seed}: more restores than recoveries ({d:?}); {}",
        repro(seed)
    );
    assert!(
        d.probe_failures <= d.probes,
        "seed {seed}: more probe failures than probes ({d:?}); {}",
        repro(seed)
    );
    assert_eq!(
        d.sheds,
        d.workflows.iter().map(|w| w.sheds).sum::<u64>(),
        "seed {seed}: per-workflow degrade sheds don't sum ({d:?}); {}",
        repro(seed)
    );
    if d.workflows_tracked == 0 {
        assert!(
            d.is_zero(),
            "seed {seed}: degrade counters without tracked workflows ({d:?}); {}",
            repro(seed)
        );
    }

    // Critical-path oracle: on every traced seed — crashes, hedges and
    // engine downtime included — each invocation's observed chain must be
    // contiguous, causally ordered, and sum exactly to its makespan.
    let forest = faasflow_obs::build_forest(trace);
    forest
        .validate()
        .unwrap_or_else(|e| panic!("seed {seed}: malformed span forest ({e}); {}", repro(seed)));
    let paths = faasflow_obs::extract(&forest);
    assert_eq!(
        paths.len(),
        forest.trees.len(),
        "seed {seed}: critical-path count != invocation count; {}",
        repro(seed)
    );
    for (path, tree) in paths.iter().zip(&forest.trees) {
        path.validate(tree).unwrap_or_else(|e| {
            panic!("seed {seed}: invalid critical path ({e}); {}", repro(seed))
        });
    }

    // Epoch fencing must only ever move forward, one invocation at a time.
    let mut epochs: HashMap<(usize, usize), u32> = HashMap::new();
    for ev in trace {
        if let TraceEvent::InvocationRestarted {
            workflow,
            invocation,
            epoch,
            ..
        } = ev
        {
            let key = (workflow.index(), invocation.index());
            let prev = epochs.insert(key, *epoch);
            let floor = prev.unwrap_or(0);
            assert!(
                *epoch > floor,
                "seed {seed}: invocation {key:?} epoch went {floor} -> {epoch}; {}",
                repro(seed)
            );
        }
    }
}

fn sweep(seeds: impl Iterator<Item = u64>) {
    for seed in seeds {
        let (report, trace) = run_seed(seed);
        check_invariants(seed, &report, &trace);
        if seed % REPLAY_EVERY == 0 {
            let (replay, _) = run_seed(seed);
            assert_eq!(
                serde_json::to_string(&report).expect("serializes"),
                serde_json::to_string(&replay).expect("serializes"),
                "seed {seed}: same-seed runs diverged; {}",
                repro(seed)
            );
        }
    }
}

#[test]
fn chaos_sweep_holds_invariants() {
    match std::env::var("CHAOS_SEED") {
        Ok(v) => {
            let seed: u64 = v.parse().expect("CHAOS_SEED must be an integer");
            let (report, trace) = run_seed(seed);
            check_invariants(seed, &report, &trace);
            let (replay, _) = run_seed(seed);
            assert_eq!(
                serde_json::to_string(&report).expect("serializes"),
                serde_json::to_string(&replay).expect("serializes"),
                "seed {seed}: same-seed runs diverged; {}",
                repro(seed)
            );
        }
        Err(_) => sweep(SEED_RANGE),
    }
}
